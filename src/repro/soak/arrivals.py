"""Deterministic workflow-request arrivals for the soak mode.

The soak loop (DESIGN.md §13) runs an *open-ended* workload: instead of one
goal planned once, workflow requests keep arriving for the whole simulated
duration while the fault timeline churns machines and links underneath
them.  This module materialises that request stream as a pure function of
``(arrival clauses, seed, duration)``:

- :func:`soak_ontology` builds the shared grid the whole soak runs on — a
  seeded random topology (scalable to thousands of machines) plus one
  registered processing pipeline whose stages every request exercises;
- :class:`ArrivalStream` turns ``arrival:rate=...`` clauses from the
  :mod:`repro.faults` spec grammar into a time-ordered tuple of
  :class:`WorkflowRequest`\\ s (Poisson process: exponential inter-arrival
  draws from one seeded stream per clause).

Determinism discipline mirrors :class:`~repro.faults.injector.
FaultInjector`: every draw comes from a ``SeedSequence``-derived stream
keyed by the clause index, so adding a clause never perturbs the draws of
clauses before it, and two same-seed streams are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.faults.spec import FaultSpec, parse_fault_spec
from repro.grid.data import DataProduct
from repro.grid.generators import random_grid
from repro.grid.ontology import Ontology
from repro.grid.programs import InputSpec, OutputSpec, ProgramSpec
from repro.grid.workflow_domain import GridWorkflowDomain

__all__ = ["WorkflowRequest", "ArrivalStream", "soak_ontology", "request_domain"]


@dataclass(frozen=True)
class WorkflowRequest:
    """One arriving unit of work: raw data somewhere, a delivery goal elsewhere.

    ``request_id`` is the arrival index (unique across the whole soak);
    ``seed`` is the request's derived root seed, used for any per-request
    randomised decision (GA replans) so requests are independent streams.
    """

    request_id: int
    at: float
    source: str
    sink: str
    seed: int


def soak_ontology(
    seed: int,
    n_sites: int = 3,
    machines_per_site: int = 2,
    n_stages: int = 3,
) -> Ontology:
    """The shared grid + pipeline every soak request runs against.

    A seeded :func:`~repro.grid.generators.random_grid` topology (connected
    by construction) with one linear processing pipeline ``dt0 → … →
    dt{n_stages}`` registered on it; each stage also exists in an ``-alt``
    version with a different cost so replanning has real alternatives to
    move to when machines churn.  Memory requirements only ever name tiers
    some machine provides, so every stage is hostable somewhere live.
    """
    if n_stages < 1:
        raise ValueError("need at least one pipeline stage")
    rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(0,)))
    topo = random_grid(rng, n_sites=n_sites, machines_per_site=machines_per_site)
    onto = Ontology(topo)
    tiers = sorted({m.memory_gb for m in topo.machines.values()})
    # Modest tiers only: a request must stay plannable after churn takes
    # the largest machines down, so stage requirements draw from the lower
    # half of what the topology offers.
    usable = tiers[: max(1, (len(tiers) + 1) // 2)]
    for i in range(n_stages + 1):
        onto.register_data_type(
            # volume kept modest so transfer times stay comparable to runtimes
            _data_type(f"dt{i}", volume_mb=float(rng.uniform(50, 800)))
        )
    for i in range(n_stages):
        for suffix, cost_scale in (("", 1.0), ("-alt", float(rng.uniform(1.2, 2.5)))):
            onto.register_program(
                ProgramSpec(
                    name=f"stage{i}{suffix}",
                    inputs=(InputSpec(dtype=f"dt{i}"),),
                    outputs=(OutputSpec(dtype=f"dt{i + 1}"),),
                    # Heavy stages on purpose: requests must stay in flight
                    # for tens of simulated seconds so the churn timeline
                    # actually intersects them mid-execution.
                    flops=float(rng.uniform(20_000, 150_000)) * cost_scale,
                    min_memory_gb=float(usable[int(rng.integers(0, len(usable)))]),
                )
            )
    return onto


def _data_type(name: str, volume_mb: float):
    from repro.grid.data import DataType

    return DataType(name, volume_mb=volume_mb)


def request_domain(
    ontology: Ontology, request: WorkflowRequest, n_stages: int
) -> GridWorkflowDomain:
    """The planning domain for one request: its raw product to its sink.

    Every request gets a *distinct* raw :class:`DataProduct` (the request id
    is baked into the attributes), so concurrent requests never alias each
    other's placements even though they share the ontology and topology.
    """
    raw = DataProduct.make("dt0", attrs={"request": request.request_id})
    return GridWorkflowDomain(
        ontology=ontology,
        initial_placements=[(raw, request.source)],
        goal=[(f"dt{n_stages}", request.sink)],
        max_transfers_per_product=3,
    )


class ArrivalStream:
    """Materialises ``arrival:`` clauses into a deterministic request stream."""

    def __init__(self, spec: Union[str, FaultSpec], seed: int = 0) -> None:
        self.spec = parse_fault_spec(spec) if isinstance(spec, str) else spec
        self.seed = seed
        if not self.spec.arrival_clauses:
            raise ValueError(
                f"spec {str(self.spec)!r} has no arrival clause; "
                "soak mode needs at least one 'arrival:rate=...' clause"
            )

    def requests(
        self, ontology: Ontology, duration: float
    ) -> Tuple[WorkflowRequest, ...]:
        """All requests arriving in ``[0, duration)``, time-ordered.

        Each clause is an independent Poisson process; the merged stream is
        sorted by arrival time (clause order breaking ties) and request ids
        are assigned after the merge, in stream order.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        machines = ontology.topology.machine_names()  # sorted by construction order
        raw: List[Tuple[float, int, str, str, int]] = []
        for clause_index, clause in enumerate(self.spec.arrival_clauses):
            rng = np.random.default_rng(
                np.random.SeedSequence(self.seed, spawn_key=(1, clause_index))
            )
            rate = clause["rate"]
            cap = int(clause["n"])
            t = 0.0
            count = 0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= duration or (cap and count >= cap):
                    break
                source = machines[int(rng.integers(0, len(machines)))]
                sink = machines[int(rng.integers(0, len(machines)))]
                raw.append(
                    (t, clause_index, source, sink, int(rng.integers(0, 1 << 31)))
                )
                count += 1
        raw.sort(key=lambda r: (r[0], r[1]))
        return tuple(
            WorkflowRequest(
                request_id=i, at=t, source=source, sink=sink, seed=req_seed
            )
            for i, (t, _, source, sink, req_seed) in enumerate(raw)
        )
