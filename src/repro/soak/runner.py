"""The soak loop: streaming co-simulation with continuous replanning.

:class:`SoakRunner` turns the one-shot grid simulator into an open-ended
digital twin (DESIGN.md §13).  One global event heap interleaves, in
simulated time,

- **arrivals** from a seeded :class:`~repro.soak.arrivals.ArrivalStream`,
- **grid churn** from a :class:`~repro.faults.injector.FaultInjector`
  timeline (machine crash/restore, load shifts, link degrade/partition),
- **completions** of in-flight workflow requests.

Each admitted request is planned, compiled to an activity graph and
*segment-simulated* on the current topology (a fault-free
:class:`~repro.grid.simulator.GridSimulator` run yields the per-activity
schedule and the estimated completion time).  Churn is applied exactly once
to the shared topology by the soak loop itself; the
:class:`~repro.soak.controller.ReplanController` then classifies which
in-flight schedules the event invalidates and replans only those, from the
placements their finished activities actually produced — the degradation
ladder (repair → warm GA → greedy → shed) bounded by each request's
deadline.  Requests whose best replan cannot make their deadline, or whose
replan budget is exhausted, are shed rather than allowed to clog the loop.

Determinism: everything on the simulated clock is a pure function of
``SoakConfig`` — the canonical :meth:`SoakReport.event_log` is
byte-identical across same-seed runs (asserted by the hypothesis suite and
``benchmarks/bench_soak.py``).  Wall-clock replan latency is observed into
metrics/events but never feeds back into simulated time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.core.config import GAConfig
from repro.faults.injector import FaultInjector
from repro.grid.activity_graph import ActivityGraph, plan_to_activity_graph
from repro.grid.ontology import Ontology
from repro.grid.simulator import GridEvent, GridSimulator
from repro.grid.workflow_domain import GridWorkflowDomain
from repro.obs.events import (
    FaultInjected,
    RequestArrived,
    RequestCompleted,
    RequestShed,
)
from repro.obs.metrics import MetricsRegistry, soak_summary
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.soak.arrivals import ArrivalStream, WorkflowRequest, request_domain, soak_ontology
from repro.soak.controller import REPLAN_MODES, ReplanController

__all__ = ["SoakConfig", "SoakReport", "SoakRunner", "run_soak"]

# Heap tiebreak: at equal simulated times, completions land before churn
# (work that finished *at* t finished), churn before arrivals (a request
# arriving at t plans against the already-changed grid).
_COMPLETE, _FAULT, _ARRIVAL = 0, 1, 2


@dataclass(frozen=True)
class SoakConfig:
    """Parameters of one soak run; everything that feeds determinism.

    ``arrival`` and ``faults`` are :mod:`repro.faults` spec strings (the
    former must contain at least one ``arrival:`` clause; the latter may be
    ``None`` for a churn-free control run).  ``deadline_factor`` scales each
    request's initial makespan estimate into its completion deadline;
    ``replan_mode`` selects the incremental ladder or the cold-GA baseline;
    ``replan_budget_s`` is the per-request wall-clock planning budget that
    gates the GA rung; ``max_replans`` caps churn-triggered rounds per
    request before it is shed.
    """

    duration: float = 300.0
    arrival: str = "arrival:rate=0.05"
    faults: Optional[str] = None
    seed: int = 0
    n_sites: int = 3
    machines_per_site: int = 2
    n_stages: int = 3
    deadline_factor: float = 4.0
    replan_mode: str = "incremental"
    replan_budget_s: float = 2.0
    max_replans: int = 5
    ga_config: Optional[GAConfig] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.deadline_factor < 1.0:
            raise ValueError("deadline_factor must be >= 1")
        if self.replan_mode not in REPLAN_MODES:
            raise ValueError(f"replan_mode must be one of {REPLAN_MODES}")
        if self.max_replans < 0:
            raise ValueError("max_replans must be non-negative")


@dataclass
class _InFlight:
    """Book-keeping for one admitted request's current schedule segment."""

    request: WorkflowRequest
    domain: GridWorkflowDomain
    plan: Tuple
    graph: ActivityGraph
    #: ``(activity_id, global_start, global_end)`` per activity, id order.
    schedule: List[Tuple[int, float, float]]
    base_placements: frozenset
    segment_start: float
    completion: float
    deadline: float
    replans: int = 0
    epoch: int = 0
    wall_replan_s: float = 0.0

    def pending_ids(self, now: float) -> List[int]:
        """Activity ids whose scheduled end lies after ``now``."""
        return [aid for aid, _s, e in self.schedule if e > now]

    def observed_placements(self, now: float) -> frozenset:
        """World state at ``now``: base placements plus finished outputs."""
        placements = set(self.base_placements)
        for aid, _s, e in self.schedule:
            if e <= now:
                placements.update(self.graph.activity(aid).produces)
        return frozenset(placements)


@dataclass(frozen=True)
class SoakReport:
    """Outcome of a soak run plus the canonical deterministic event log."""

    duration: float
    seed: int
    arrived: int
    completed: int
    shed: int
    inflight: int
    replans: int
    replan_latencies: Tuple[float, ...]
    log: Tuple[str, ...]
    metrics_summary: dict = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        """Completed over resolved (completed + shed) requests."""
        resolved = self.completed + self.shed
        return self.completed / resolved if resolved else 0.0

    def event_log(self) -> str:
        """The canonical log: simulated-time events only, no wall-clock.

        Two same-seed soak runs produce byte-identical logs; the soak
        determinism suite and ``bench_soak`` assert exactly this string.
        """
        return "\n".join(self.log) + "\n"


class SoakRunner:
    """Drives one soak run to completion."""

    def __init__(
        self,
        config: SoakConfig,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else default_tracer()
        metrics = metrics if metrics is not None else default_metrics()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ontology: Ontology = soak_ontology(
            config.seed,
            n_sites=config.n_sites,
            machines_per_site=config.machines_per_site,
            n_stages=config.n_stages,
        )
        self.controller = ReplanController(
            self.ontology,
            mode=config.replan_mode,
            ga_config=config.ga_config,
            replan_budget_s=config.replan_budget_s,
            seed=config.seed,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        # Segment simulations are estimation machinery, not run events:
        # keep their sim-complete chatter out of the soak trace.
        self._segment_tracer = Tracer([])

    # -- public API ----------------------------------------------------------

    def run(self) -> SoakReport:
        """Run the configured soak to its horizon and report."""
        cfg = self.config
        heap: List[Tuple[float, int, int, object]] = []
        seq = 0

        def push(at: float, prio: int, payload: object) -> None:
            """Enqueue with a monotone sequence number as the final tiebreak."""
            nonlocal seq
            heappush(heap, (at, prio, seq, payload))
            seq += 1

        arrivals = ArrivalStream(cfg.arrival, seed=cfg.seed).requests(
            self.ontology, cfg.duration
        )
        for req in arrivals:
            push(req.at, _ARRIVAL, req)
        if cfg.faults:
            plan = FaultInjector(cfg.faults, seed=cfg.seed).plan(
                topology=self.ontology.topology, horizon=cfg.duration
            )
            for ev in plan.grid_events:
                push(ev.time, _FAULT, ev)

        self._log: List[str] = []
        self._inflight: Dict[int, _InFlight] = {}
        self._completed = 0
        self._shed = 0
        self._latencies: List[float] = []

        while heap:
            at, prio, _, payload = heappop(heap)
            if at > cfg.duration:
                break
            if prio == _ARRIVAL:
                self._on_arrival(payload, at, push)
            elif prio == _FAULT:
                self._on_fault(payload, at, push)
            else:
                self._on_complete(payload, at)

        summary = dict(self.metrics.summary())
        summary["derived"] = soak_summary(self.metrics)
        return SoakReport(
            duration=cfg.duration,
            seed=cfg.seed,
            arrived=len(arrivals),
            completed=self._completed,
            shed=self._shed,
            inflight=len(self._inflight),
            replans=int(self.metrics.counter("soak_replans").value),
            replan_latencies=tuple(self._latencies),
            log=tuple(self._log),
            metrics_summary=summary,
        )

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self, req: WorkflowRequest, at: float, push) -> None:
        self.metrics.counter("soak_requests").add(1)
        domain = request_domain(self.ontology, req, self.config.n_stages)
        t0 = time.perf_counter()
        from repro.soak.controller import _greedy, relaxed_feasible

        if not relaxed_feasible(domain, domain.initial_state):
            plan = None  # provably unreachable on the current topology
        else:
            plan = _greedy(domain, domain.initial_state)
        self.metrics.timer("plan_latency").record(time.perf_counter() - t0)
        if plan is None:
            self._emit_arrived(req, at, plan_length=0, estimate=at)
            self._shed_request(req.request_id, at, "unplannable", replans=0)
            return
        segment = self._segment(domain, tuple(plan), domain.initial_state, at)
        if segment is None:
            self._emit_arrived(req, at, plan_length=len(plan), estimate=at)
            self._shed_request(req.request_id, at, "execution-failed", replans=0)
            return
        graph, schedule, completion = segment
        flight = _InFlight(
            request=req,
            domain=domain,
            plan=tuple(plan),
            graph=graph,
            schedule=schedule,
            base_placements=domain.initial_state,
            segment_start=at,
            completion=completion,
            deadline=at + self.config.deadline_factor * (completion - at),
        )
        self._inflight[req.request_id] = flight
        self._emit_arrived(req, at, plan_length=len(plan), estimate=completion)
        push(completion, _COMPLETE, (req.request_id, flight.epoch))

    def _on_fault(self, ev: GridEvent, at: float, push) -> None:
        self._apply_topology_change(ev)
        self.metrics.counter("faults_injected").add(1)
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    scope="soak", at=at, fault=ev.kind, target=ev.target, value=ev.value
                )
            )
        self._log.append(f"t={at:.6f} fault {ev.kind} {ev.target}")
        hit_any = False
        # Deterministic order: requests by id.
        for rid in sorted(self._inflight):
            flight = self._inflight[rid]
            pending = flight.pending_ids(at)
            pending_ops = [flight.graph.activity(aid).op for aid in pending]
            if not self.controller.invalidates(ev, pending_ops):
                continue
            hit_any = True
            self._replan_flight(flight, pending, at, push)
        if not hit_any:
            self.metrics.counter("soak_soft_churn").add(1)

    def _on_complete(self, payload: Tuple[int, int], at: float) -> None:
        rid, epoch = payload
        flight = self._inflight.get(rid)
        if flight is None or flight.epoch != epoch:
            return  # stale: the request replanned or was shed meanwhile
        del self._inflight[rid]
        self._completed += 1
        duration = at - flight.request.at
        deadline_met = at <= flight.deadline
        self.metrics.counter("soak_completed").add(1)
        if deadline_met:
            self.metrics.counter("soak_deadline_met").add(1)
        self.metrics.histogram("request_duration").observe(duration)
        if self.tracer.enabled:
            self.tracer.emit(
                RequestCompleted(
                    scope="soak",
                    request_id=rid,
                    at=at,
                    duration=duration,
                    replans=flight.replans,
                    deadline_met=deadline_met,
                )
            )
        self._log.append(
            f"t={at:.6f} complete req={rid} replans={flight.replans} "
            f"deadline_met={deadline_met}"
        )

    # -- replanning ----------------------------------------------------------

    def _replan_flight(
        self, flight: _InFlight, pending: List[int], at: float, push
    ) -> None:
        rid = flight.request.request_id
        flight.epoch += 1  # invalidate the scheduled completion
        observed = flight.observed_placements(at)
        new_domain = GridWorkflowDomain(
            ontology=self.ontology,
            initial_placements=observed,
            goal=flight.domain.goal,
            max_transfers_per_product=flight.domain.max_transfers_per_product,
        )
        if new_domain.is_goal(observed):
            # The surviving activities already delivered the goal.
            del self._inflight[rid]
            self._on_complete_now(flight, at)
            return
        if flight.replans >= self.config.max_replans:
            del self._inflight[rid]
            self._shed_request(rid, at, "replan-budget", replans=flight.replans)
            return
        old_suffix = [flight.graph.activity(aid).op for aid in pending]
        decision = self.controller.replan(
            new_domain,
            old_suffix,
            flight.request,
            now=at,
            round_index=flight.replans,
            wall_spent_s=flight.wall_replan_s,
        )
        flight.replans += 1
        flight.wall_replan_s += decision.seconds
        self._latencies.append(decision.seconds)
        if decision.plan is None:
            del self._inflight[rid]
            self._shed_request(rid, at, "no-plan", replans=flight.replans)
            return
        segment = self._segment(new_domain, decision.plan, observed, at)
        if segment is None:
            del self._inflight[rid]
            self._shed_request(rid, at, "execution-failed", replans=flight.replans)
            return
        graph, schedule, completion = segment
        self._log.append(
            f"t={at:.6f} replan req={rid} rung={decision.rung} "
            f"reused={decision.reused} repaired={decision.repaired} "
            f"plan={len(decision.plan)} est={completion:.6f}"
        )
        if completion > flight.deadline:
            del self._inflight[rid]
            self._shed_request(rid, at, "deadline", replans=flight.replans)
            return
        flight.domain = new_domain
        flight.plan = decision.plan
        flight.graph = graph
        flight.schedule = schedule
        flight.base_placements = observed
        flight.segment_start = at
        flight.completion = completion
        push(completion, _COMPLETE, (rid, flight.epoch))

    def _on_complete_now(self, flight: _InFlight, at: float) -> None:
        """Goal already satisfied by the surviving prefix: complete in place."""
        self._completed += 1
        duration = at - flight.request.at
        deadline_met = at <= flight.deadline
        self.metrics.counter("soak_completed").add(1)
        if deadline_met:
            self.metrics.counter("soak_deadline_met").add(1)
        self.metrics.histogram("request_duration").observe(duration)
        if self.tracer.enabled:
            self.tracer.emit(
                RequestCompleted(
                    scope="soak",
                    request_id=flight.request.request_id,
                    at=at,
                    duration=duration,
                    replans=flight.replans,
                    deadline_met=deadline_met,
                )
            )
        self._log.append(
            f"t={at:.6f} complete req={flight.request.request_id} "
            f"replans={flight.replans} deadline_met={deadline_met}"
        )

    # -- helpers -------------------------------------------------------------

    def _segment(
        self,
        domain: GridWorkflowDomain,
        plan: Tuple,
        placements: frozenset,
        start: float,
    ) -> Optional[Tuple[ActivityGraph, List[Tuple[int, float, float]], float]]:
        """Compile + fault-free-simulate *plan*; None when execution fails.

        The returned schedule holds global activity windows; the simulation
        itself runs on the *current* topology (loads, failures as of
        *start*), which is what makes the estimate honest.
        """
        try:
            graph = plan_to_activity_graph(domain, plan)
        except (TypeError, ValueError):
            return None
        sim = GridSimulator(
            self.ontology, events=(), tracer=self._segment_tracer, metrics=self.metrics
        )
        result = sim.execute(graph, placements, abort_on_failure=False)
        if not result.success:
            return None
        windows: Dict[int, Tuple[float, float]] = {
            r.activity_id: (start + r.start, start + r.end)
            for r in result.trace
            if r.status == "done"
        }
        schedule = [(aid, s, e) for aid, (s, e) in sorted(windows.items())]
        return graph, schedule, start + result.makespan

    def _apply_topology_change(self, ev: GridEvent) -> None:
        topo = self.ontology.topology
        if ev.kind == "fail":
            topo.fail_machine(ev.machine)
        elif ev.kind == "restore":
            topo.restore_machine(ev.machine)
        elif ev.kind == "load":
            topo.set_load(ev.machine, ev.value)
        elif ev.kind == "link-degrade":
            topo.degrade_link(ev.machine, ev.peer, ev.value)
        elif ev.kind == "partition":
            topo.partition_link(ev.machine, ev.peer)
        elif ev.kind == "link-restore":
            topo.restore_link(ev.machine, ev.peer)

    def _emit_arrived(
        self, req: WorkflowRequest, at: float, plan_length: int, estimate: float
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                RequestArrived(
                    scope="soak",
                    request_id=req.request_id,
                    at=at,
                    plan_length=plan_length,
                    estimate=estimate,
                )
            )
        self._log.append(
            f"t={at:.6f} arrive req={req.request_id} src={req.source} "
            f"dst={req.sink} plan={plan_length} est={estimate:.6f}"
        )

    def _shed_request(self, rid: int, at: float, reason: str, replans: int) -> None:
        self._shed += 1
        self.metrics.counter("soak_shed").add(1)
        if self.tracer.enabled:
            self.tracer.emit(
                RequestShed(
                    scope="soak", request_id=rid, at=at, reason=reason, replans=replans
                )
            )
        self._log.append(f"t={at:.6f} shed req={rid} reason={reason}")


def run_soak(
    config: SoakConfig,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SoakReport:
    """Convenience wrapper: build a :class:`SoakRunner` and run it."""
    return SoakRunner(config, tracer=tracer, metrics=metrics).run()
