"""Replan controller: churn classification + the degradation ladder.

The controller sits between the soak event loop and the planners.  When a
grid event fires it decides *which* in-flight plans the event invalidates
(:meth:`ReplanController.invalidates`), and for each invalidated request it
produces a replacement plan through a degradation ladder ordered by cost
(:meth:`ReplanController.replan`):

1. **repair** — :func:`repro.planning.reuse.reuse_plan` keeps the longest
   still-valid prefix of the damaged plan's remaining operations and lets
   the greedy planner fill in only the broken suffix;
2. **ga-warm** — a single-phase GA replan whose population is *seeded*
   from the surviving prefix: seed genomes share the prefix genes and
   carry ``dirty_from``/``prefix_plan`` decode lineage, so the decode
   engine re-decodes only the damaged suffix on first evaluation (the
   dirty-prefix path of DESIGN.md §9/§11);
3. **greedy** — plain greedy best-first from the observed state;
4. **shed** — give up (the caller drops the request).

The GA rung is gated by the request's wall-clock replan budget: once a
request has burned ``replan_budget_s`` of planning time across its rounds,
the ladder skips straight from repair to greedy.  In ``mode="cold"`` the
ladder is replaced by a from-scratch GA replan every round — the ablation
baseline :mod:`benchmarks.bench_soak` races the incremental ladder against.

Every round emits a :class:`~repro.obs.events.ReplanLatency` event and
feeds the ``replan_latency`` histogram; wall-clock latency never touches
the simulated clock, so soak runs stay deterministic in simulated time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import GAConfig
from repro.core.encoding import decode, encode_operations
from repro.core.individual import Individual
from repro.grid.ontology import Ontology
from repro.grid.simulator import GridEvent
from repro.grid.workflow_domain import GridWorkflowDomain, RunProgram, Transfer
from repro.obs.events import ReplanLatency
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.planning.reuse import reuse_plan, valid_prefix
from repro.soak.arrivals import WorkflowRequest

__all__ = ["ReplanDecision", "ReplanController", "REPLAN_MODES", "relaxed_feasible"]

REPLAN_MODES = ("incremental", "cold")

#: Ladder rungs counted into per-rung metrics.
_RUNG_COUNTERS = {
    "repair": "soak_repairs",
    "ga-warm": "soak_ga_replans",
    "ga-cold": "soak_ga_replans",
    "greedy": "soak_greedy_fallbacks",
}


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one ladder descent.

    ``plan`` is ``None`` when every rung failed (the request should be
    shed); ``reused`` counts operations kept from the damaged plan and
    ``repaired`` the newly planned ones; ``seconds`` is wall-clock replan
    latency.
    """

    rung: str
    plan: Optional[Tuple]
    reused: int
    repaired: int
    seconds: float


def relaxed_feasible(domain: GridWorkflowDomain, state) -> bool:
    """Cheap relaxed-reachability check: could the goal possibly be reached?

    Fixpoint over ``(dtype, machine)`` pairs ignoring transfer caps,
    attribute/history constraints and all costs: a dtype spreads to every
    up machine with a live route from a machine that has it, and a program
    adds its output dtypes on every up machine that can host it once its
    input dtypes are present there.  The relaxation only ever
    *over*-approximates reachability, so ``False`` is a proof the goal is
    unreachable on the current topology — the ladder sheds immediately
    instead of burning a full search/GA budget discovering the same thing
    the slow way.
    """
    onto = domain.ontology
    topo = onto.topology
    up = [m.name for m in topo.up_machines()]
    reach = {(product.dtype, machine) for product, machine in state if
             topo.machines[machine].up}
    changed = True
    while changed:
        changed = False
        # Transfer closure: spread every reachable dtype over live routes.
        for dtype, src in list(reach):
            volume = onto.volume_of(dtype)
            for dst in up:
                if dst == src or (dtype, dst) in reach:
                    continue
                if topo.transfer_time(src, dst, volume) is not None:
                    reach.add((dtype, dst))
                    changed = True
        # Program closure: run every hostable program whose inputs arrived.
        for name in onto.program_names():
            program = onto.programs[name]
            for machine in onto.hosts_for(name):
                if all((spec.dtype, machine.name) in reach for spec in program.inputs):
                    for out in program.outputs:
                        if (out.dtype, machine.name) not in reach:
                            reach.add((out.dtype, machine.name))
                            changed = True
    return all(req in reach for req in domain.goal)


def _greedy(domain: GridWorkflowDomain, start_state, max_expansions: int = 4_000):
    """Greedy best-first on the goal gap from *start_state* (rungs 1 and 3).

    The expansion budget is deliberately small for an interactive loop: a
    plannable soak request resolves in tens of expansions, so a search
    still running at a few thousand is almost surely unplannable (churn
    took the source or severed the only route) and the latency is better
    spent shedding the request than proving it.
    """
    from repro.planning.search import goal_gap, greedy_best_first

    probe = GridWorkflowDomain(
        ontology=domain.ontology,
        initial_placements=start_state,
        goal=domain.goal,
        max_transfers_per_product=domain.max_transfers_per_product,
    )
    result = greedy_best_first(
        probe, goal_gap(probe, scale=100.0), max_expansions=max_expansions
    )
    return result.plan


class ReplanController:
    """Classifies churn and replans invalidated requests incrementally."""

    def __init__(
        self,
        ontology: Ontology,
        mode: str = "incremental",
        ga_config: Optional[GAConfig] = None,
        replan_budget_s: float = 2.0,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if mode not in REPLAN_MODES:
            raise ValueError(f"mode must be one of {REPLAN_MODES}, got {mode!r}")
        if replan_budget_s <= 0:
            raise ValueError("replan_budget_s must be positive")
        self.ontology = ontology
        self.mode = mode
        self.ga_config = ga_config
        self.replan_budget_s = replan_budget_s
        self.seed = seed
        self.tracer = tracer if tracer is not None else default_tracer()
        self.metrics = metrics if metrics is not None else default_metrics()

    # -- churn classification ------------------------------------------------

    def invalidates(self, event: GridEvent, pending_ops: Sequence[object]) -> bool:
        """Does *event* damage a plan whose unfinished operations are given?

        ``fail`` invalidates plans that still run programs on — or move
        data through — the failed machine; ``partition`` invalidates plans
        with an unfinished transfer across the severed site pair.  Soft
        events (``restore``, ``load``, ``link-degrade``, ``link-restore``)
        change costs, not feasibility, and never force a replan.
        """
        if event.kind == "fail":
            machine = event.machine
            for op in pending_ops:
                if isinstance(op, RunProgram) and op.machine == machine:
                    return True
                if isinstance(op, Transfer) and machine in (op.src, op.dst):
                    return True
            return False
        if event.kind == "partition":
            machines = self.ontology.topology.machines
            severed = frozenset((event.machine, event.peer))
            for op in pending_ops:
                if not isinstance(op, Transfer):
                    continue
                sites = frozenset(
                    (machines[op.src].site, machines[op.dst].site)
                )
                if sites == severed:
                    return True
            return False
        return False

    # -- the degradation ladder ----------------------------------------------

    def replan(
        self,
        domain: GridWorkflowDomain,
        old_suffix: Sequence[object],
        request: WorkflowRequest,
        now: float,
        round_index: int,
        wall_spent_s: float = 0.0,
    ) -> ReplanDecision:
        """Descend the ladder for one invalidated request.

        *domain* is rebuilt from the observed placements over the mutated
        topology (its ``initial_state`` is the observed state);
        *old_suffix* holds the damaged plan's unfinished operations in plan
        order; *wall_spent_s* is the wall-clock planning time this request
        already consumed, which gates the GA rung.
        """
        t0 = time.perf_counter()
        observed = domain.initial_state
        if not relaxed_feasible(domain, observed):
            # Provably unreachable on the current topology (both modes):
            # shed now rather than prove it again with search budget.
            decision = ReplanDecision(
                rung="none", plan=None, reused=0, repaired=0,
                seconds=time.perf_counter() - t0,
            )
            return self._report(decision, request, now)
        if self.mode == "cold":
            plan = self._ga_replan(domain, request, round_index, seeds=None)
            decision = ReplanDecision(
                rung="ga-cold" if plan is not None else "none",
                plan=plan,
                reused=0,
                repaired=len(plan) if plan is not None else 0,
                seconds=time.perf_counter() - t0,
            )
            return self._report(decision, request, now)

        # Rung 1: prefix repair — keep what churn left intact.
        result = reuse_plan(
            domain,
            tuple(old_suffix),
            lambda d, s: _greedy(d, s),
            start_state=observed,
        )
        if result.solved:
            decision = ReplanDecision(
                rung="repair",
                plan=result.plan,
                reused=result.reused,
                repaired=result.repaired,
                seconds=time.perf_counter() - t0,
            )
            return self._report(decision, request, now)

        # Rung 2: warm-population GA replan, seeded with the surviving
        # prefix and its decode lineage.  Skipped once the request's
        # wall-clock replan budget is spent.
        if wall_spent_s + (time.perf_counter() - t0) < self.replan_budget_s:
            seeds = self._warm_seeds(domain, old_suffix, observed, request, round_index)
            plan = self._ga_replan(domain, request, round_index, seeds=seeds)
            if plan is not None:
                prefix = valid_prefix(domain, tuple(old_suffix), observed)
                reused = min(prefix, len(plan))
                decision = ReplanDecision(
                    rung="ga-warm",
                    plan=plan,
                    reused=reused,
                    repaired=len(plan) - reused,
                    seconds=time.perf_counter() - t0,
                )
                return self._report(decision, request, now)

        # Rung 3: greedy fallback from the observed state.
        plan = _greedy(domain, observed)
        if plan is not None:
            decision = ReplanDecision(
                rung="greedy",
                plan=tuple(plan),
                reused=0,
                repaired=len(plan),
                seconds=time.perf_counter() - t0,
            )
            return self._report(decision, request, now)

        # Rung 4: shed.
        decision = ReplanDecision(
            rung="none", plan=None, reused=0, repaired=0,
            seconds=time.perf_counter() - t0,
        )
        return self._report(decision, request, now)

    # -- internals -----------------------------------------------------------

    def _warm_seeds(
        self,
        domain: GridWorkflowDomain,
        old_suffix: Sequence[object],
        observed,
        request: WorkflowRequest,
        round_index: int,
        n_seeds: int = 4,
    ):
        """Seed individuals sharing the surviving prefix, with decode lineage.

        Each seed genome is ``prefix genes + random tail``; ``dirty_from``
        points at the first tail gene and ``prefix_plan`` carries the
        prefix's decoded walk, so the decode engine resumes from the last
        intact state instead of re-decoding the whole genome — only the
        churn-damaged suffix is decoded fresh.
        """
        cfg = self._ga_config()
        max_len = cfg.max_len
        # Keep at least one free tail gene below MaxLen for the repair.
        cut = min(valid_prefix(domain, tuple(old_suffix), observed), max_len - 1)
        rng = np.random.default_rng(
            np.random.SeedSequence(request.seed, spawn_key=(2, round_index))
        )
        if cut <= 0:
            return None
        try:
            prefix_genes = encode_operations(
                domain, observed, tuple(old_suffix[:cut]), rng=rng
            )
        except ValueError:  # pragma: no cover - cut came from valid_prefix
            return None
        prefix_decoded = decode(prefix_genes, domain, observed, truncate_at_goal=True)
        seeds = []
        for _ in range(n_seeds):
            tail_len = int(rng.integers(1, max(2, max_len - cut + 1)))
            tail = rng.random(tail_len)
            genes = np.concatenate([prefix_genes, tail])[:max_len]
            seeds.append(
                Individual(
                    genes=genes,
                    dirty_from=int(prefix_genes.size),
                    prefix_plan=prefix_decoded,
                )
            )
        return seeds

    def _ga_config(self) -> GAConfig:
        if self.ga_config is not None:
            return self.ga_config
        # Small on purpose: a replan GA that cannot solve within a couple of
        # dozen cheap generations should hand over to the greedy rung, not
        # sit on the loop's latency budget.
        return GAConfig(
            population_size=24,
            generations=16,
            max_len=24,
            init_length=(4, 12),
            stop_on_goal=True,
        )

    def _ga_replan(
        self,
        domain: GridWorkflowDomain,
        request: WorkflowRequest,
        round_index: int,
        seeds,
    ) -> Optional[Tuple]:
        from repro.core.planner import GAPlanner

        planner = GAPlanner(
            domain,
            self._ga_config(),
            seed=int(
                np.random.default_rng(
                    np.random.SeedSequence(request.seed, spawn_key=(3, round_index))
                ).integers(0, 1 << 31)
            ),
            tracer=Tracer([]),  # soak traces carry request events, not GA internals
            metrics=self.metrics,
        )
        outcome = planner.solve(seeds=seeds)
        return tuple(outcome.plan) if outcome.solved else None

    def _report(
        self, decision: ReplanDecision, request: WorkflowRequest, now: float
    ) -> ReplanDecision:
        if self.metrics is not None:
            self.metrics.counter("soak_replans").add(1)
            rung_counter = _RUNG_COUNTERS.get(decision.rung)
            if rung_counter:
                self.metrics.counter(rung_counter).add(1)
            self.metrics.histogram("replan_latency").observe(decision.seconds)
        if self.tracer.enabled:
            self.tracer.emit(
                ReplanLatency(
                    scope="soak",
                    request_id=request.request_id,
                    at=now,
                    rung=decision.rung,
                    reused=decision.reused,
                    repaired=decision.repaired,
                    plan_length=len(decision.plan) if decision.plan is not None else 0,
                    seconds=decision.seconds,
                )
            )
        return decision
