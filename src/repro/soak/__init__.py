"""Long-running digital-twin soak mode (DESIGN.md §13).

An open-ended co-simulation of the grid: a seeded arrival stream of
workflow requests (``arrival:`` clauses in the :mod:`repro.faults` spec
grammar), a deterministic churn timeline injecting machine/link faults
over hours of simulated time, and a :class:`~repro.soak.controller.
ReplanController` that replans invalidated in-flight work *incrementally*
through a degradation ladder (prefix repair → warm-population GA →
greedy fallback → shed) bounded by per-request deadlines.

Entry points: :func:`run_soak` / :class:`SoakRunner` from Python,
``python -m repro soak`` from the command line, and
``benchmarks/bench_soak.py`` for the replan-latency/completion-rate
benchmark at several churn intensities.
"""

from repro.soak.arrivals import (
    ArrivalStream,
    WorkflowRequest,
    request_domain,
    soak_ontology,
)
from repro.soak.controller import REPLAN_MODES, ReplanController, ReplanDecision
from repro.soak.runner import SoakConfig, SoakReport, SoakRunner, run_soak

__all__ = [
    "ArrivalStream",
    "REPLAN_MODES",
    "ReplanController",
    "ReplanDecision",
    "SoakConfig",
    "SoakReport",
    "SoakRunner",
    "WorkflowRequest",
    "request_domain",
    "run_soak",
    "soak_ontology",
]
