"""The domain registry: name → factory plus capability flags.

Callers that take a domain *name* (the CLI's ``solve`` command, the
:mod:`repro.exp` paper specs) used to import concrete domain classes
ad hoc; the registry centralises the lookup and records what each domain
can do, so new domains become available everywhere by registering once:

- ``has_kernel`` — the domain type implements :meth:`PlanningDomain.kernel`
  and so supports the array-native vector decode path (DESIGN.md §12).
  The flag describes the *type*; an individual instance may still decline
  (``HanoiDomain(13).kernel() is None`` above the dense-table size cap).
- ``strips`` — a grounded STRIPS formulation exists for the domain
  (usable with the classical-planner baselines in :mod:`repro.planning`).

Built-in domains register at import time; projects can :func:`register`
their own.  Lookups raise with the list of known names, so a CLI typo is
a one-line fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.protocol import PlanningDomain

__all__ = [
    "DomainEntry",
    "register",
    "get_entry",
    "create",
    "domain_names",
    "list_entries",
]


@dataclass(frozen=True)
class DomainEntry:
    """One registered domain: how to build it and what it supports.

    Attributes
    ----------
    name:
        Registry key (the name the CLI and experiment specs use).
    factory:
        Callable returning a :class:`PlanningDomain`; positional/keyword
        arguments of :meth:`create` pass straight through (e.g. the size
        argument of ``HanoiDomain`` / ``SlidingTileDomain``).
    has_kernel:
        The domain type implements the :class:`~repro.protocol.DomainKernel`
        hook (vector decode capability).
    strips:
        A grounded STRIPS formulation of the domain exists.
    description:
        One-line summary for ``--help`` style listings.
    """

    name: str
    factory: Callable[..., PlanningDomain] = field(repr=False)
    has_kernel: bool = False
    strips: bool = False
    description: str = ""

    def create(self, *args, **kwargs) -> PlanningDomain:
        """Build a domain instance, forwarding all arguments to the factory."""
        return self.factory(*args, **kwargs)


_REGISTRY: Dict[str, DomainEntry] = {}


def register(entry: DomainEntry, replace: bool = False) -> DomainEntry:
    """Add *entry* to the registry and return it.

    Duplicate names raise ``ValueError`` unless *replace* is set (tests
    use *replace* to shadow a built-in with an instrumented double).
    """
    if entry.name in _REGISTRY and not replace:
        raise ValueError(f"domain {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def get_entry(name: str) -> DomainEntry:
    """Look up a registered domain by name.

    Raises ``KeyError`` naming the known domains when absent.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown domain {name!r}; registered: {known}") from None


def create(name: str, *args, **kwargs) -> PlanningDomain:
    """Build the domain registered under *name* (see :meth:`DomainEntry.create`)."""
    return get_entry(name).create(*args, **kwargs)


def domain_names() -> List[str]:
    """Sorted names of every registered domain."""
    return sorted(_REGISTRY)


def list_entries() -> List[DomainEntry]:
    """Every registered domain entry, sorted by name."""
    return [_REGISTRY[name] for name in domain_names()]


def _register_builtins() -> None:
    """Register the repository's own domains (import-time side effect)."""
    from repro.domains.blocks_world import BlocksWorldDomain
    from repro.domains.briefcase import BriefcaseDomain
    from repro.domains.hanoi import HanoiDomain
    from repro.domains.navigation import GridNavigationDomain
    from repro.domains.pocket_cube import PocketCubeDomain
    from repro.domains.sliding_tile import SlidingTileDomain

    register(DomainEntry(
        "hanoi", HanoiDomain, has_kernel=True, strips=True,
        description="Towers of Hanoi (paper Table 2); size = number of disks",
    ))
    register(DomainEntry(
        "tile", SlidingTileDomain, has_kernel=True,
        description="n×n sliding-tile puzzle (paper Tables 4/5); size = side length",
    ))
    register(DomainEntry(
        "cube", PocketCubeDomain, has_kernel=True,
        description="2×2×2 pocket cube (hard-domain extension)",
    ))
    register(DomainEntry(
        "blocks", BlocksWorldDomain, strips=True,
        description="Blocks World between two tower configurations",
    ))
    register(DomainEntry(
        "briefcase", BriefcaseDomain, strips=True,
        description="Pednault's Briefcase transport domain",
    ))
    register(DomainEntry(
        "navigation", GridNavigationDomain,
        description="Grid navigation with obstacles",
    ))


_register_builtins()
