"""The Briefcase domain — Sinergy's second evaluation domain (paper §2).

A briefcase and a set of objects are distributed over locations; the
briefcase can move between any two locations, and objects can be put in or
taken out when co-located.  The goal assigns target locations to objects
(and optionally to the briefcase).

Provided as a grounded STRIPS problem plus a GA-ready adapter whose goal
fitness is the fraction of objects already at their target location (with a
half-credit term for objects riding in the briefcase while it is anywhere —
they are "in transit", which is progress the pure atom count cannot see).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.planning.adapter import StripsDomainAdapter
from repro.planning.conditions import State, atom
from repro.planning.grounding import OperatorSchema, ground_all
from repro.planning.problem import PlanningProblem

__all__ = ["briefcase_problem", "BriefcaseDomain"]


def briefcase_problem(
    locations: Sequence[str],
    object_locations: Mapping[str, str],
    goal_locations: Mapping[str, str],
    briefcase_at: str,
    goal_briefcase_at: Optional[str] = None,
    name: str = "briefcase",
) -> PlanningProblem:
    """Grounded STRIPS Briefcase instance.

    Atoms: ``bc-at(loc)``, ``obj-at(o, loc)``, ``in-bc(o)``.
    """
    locations = list(locations)
    objects = sorted(object_locations)
    if sorted(goal_locations) != sorted(set(goal_locations)):
        raise ValueError("duplicate goal objects")
    for o, loc in list(object_locations.items()) + list(goal_locations.items()):
        if loc not in locations:
            raise ValueError(f"object {o!r} references unknown location {loc!r}")
        if o not in object_locations:
            raise ValueError(f"goal references unknown object {o!r}")
    if briefcase_at not in locations:
        raise ValueError(f"unknown briefcase location {briefcase_at!r}")

    move = OperatorSchema(
        name="move-bc",
        parameters=(("?from", "loc"), ("?to", "loc")),
        preconditions=(atom("bc-at", "?from"),),
        add=(atom("bc-at", "?to"),),
        delete=(atom("bc-at", "?from"),),
        constraint=lambda b: b["?from"] != b["?to"],
    )
    put_in = OperatorSchema(
        name="put-in",
        parameters=(("?o", "obj"), ("?loc", "loc")),
        preconditions=(atom("bc-at", "?loc"), atom("obj-at", "?o", "?loc")),
        add=(atom("in-bc", "?o"),),
        delete=(atom("obj-at", "?o", "?loc"),),
    )
    take_out = OperatorSchema(
        name="take-out",
        parameters=(("?o", "obj"), ("?loc", "loc")),
        preconditions=(atom("bc-at", "?loc"), atom("in-bc", "?o")),
        add=(atom("obj-at", "?o", "?loc"),),
        delete=(atom("in-bc", "?o"),),
    )
    operations = ground_all([move, put_in, take_out], {"loc": locations, "obj": objects})

    initial = {atom("bc-at", briefcase_at)}
    for o, loc in object_locations.items():
        initial.add(atom("obj-at", o, loc))
    goal = {atom("obj-at", o, loc) for o, loc in goal_locations.items()}
    if goal_briefcase_at is not None:
        goal.add(atom("bc-at", goal_briefcase_at))

    conditions = set(initial) | set(goal)
    for op in operations:
        conditions |= op.preconditions | op.add | op.delete
    return PlanningProblem(
        conditions=frozenset(conditions),
        operations=tuple(operations),
        initial=frozenset(initial),
        goal=frozenset(goal),
        name=name,
    )


class BriefcaseDomain(StripsDomainAdapter):
    """GA-plannable Briefcase with an in-transit-aware goal fitness."""

    def __init__(
        self,
        locations: Sequence[str],
        object_locations: Mapping[str, str],
        goal_locations: Mapping[str, str],
        briefcase_at: str,
        goal_briefcase_at: Optional[str] = None,
    ) -> None:
        problem = briefcase_problem(
            locations, object_locations, goal_locations, briefcase_at, goal_briefcase_at
        )
        self._goal_objs = dict(goal_locations)
        super().__init__(problem, goal_fitness_fn=self._fitness)

    def _fitness(self, problem: PlanningProblem, state: State) -> float:
        if not problem.goal:
            return 1.0
        score = 0.0
        for o, loc in self._goal_objs.items():
            if atom("obj-at", o, loc) in state:
                score += 1.0
            elif atom("in-bc", o) in state:
                score += 0.5  # picked up: halfway to anywhere
        extra = [a for a in problem.goal if a[0] == "bc-at"]
        total = len(self._goal_objs) + len(extra)
        for a in extra:
            if a in state:
                score += 1.0
        return score / total
