"""Robot navigation on an occupancy grid — Sinergy's evaluation domain (§2).

One or two robots move on a rectangular grid with obstacle cells; robots may
not share a cell or swap through each other.  Goal fitness is a normalised
Manhattan-distance measure, mirroring the sliding-tile construction, so the
GA planner gets a graded signal rather than a goal/no-goal cliff.

State: a tuple of ``(row, col)`` robot positions, one per robot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Sequence, Tuple

from repro.protocol import PlanningDomain

__all__ = ["NavMove", "GridNavigationDomain"]

#: (name, drow, dcol) in a fixed order for decode determinism.
_DIRS = (("north", -1, 0), ("south", 1, 0), ("west", 0, -1), ("east", 0, 1))


@dataclass(frozen=True)
class NavMove:
    """Move *robot* one cell in *direction*."""

    robot: int
    direction: str

    def __str__(self) -> str:
        return f"move(r{self.robot}, {self.direction})"


class GridNavigationDomain(PlanningDomain):
    """One or more robots navigating to per-robot goal cells.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    starts / goals:
        Per-robot start and goal cells (equal lengths).
    obstacles:
        Blocked cells.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        starts: Sequence[Tuple[int, int]],
        goals: Sequence[Tuple[int, int]],
        obstacles: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1×1, got {rows}×{cols}")
        if len(starts) != len(goals) or not starts:
            raise ValueError("starts and goals must be equal-length, non-empty")
        self.rows, self.cols = rows, cols
        self.obstacles: FrozenSet[Tuple[int, int]] = frozenset(obstacles or ())
        for label, cells in (("start", starts), ("goal", goals)):
            for cell in cells:
                if not self._in_bounds(cell):
                    raise ValueError(f"{label} cell {cell} outside the {rows}×{cols} grid")
                if cell in self.obstacles:
                    raise ValueError(f"{label} cell {cell} is an obstacle")
        if len(set(starts)) != len(starts):
            raise ValueError("robots cannot share a start cell")
        if len(set(goals)) != len(goals):
            raise ValueError("robots cannot share a goal cell")
        self._starts = tuple(tuple(c) for c in starts)
        self._goals = tuple(tuple(c) for c in goals)
        self.n_robots = len(starts)
        self.name = f"nav-{rows}x{cols}-{self.n_robots}r"
        # Normalisation: worst-case per-robot distance is the grid diameter.
        self._bound = (rows - 1 + cols - 1) * self.n_robots or 1
        self._moves = tuple(
            NavMove(r, name) for r in range(self.n_robots) for name, _, _ in _DIRS
        )

    def _in_bounds(self, cell: Tuple[int, int]) -> bool:
        r, c = cell
        return 0 <= r < self.rows and 0 <= c < self.cols

    @property
    def initial_state(self) -> tuple:
        return self._starts

    @property
    def goal_cells(self) -> tuple:
        return self._goals

    def _target(self, state, mv: NavMove) -> Optional[Tuple[int, int]]:
        r, c = state[mv.robot]
        for name, dr, dc in _DIRS:
            if name == mv.direction:
                cell = (r + dr, c + dc)
                break
        else:  # pragma: no cover
            raise ValueError(f"unknown direction {mv.direction!r}")
        if not self._in_bounds(cell) or cell in self.obstacles:
            return None
        if cell in state:  # another robot occupies it
            return None
        return cell

    def valid_operations(self, state) -> Sequence[NavMove]:
        return [mv for mv in self._moves if self._target(state, mv) is not None]

    def apply(self, state, op: NavMove) -> tuple:
        cell = self._target(state, op)
        if cell is None:
            raise ValueError(f"move {op} is invalid in state {state}")
        out = list(state)
        out[op.robot] = cell
        return tuple(out)

    def total_distance(self, state) -> int:
        return sum(
            abs(p[0] - g[0]) + abs(p[1] - g[1]) for p, g in zip(state, self._goals)
        )

    def goal_fitness(self, state) -> float:
        return 1.0 - self.total_distance(state) / self._bound

    def is_goal(self, state) -> bool:
        return tuple(state) == self._goals

    def state_key(self, state) -> Hashable:
        return state
