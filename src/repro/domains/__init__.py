"""Planning domains: the paper's evaluation puzzles and richer worlds."""

from repro.protocol import PlanningDomain
from repro.domains.blocks_world import BlocksWorldDomain, blocks_world_problem, towers_to_atoms
from repro.domains.briefcase import BriefcaseDomain, briefcase_problem
from repro.domains.hanoi import HanoiDomain, HanoiMove, hanoi_strips_problem, optimal_hanoi_moves
from repro.domains.navigation import GridNavigationDomain, NavMove
from repro.domains.sliding_tile import (
    SlidingTileDomain,
    TileMove,
    is_solvable,
    manhattan_distance,
    random_solvable_start,
    reversed_start,
)

__all__ = [
    "BlocksWorldDomain", "BriefcaseDomain", "GridNavigationDomain", "HanoiDomain",
    "HanoiMove", "NavMove", "PlanningDomain", "SlidingTileDomain", "TileMove",
    "blocks_world_problem", "briefcase_problem", "hanoi_strips_problem", "is_solvable",
    "manhattan_distance", "optimal_hanoi_moves", "random_solvable_start",
    "reversed_start", "towers_to_atoms",
]

from repro.domains.hanoi_fitness import StructuralHanoiDomain, hanoi_distance  # noqa: E402
from repro.domains.tile_heuristics import (  # noqa: E402
    AccurateTileDomain,
    PatternDatabase,
    accurate_tile_fitness,
    build_pattern_database,
    linear_conflict,
    make_disjoint_pdb_heuristic,
    make_linear_conflict_heuristic,
)

__all__ += [
    "AccurateTileDomain", "PatternDatabase", "StructuralHanoiDomain",
    "accurate_tile_fitness", "build_pattern_database", "hanoi_distance",
    "linear_conflict", "make_disjoint_pdb_heuristic", "make_linear_conflict_heuristic",
]

from repro.domains.pocket_cube import CubeMove, PocketCubeDomain, scrambled_state  # noqa: E402

__all__ += ["CubeMove", "PocketCubeDomain", "scrambled_state"]

from repro.domains.registry import (  # noqa: E402
    DomainEntry,
    create,
    domain_names,
    get_entry,
    list_entries,
    register,
)

__all__ += [
    "DomainEntry", "create", "domain_names", "get_entry", "list_entries", "register",
]
