"""Sliding-tile puzzle planning domain (paper, Section 4.2).

An ``n × n`` board holds ``n²-1`` numbered tiles and one blank; a move
slides a tile adjacent to the blank into the blank.  The paper's goal
fitness (equation 6) is based on the total Manhattan distance of all tiles
from their goal positions, normalised by the upper bound ``D·T`` where
``D = 2(n-1)`` is the longest distance a single tile may need to move and
``T = n²-1`` is the number of tiles:

    goal_fitness(s) = 1 - manhattan(s, goal) / (D · T)

Solvability follows Johnson & Story (1879): a configuration is reachable
from the goal iff it is an even permutation, adjusted for the blank's row on
even-width boards.

State representation: a flat tuple of length ``n²`` in row-major order, with
``0`` denoting the blank; the goal is ``(1, 2, ..., n²-1, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.domains.kernels import cached_kernel, grow
from repro.protocol import DomainKernel, PlanningDomain

__all__ = [
    "TileMove",
    "SlidingTileDomain",
    "TileKernel",
    "manhattan_distance",
    "is_solvable",
    "reversed_start",
    "random_solvable_start",
]

#: Slide directions: the *blank* moves this way (the tile moves opposite).
#: Fixed order — the decoder's gene→op mapping depends on it.
DIRECTIONS = (("up", -1, 0), ("down", 1, 0), ("left", 0, -1), ("right", 0, 1))


@dataclass(frozen=True)
class TileMove:
    """Slide the tile adjacent to the blank in *direction* into the blank.

    Direction names the blank's motion: ``"up"`` means the blank swaps with
    the tile above it.
    """

    direction: str

    def __str__(self) -> str:
        return f"slide({self.direction})"


_MOVES = {name: TileMove(name) for name, _, _ in DIRECTIONS}


def goal_tuple(n: int) -> tuple:
    """The canonical goal ``(1, ..., n²-1, 0)``."""
    return tuple(range(1, n * n)) + (0,)


def reversed_start(n: int) -> tuple:
    """The paper's Figure 3(a) start: blank first, tiles in descending order.

    With the blank top-left and tiles ``n²-1 .. 1``, the configuration is an
    even permutation of the canonical goal for every board size (verified by
    :func:`is_solvable` in tests) — the blank-last variant would be
    unsolvable on even-width boards.
    """
    return (0,) + tuple(range(n * n - 1, 0, -1))


def manhattan_distance(state: Sequence[int], goal: Sequence[int], n: int) -> int:
    """Total Manhattan distance of all tiles (blank excluded)."""
    goal_pos = {tile: divmod(i, n) for i, tile in enumerate(goal)}
    dist = 0
    for i, tile in enumerate(state):
        if tile == 0:
            continue
        r, c = divmod(i, n)
        gr, gc = goal_pos[tile]
        dist += abs(r - gr) + abs(c - gc)
    return dist


def _inversions(perm: Sequence[int]) -> int:
    """Inversion count of the tile sequence with the blank removed."""
    tiles = [t for t in perm if t != 0]
    inv = 0
    for i in range(len(tiles)):
        for j in range(i + 1, len(tiles)):
            if tiles[i] > tiles[j]:
                inv += 1
    return inv


def is_solvable(state: Sequence[int], n: int, goal: Optional[Sequence[int]] = None) -> bool:
    """Johnson–Story solvability test relative to *goal* (default canonical).

    Odd board width: reachable iff the inversion parities match.  Even board
    width: the invariant is ``inversions + row_of_blank`` parity.
    """
    if sorted(state) != list(range(n * n)):
        raise ValueError(f"state is not a permutation of 0..{n * n - 1}: {state}")
    if goal is None:
        goal = goal_tuple(n)

    def invariant(perm: Sequence[int]) -> int:
        inv = _inversions(perm)
        if n % 2 == 0:
            blank_row = list(perm).index(0) // n
            inv += blank_row
        return inv % 2

    return invariant(state) == invariant(goal)


class SlidingTileDomain(PlanningDomain):
    """The n×n sliding-tile puzzle as a GA-plannable domain."""

    def __init__(
        self,
        n: int,
        initial: Optional[Sequence[int]] = None,
        goal: Optional[Sequence[int]] = None,
        check_solvable: bool = True,
    ) -> None:
        if n < 2:
            raise ValueError(f"board must be at least 2×2, got n={n}")
        self.n = n
        self._goal = tuple(goal) if goal is not None else goal_tuple(n)
        self._initial = tuple(initial) if initial is not None else reversed_start(n)
        for label, s in (("initial", self._initial), ("goal", self._goal)):
            if sorted(s) != list(range(n * n)):
                raise ValueError(f"{label} state is not a permutation of 0..{n * n - 1}")
        if check_solvable and not is_solvable(self._initial, n, self._goal):
            raise ValueError(
                "initial state is not reachable from the goal "
                "(odd permutation; see Johnson & Story 1879)"
            )
        self.name = f"tile-{n}x{n}"
        self._goal_pos = {tile: divmod(i, n) for i, tile in enumerate(self._goal)}
        # Upper bound on the distance between any two states: D·T with
        # D = 2(n-1) the longest single-tile distance, T = n²-1 tiles.
        self.distance_bound = 2 * (n - 1) * (n * n - 1)

    # -- PlanningDomain ------------------------------------------------------

    @property
    def initial_state(self) -> tuple:
        return self._initial

    @property
    def goal_state(self) -> tuple:
        return self._goal

    @property
    def tile_count(self) -> int:
        return self.n * self.n - 1

    def valid_operations(self, state) -> Sequence[TileMove]:
        n = self.n
        blank = state.index(0)
        r, c = divmod(blank, n)
        ops = []
        for name, dr, dc in DIRECTIONS:
            if 0 <= r + dr < n and 0 <= c + dc < n:
                ops.append(_MOVES[name])
        return ops

    def apply(self, state, op: TileMove) -> tuple:
        n = self.n
        blank = state.index(0)
        r, c = divmod(blank, n)
        for name, dr, dc in DIRECTIONS:
            if name == op.direction:
                nr, nc = r + dr, c + dc
                break
        else:  # pragma: no cover - op constructed outside DIRECTIONS
            raise ValueError(f"unknown direction {op.direction!r}")
        if not (0 <= nr < n and 0 <= nc < n):
            raise ValueError(f"move {op} is invalid: blank at ({r}, {c})")
        other = nr * n + nc
        board = list(state)
        board[blank], board[other] = board[other], board[blank]
        return tuple(board)

    def manhattan(self, state) -> int:
        dist = 0
        n = self.n
        for i, tile in enumerate(state):
            if tile == 0:
                continue
            r, c = divmod(i, n)
            gr, gc = self._goal_pos[tile]
            dist += abs(r - gr) + abs(c - gc)
        return dist

    def goal_fitness(self, state) -> float:
        """Paper's equation 6: 1 - manhattan / (D·T)."""
        return 1.0 - self.manhattan(state) / self.distance_bound

    def is_goal(self, state) -> bool:
        return state == self._goal

    def state_key(self, state) -> Hashable:
        return state

    def decode_key(self, state) -> Hashable:
        """Gene→operation mapping depends only on the blank position.

        From equal blank positions, identical gene suffixes decode to
        identical move sequences (the blank trajectories stay in lockstep),
        which is exactly the paper's state-match condition — so matching on
        the blank position alone is sound and makes matches abundant.
        """
        return state.index(0)

    def kernel(self) -> "TileKernel":
        """Lazy packed-board kernel (any board size)."""
        return cached_kernel(self, TileKernel)


class TileKernel(DomainKernel):
    """Packed-board kernel for the sliding tile: lazy, vectorised expansion.

    States intern to rows of a ``uint8`` board matrix keyed by their raw
    bytes (GC-untrackable, unlike tuple keys — tile4's random walks made
    the object engine's retained tables a cyclic-GC scan burden).  The
    valid-operation *count* and goal arrays are filled at intern time from
    the blank position alone; successors materialise in bulk only for the
    ``(state, slot)`` pairs genes actually select, via row copies and a
    vectorised Manhattan recomputation — no per-state Python in the steady
    state.
    """

    def __init__(self, domain: SlidingTileDomain, max_states: int = 400_000) -> None:
        self.domain = domain
        self.max_ops = 4
        self.unit_cost = True
        self.epoch = 0
        self.max_states = max_states
        n = domain.n
        self._n = n
        cells = n * n
        self._cells = cells
        # Per blank position b: the valid directions in DIRECTIONS order,
        # their count, and the target cell of each slot.
        self._k_of_blank = np.zeros(cells, dtype=np.int32)
        self._slot_target = np.full((cells, 4), -1, dtype=np.int32)
        ops_of_blank = []
        for b in range(cells):
            r, c = divmod(b, n)
            k = 0
            ops = []
            for name, dr, dc in DIRECTIONS:
                if 0 <= r + dr < n and 0 <= c + dc < n:
                    self._slot_target[b, k] = (r + dr) * n + (c + dc)
                    ops.append(_MOVES[name])
                    k += 1
            self._k_of_blank[b] = k
            ops_of_blank.append(tuple(ops))
        self._ops_of_blank = tuple(ops_of_blank)
        # Goal row/col per tile value (tile 0 masked out of the distance).
        self._goal_r = np.zeros(cells, dtype=np.int64)
        self._goal_c = np.zeros(cells, dtype=np.int64)
        for pos, tile in enumerate(domain.goal_state):
            self._goal_r[tile], self._goal_c[tile] = divmod(pos, n)
        self._cell_r = np.arange(cells, dtype=np.int64) // n
        self._cell_c = np.arange(cells, dtype=np.int64) % n
        self._goal_board = np.asarray(domain.goal_state, dtype=np.uint8)
        self._distance_bound = domain.distance_bound
        self._init_tables()

    def _init_tables(self) -> None:
        cap = 1024
        self._ids = {}
        self._count = 0
        self._boards = np.zeros((cap, self._cells), dtype=np.uint8)
        self._blank = np.zeros(cap, dtype=np.int32)
        self._vc = np.zeros(cap, dtype=np.int32)
        self._succ = np.full((cap, 4), -1, dtype=np.int32)
        self._gfit = np.zeros(cap, dtype=np.float64)
        self._gmask = np.zeros(cap, dtype=bool)
        self._key_cache: dict = {}

    # -- DomainKernel surface -------------------------------------------------

    @property
    def n_states(self) -> int:
        return self._count

    @property
    def valid_count(self) -> np.ndarray:
        return self._vc

    @property
    def succ(self) -> np.ndarray:
        return self._succ

    @property
    def goal_fit(self) -> np.ndarray:
        return self._gfit

    @property
    def goal_mask(self) -> np.ndarray:
        return self._gmask

    @property
    def overflowed(self) -> bool:
        return self._count > self.max_states

    def reset(self) -> None:
        self._init_tables()
        self.epoch += 1

    def intern(self, state) -> int:
        board = np.asarray(state, dtype=np.uint8)
        return int(self._intern_batch(board[None, :])[0])

    def id_for_key(self, key: Hashable) -> Optional[int]:
        return self._ids.get(bytes(bytearray(key)))

    def _intern_batch(self, boards: np.ndarray) -> np.ndarray:
        """Ids for a ``(m, n²)`` uint8 board batch, admitting new rows in bulk."""
        m = boards.shape[0]
        out = np.empty(m, dtype=np.int64)
        new_rows: list = []
        ids = self._ids
        count = self._count
        for i in range(m):
            key = boards[i].tobytes()
            sid = ids.get(key)
            if sid is None:
                sid = count
                count += 1
                ids[key] = sid
                new_rows.append(i)
            out[i] = sid
        if new_rows:
            self._admit(boards[new_rows])
            self._count = count
        return out

    def _admit(self, new_boards: np.ndarray) -> None:
        """Append a block of distinct boards, computing their row data."""
        start = self._count
        needed = start + new_boards.shape[0]
        self._boards = grow(self._boards, needed)
        self._blank = grow(self._blank, needed)
        self._vc = grow(self._vc, needed)
        self._succ = grow(self._succ, needed, fill=-1)
        self._gfit = grow(self._gfit, needed)
        self._gmask = grow(self._gmask, needed)
        sl = slice(start, needed)
        self._boards[sl] = new_boards
        blank = np.argmin(new_boards, axis=1)
        self._blank[sl] = blank
        self._vc[sl] = self._k_of_blank[blank]
        self._succ[sl] = -1
        # Vectorised equation 6: positions of each tile vs its goal cell.
        # tile t sits at cell j  →  |r_j - gr_t| + |c_j - gc_t|, blank masked.
        tiles = new_boards.astype(np.int64)
        dist = (
            np.abs(self._cell_r[None, :] - self._goal_r[tiles])
            + np.abs(self._cell_c[None, :] - self._goal_c[tiles])
        )
        dist[tiles == 0] = 0
        manhattan = dist.sum(axis=1)
        self._gfit[sl] = 1.0 - manhattan / np.float64(self._distance_bound)
        self._gmask[sl] = (new_boards == self._goal_board[None, :]).all(axis=1)

    def fill_transitions(self, ids, slots) -> None:
        # Dedup (id, slot) pairs: the same miss can appear on many rows.
        code = ids.astype(np.int64) * 4 + slots
        code = np.unique(code)
        uids = code // 4
        uslots = code % 4
        fresh = self._succ[uids, uslots] < 0
        uids, uslots = uids[fresh], uslots[fresh]
        if uids.size == 0:
            return
        src = self._boards[uids].copy()
        blank = self._blank[uids].astype(np.int64)
        target = self._slot_target[blank, uslots].astype(np.int64)
        rows = np.arange(uids.size)
        src[rows, blank] = src[rows, target]
        src[rows, target] = 0
        nids = self._intern_batch(src)
        # _intern_batch may reallocate the tables; index fresh.
        self._succ[uids, uslots] = nids

    # -- reconstruction -------------------------------------------------------

    def state_of(self, sid: int):
        return self.state_key_of(sid)

    def state_key_of(self, sid: int) -> Hashable:
        key = self._key_cache.get(sid)
        if key is None:
            key = tuple(int(t) for t in self._boards[sid])
            self._key_cache[sid] = key
        return key

    def decode_key_of(self, sid: int) -> Hashable:
        return int(self._blank[sid])

    def state_keys_of(self, sids) -> list:
        # One C-level tolist for the whole batch instead of a per-state
        # genexpr; feeds the cache so scalar lookups stay consistent.
        sids = np.asarray(sids, dtype=np.int64)
        keys = [tuple(b) for b in self._boards[sids].tolist()]
        cache = self._key_cache
        for sid, key in zip(sids.tolist(), keys):
            cache[sid] = key
        return keys

    def decode_keys_of(self, sids) -> list:
        return self._blank[np.asarray(sids, dtype=np.int64)].tolist()

    def operations_of(self, sid: int) -> Sequence[TileMove]:
        return self._ops_of_blank[int(self._blank[sid])]


def random_solvable_start(
    n: int, rng: np.random.Generator, goal: Optional[Sequence[int]] = None
) -> tuple:
    """A uniformly random permutation, re-drawn until solvable.

    Exactly half of all permutations are solvable, so this terminates after
    two draws in expectation.
    """
    if goal is None:
        goal = goal_tuple(n)
    while True:
        perm = tuple(int(x) for x in rng.permutation(n * n))
        if is_solvable(perm, n, goal):
            return perm
