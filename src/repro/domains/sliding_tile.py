"""Sliding-tile puzzle planning domain (paper, Section 4.2).

An ``n × n`` board holds ``n²-1`` numbered tiles and one blank; a move
slides a tile adjacent to the blank into the blank.  The paper's goal
fitness (equation 6) is based on the total Manhattan distance of all tiles
from their goal positions, normalised by the upper bound ``D·T`` where
``D = 2(n-1)`` is the longest distance a single tile may need to move and
``T = n²-1`` is the number of tiles:

    goal_fitness(s) = 1 - manhattan(s, goal) / (D · T)

Solvability follows Johnson & Story (1879): a configuration is reachable
from the goal iff it is an even permutation, adjusted for the blank's row on
even-width boards.

State representation: a flat tuple of length ``n²`` in row-major order, with
``0`` denoting the blank; the goal is ``(1, 2, ..., n²-1, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.protocol import PlanningDomain

__all__ = [
    "TileMove",
    "SlidingTileDomain",
    "manhattan_distance",
    "is_solvable",
    "reversed_start",
    "random_solvable_start",
]

#: Slide directions: the *blank* moves this way (the tile moves opposite).
#: Fixed order — the decoder's gene→op mapping depends on it.
DIRECTIONS = (("up", -1, 0), ("down", 1, 0), ("left", 0, -1), ("right", 0, 1))


@dataclass(frozen=True)
class TileMove:
    """Slide the tile adjacent to the blank in *direction* into the blank.

    Direction names the blank's motion: ``"up"`` means the blank swaps with
    the tile above it.
    """

    direction: str

    def __str__(self) -> str:
        return f"slide({self.direction})"


_MOVES = {name: TileMove(name) for name, _, _ in DIRECTIONS}


def goal_tuple(n: int) -> tuple:
    """The canonical goal ``(1, ..., n²-1, 0)``."""
    return tuple(range(1, n * n)) + (0,)


def reversed_start(n: int) -> tuple:
    """The paper's Figure 3(a) start: blank first, tiles in descending order.

    With the blank top-left and tiles ``n²-1 .. 1``, the configuration is an
    even permutation of the canonical goal for every board size (verified by
    :func:`is_solvable` in tests) — the blank-last variant would be
    unsolvable on even-width boards.
    """
    return (0,) + tuple(range(n * n - 1, 0, -1))


def manhattan_distance(state: Sequence[int], goal: Sequence[int], n: int) -> int:
    """Total Manhattan distance of all tiles (blank excluded)."""
    goal_pos = {tile: divmod(i, n) for i, tile in enumerate(goal)}
    dist = 0
    for i, tile in enumerate(state):
        if tile == 0:
            continue
        r, c = divmod(i, n)
        gr, gc = goal_pos[tile]
        dist += abs(r - gr) + abs(c - gc)
    return dist


def _inversions(perm: Sequence[int]) -> int:
    """Inversion count of the tile sequence with the blank removed."""
    tiles = [t for t in perm if t != 0]
    inv = 0
    for i in range(len(tiles)):
        for j in range(i + 1, len(tiles)):
            if tiles[i] > tiles[j]:
                inv += 1
    return inv


def is_solvable(state: Sequence[int], n: int, goal: Optional[Sequence[int]] = None) -> bool:
    """Johnson–Story solvability test relative to *goal* (default canonical).

    Odd board width: reachable iff the inversion parities match.  Even board
    width: the invariant is ``inversions + row_of_blank`` parity.
    """
    if sorted(state) != list(range(n * n)):
        raise ValueError(f"state is not a permutation of 0..{n * n - 1}: {state}")
    if goal is None:
        goal = goal_tuple(n)

    def invariant(perm: Sequence[int]) -> int:
        inv = _inversions(perm)
        if n % 2 == 0:
            blank_row = list(perm).index(0) // n
            inv += blank_row
        return inv % 2

    return invariant(state) == invariant(goal)


class SlidingTileDomain(PlanningDomain):
    """The n×n sliding-tile puzzle as a GA-plannable domain."""

    def __init__(
        self,
        n: int,
        initial: Optional[Sequence[int]] = None,
        goal: Optional[Sequence[int]] = None,
        check_solvable: bool = True,
    ) -> None:
        if n < 2:
            raise ValueError(f"board must be at least 2×2, got n={n}")
        self.n = n
        self._goal = tuple(goal) if goal is not None else goal_tuple(n)
        self._initial = tuple(initial) if initial is not None else reversed_start(n)
        for label, s in (("initial", self._initial), ("goal", self._goal)):
            if sorted(s) != list(range(n * n)):
                raise ValueError(f"{label} state is not a permutation of 0..{n * n - 1}")
        if check_solvable and not is_solvable(self._initial, n, self._goal):
            raise ValueError(
                "initial state is not reachable from the goal "
                "(odd permutation; see Johnson & Story 1879)"
            )
        self.name = f"tile-{n}x{n}"
        self._goal_pos = {tile: divmod(i, n) for i, tile in enumerate(self._goal)}
        # Upper bound on the distance between any two states: D·T with
        # D = 2(n-1) the longest single-tile distance, T = n²-1 tiles.
        self.distance_bound = 2 * (n - 1) * (n * n - 1)

    # -- PlanningDomain ------------------------------------------------------

    @property
    def initial_state(self) -> tuple:
        return self._initial

    @property
    def goal_state(self) -> tuple:
        return self._goal

    @property
    def tile_count(self) -> int:
        return self.n * self.n - 1

    def valid_operations(self, state) -> Sequence[TileMove]:
        n = self.n
        blank = state.index(0)
        r, c = divmod(blank, n)
        ops = []
        for name, dr, dc in DIRECTIONS:
            if 0 <= r + dr < n and 0 <= c + dc < n:
                ops.append(_MOVES[name])
        return ops

    def apply(self, state, op: TileMove) -> tuple:
        n = self.n
        blank = state.index(0)
        r, c = divmod(blank, n)
        for name, dr, dc in DIRECTIONS:
            if name == op.direction:
                nr, nc = r + dr, c + dc
                break
        else:  # pragma: no cover - op constructed outside DIRECTIONS
            raise ValueError(f"unknown direction {op.direction!r}")
        if not (0 <= nr < n and 0 <= nc < n):
            raise ValueError(f"move {op} is invalid: blank at ({r}, {c})")
        other = nr * n + nc
        board = list(state)
        board[blank], board[other] = board[other], board[blank]
        return tuple(board)

    def manhattan(self, state) -> int:
        dist = 0
        n = self.n
        for i, tile in enumerate(state):
            if tile == 0:
                continue
            r, c = divmod(i, n)
            gr, gc = self._goal_pos[tile]
            dist += abs(r - gr) + abs(c - gc)
        return dist

    def goal_fitness(self, state) -> float:
        """Paper's equation 6: 1 - manhattan / (D·T)."""
        return 1.0 - self.manhattan(state) / self.distance_bound

    def is_goal(self, state) -> bool:
        return state == self._goal

    def state_key(self, state) -> Hashable:
        return state

    def decode_key(self, state) -> Hashable:
        """Gene→operation mapping depends only on the blank position.

        From equal blank positions, identical gene suffixes decode to
        identical move sequences (the blank trajectories stay in lockstep),
        which is exactly the paper's state-match condition — so matching on
        the blank position alone is sound and makes matches abundant.
        """
        return state.index(0)


def random_solvable_start(
    n: int, rng: np.random.Generator, goal: Optional[Sequence[int]] = None
) -> tuple:
    """A uniformly random permutation, re-drawn until solvable.

    Exactly half of all permutations are solvable, so this terminates after
    two draws in expectation.
    """
    if goal is None:
        goal = goal_tuple(n)
    while True:
        perm = tuple(int(x) for x in rng.permutation(n * n))
        if is_solvable(perm, n, goal):
            return perm
