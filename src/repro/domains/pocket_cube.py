"""The 2×2×2 Rubik's cube (Pocket Cube) planning domain.

Korf & Felner's disjoint-PDB paper (the paper's reference [9]) evaluates on
the sliding-tile puzzle *and* Rubik's cube; this domain adds the cube side
of that pair at the tractable 2×2×2 size (3,674,160 reachable states).

Cubie-level model (Kociemba conventions): eight corners, each with a
position (permutation index) and an orientation (0–2).  The DBL corner is
held fixed — only U, R and F face turns are generated, which never move it
— so whole-cube rotations are modded out and the solved state is unique.

State: ``(cp, co)`` — two 8-tuples (corner permutation and orientation).
Moves: U, U', U2, R, R', R2, F, F', F2 — all nine valid in every state, so
the gene→operation mapping is state-independent (``decode_key`` is
constant and state-aware crossover always finds matches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.domains.kernels import cached_kernel, grow
from repro.protocol import DomainKernel, PlanningDomain

__all__ = ["CubeMove", "CubeKernel", "PocketCubeDomain", "scrambled_state"]

# Corner position indices (Kociemba): URF UFL ULB UBR DFR DLF DBL DRB.
_SOLVED_CP = (0, 1, 2, 3, 4, 5, 6, 7)
_SOLVED_CO = (0, 0, 0, 0, 0, 0, 0, 0)

# Quarter-turn tables: after move M, the corner now at position i came from
# position PERM[i], and its orientation increases by TWIST[i] (mod 3).
_BASE = {
    "U": ((3, 0, 1, 2, 4, 5, 6, 7), (0, 0, 0, 0, 0, 0, 0, 0)),
    "R": ((4, 1, 2, 0, 7, 5, 6, 3), (2, 0, 0, 1, 1, 0, 0, 2)),
    "F": ((1, 5, 2, 3, 0, 4, 6, 7), (1, 2, 0, 0, 2, 1, 0, 0)),
}


@dataclass(frozen=True)
class CubeMove:
    """One face turn: face in {U, R, F}, quarter turns in {1, 2, 3}."""

    face: str
    turns: int

    def __str__(self) -> str:
        suffix = {1: "", 2: "2", 3: "'"}[self.turns]
        return f"{self.face}{suffix}"


#: Fixed move ordering for decode determinism.
MOVES = tuple(
    CubeMove(face, turns) for face in ("U", "R", "F") for turns in (1, 2, 3)
)


def _apply_quarter(state, face: str):
    cp, co = state
    perm, twist = _BASE[face]
    new_cp = tuple(cp[perm[i]] for i in range(8))
    new_co = tuple((co[perm[i]] + twist[i]) % 3 for i in range(8))
    return (new_cp, new_co)


def _apply_move(state, move: CubeMove):
    for _ in range(move.turns):
        state = _apply_quarter(state, move.face)
    return state


def scrambled_state(
    n_moves: int, rng: np.random.Generator
) -> Tuple[tuple, tuple]:
    """Apply *n_moves* random face turns to the solved cube."""
    state = (_SOLVED_CP, _SOLVED_CO)
    for _ in range(n_moves):
        state = _apply_move(state, MOVES[int(rng.integers(0, len(MOVES)))])
    return state


class PocketCubeDomain(PlanningDomain):
    """The Pocket Cube as a GA-plannable domain.

    Goal fitness: the fraction of the seven movable corners that are both
    correctly placed and correctly oriented (the fixed DBL corner is always
    correct and excluded), which is 1 exactly at the solved state.
    """

    def __init__(self, initial: Optional[Tuple[tuple, tuple]] = None) -> None:
        self._initial = initial if initial is not None else (_SOLVED_CP, _SOLVED_CO)
        cp, co = self._initial
        if sorted(cp) != list(range(8)):
            raise ValueError(f"corner permutation must be a permutation of 0..7, got {cp}")
        if len(co) != 8 or any(not 0 <= x <= 2 for x in co):
            raise ValueError(f"corner orientations must be eight values in 0..2, got {co}")
        if sum(co) % 3 != 0:
            raise ValueError("orientation sum must be divisible by 3 (unreachable state)")
        if cp[6] != 6 or co[6] != 0:
            raise ValueError(
                "the DBL corner (index 6) must stay fixed; rotate the "
                "whole-cube description so DBL is solved"
            )
        self.name = "pocket-cube"

    # -- PlanningDomain ------------------------------------------------------

    @property
    def initial_state(self):
        return self._initial

    def valid_operations(self, state) -> Sequence[CubeMove]:
        return MOVES  # every face turn is always legal

    def apply(self, state, op: CubeMove):
        return _apply_move(state, op)

    def goal_fitness(self, state) -> float:
        cp, co = state
        correct = sum(
            1 for i in range(8) if i != 6 and cp[i] == i and co[i] == 0
        )
        return correct / 7.0

    def is_goal(self, state) -> bool:
        return state == (_SOLVED_CP, _SOLVED_CO)

    def state_key(self, state) -> Hashable:
        return state

    def decode_key(self, state) -> Hashable:
        # The move set is state-independent: all states decode identically.
        return 0

    def kernel(self) -> "CubeKernel":
        """Lazy packed kernel over composed per-move permutation tables."""
        return cached_kernel(self, CubeKernel)

    @staticmethod
    def solved_state() -> Tuple[tuple, tuple]:
        return (_SOLVED_CP, _SOLVED_CO)


class CubeKernel(DomainKernel):
    """Packed cubie kernel: one composed (perm, twist) table per move.

    A state packs into 16 ``uint8`` values (8 corner positions + 8
    orientations).  Each of the nine moves — including half and
    counter-turns — collapses to a single permutation/twist pair obtained
    by applying the move to an identity-labelled cube, so a batch of
    states advances with two gathers and a mod-3 add.  All nine moves are
    always valid (``valid_count`` ≡ 9); only successor interning is lazy.
    """

    def __init__(self, domain: PocketCubeDomain, max_states: int = 400_000) -> None:
        self.domain = domain
        self.max_ops = 9
        self.unit_cost = True
        self.epoch = 0
        self.max_states = max_states
        # Composed tables: applying MOVES[m] maps cp -> cp[P[m]] and
        # co -> (co[P[m]] + T[m]) % 3 — read off by moving an
        # identity-labelled cube (cp = 0..7, co = 0).
        perms = np.empty((9, 8), dtype=np.int64)
        twists = np.empty((9, 8), dtype=np.uint8)
        identity = (tuple(range(8)), (0,) * 8)
        for m, move in enumerate(MOVES):
            cp, co = _apply_move(identity, move)
            perms[m] = cp
            twists[m] = co
        self._perms = perms
        self._twists = twists
        self._solved = np.concatenate(
            [np.arange(8, dtype=np.uint8), np.zeros(8, dtype=np.uint8)]
        )
        self._corner_idx = np.arange(8, dtype=np.uint8)
        self._init_tables()

    def _init_tables(self) -> None:
        cap = 1024
        self._ids = {}
        self._count = 0
        self._packed = np.zeros((cap, 16), dtype=np.uint8)  # cp ‖ co
        self._vc = np.full(cap, 9, dtype=np.int32)
        self._succ = np.full((cap, 9), -1, dtype=np.int32)
        self._gfit = np.zeros(cap, dtype=np.float64)
        self._gmask = np.zeros(cap, dtype=bool)
        self._key_cache: dict = {}

    # -- DomainKernel surface -------------------------------------------------

    @property
    def n_states(self) -> int:
        return self._count

    @property
    def valid_count(self) -> np.ndarray:
        return self._vc

    @property
    def succ(self) -> np.ndarray:
        return self._succ

    @property
    def goal_fit(self) -> np.ndarray:
        return self._gfit

    @property
    def goal_mask(self) -> np.ndarray:
        return self._gmask

    @property
    def overflowed(self) -> bool:
        return self._count > self.max_states

    def reset(self) -> None:
        self._init_tables()
        self.epoch += 1

    @staticmethod
    def _pack(state) -> np.ndarray:
        cp, co = state
        return np.asarray(tuple(cp) + tuple(co), dtype=np.uint8)

    def intern(self, state) -> int:
        return int(self._intern_batch(self._pack(state)[None, :])[0])

    def id_for_key(self, key: Hashable) -> Optional[int]:
        return self._ids.get(self._pack(key).tobytes())

    def _intern_batch(self, packed: np.ndarray) -> np.ndarray:
        m = packed.shape[0]
        out = np.empty(m, dtype=np.int64)
        new_rows: list = []
        ids = self._ids
        count = self._count
        for i in range(m):
            key = packed[i].tobytes()
            sid = ids.get(key)
            if sid is None:
                sid = count
                count += 1
                ids[key] = sid
                new_rows.append(i)
            out[i] = sid
        if new_rows:
            self._admit(packed[new_rows])
            self._count = count
        return out

    def _admit(self, rows: np.ndarray) -> None:
        start = self._count
        needed = start + rows.shape[0]
        self._packed = grow(self._packed, needed)
        self._vc = grow(self._vc, needed, fill=9)
        self._succ = grow(self._succ, needed, fill=-1)
        self._gfit = grow(self._gfit, needed)
        self._gmask = grow(self._gmask, needed)
        sl = slice(start, needed)
        self._packed[sl] = rows
        self._vc[sl] = 9
        self._succ[sl] = -1
        cp = rows[:, :8]
        co = rows[:, 8:]
        placed = (cp == self._corner_idx[None, :]) & (co == 0)
        placed[:, 6] = False  # DBL is fixed and excluded from the count
        correct = placed.sum(axis=1).astype(np.int64)
        self._gfit[sl] = correct / 7.0
        self._gmask[sl] = (rows == self._solved[None, :]).all(axis=1)

    def fill_transitions(self, ids, slots) -> None:
        code = ids.astype(np.int64) * 9 + slots
        code = np.unique(code)
        uids = code // 9
        uslots = code % 9
        fresh = self._succ[uids, uslots] < 0
        uids, uslots = uids[fresh], uslots[fresh]
        if uids.size == 0:
            return
        out = np.empty((uids.size, 16), dtype=np.uint8)
        src = self._packed[uids]
        for m in range(9):
            sel = uslots == m
            if not sel.any():
                continue
            perm = self._perms[m]
            cp = src[sel, :8]
            co = src[sel, 8:]
            out[sel, :8] = cp[:, perm]
            out[sel, 8:] = (co[:, perm] + self._twists[m][None, :]) % 3
        nids = self._intern_batch(out)
        self._succ[uids, uslots] = nids

    # -- reconstruction -------------------------------------------------------

    def state_of(self, sid: int):
        return self.state_key_of(sid)

    def state_key_of(self, sid: int) -> Hashable:
        key = self._key_cache.get(sid)
        if key is None:
            row = self._packed[sid]
            key = (
                tuple(int(x) for x in row[:8]),
                tuple(int(x) for x in row[8:]),
            )
            self._key_cache[sid] = key
        return key

    def decode_key_of(self, sid: int) -> Hashable:
        return 0

    def operations_of(self, sid: int) -> Sequence[CubeMove]:
        return MOVES
