"""The 2×2×2 Rubik's cube (Pocket Cube) planning domain.

Korf & Felner's disjoint-PDB paper (the paper's reference [9]) evaluates on
the sliding-tile puzzle *and* Rubik's cube; this domain adds the cube side
of that pair at the tractable 2×2×2 size (3,674,160 reachable states).

Cubie-level model (Kociemba conventions): eight corners, each with a
position (permutation index) and an orientation (0–2).  The DBL corner is
held fixed — only U, R and F face turns are generated, which never move it
— so whole-cube rotations are modded out and the solved state is unique.

State: ``(cp, co)`` — two 8-tuples (corner permutation and orientation).
Moves: U, U', U2, R, R', R2, F, F', F2 — all nine valid in every state, so
the gene→operation mapping is state-independent (``decode_key`` is
constant and state-aware crossover always finds matches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.protocol import PlanningDomain

__all__ = ["CubeMove", "PocketCubeDomain", "scrambled_state"]

# Corner position indices (Kociemba): URF UFL ULB UBR DFR DLF DBL DRB.
_SOLVED_CP = (0, 1, 2, 3, 4, 5, 6, 7)
_SOLVED_CO = (0, 0, 0, 0, 0, 0, 0, 0)

# Quarter-turn tables: after move M, the corner now at position i came from
# position PERM[i], and its orientation increases by TWIST[i] (mod 3).
_BASE = {
    "U": ((3, 0, 1, 2, 4, 5, 6, 7), (0, 0, 0, 0, 0, 0, 0, 0)),
    "R": ((4, 1, 2, 0, 7, 5, 6, 3), (2, 0, 0, 1, 1, 0, 0, 2)),
    "F": ((1, 5, 2, 3, 0, 4, 6, 7), (1, 2, 0, 0, 2, 1, 0, 0)),
}


@dataclass(frozen=True)
class CubeMove:
    """One face turn: face in {U, R, F}, quarter turns in {1, 2, 3}."""

    face: str
    turns: int

    def __str__(self) -> str:
        suffix = {1: "", 2: "2", 3: "'"}[self.turns]
        return f"{self.face}{suffix}"


#: Fixed move ordering for decode determinism.
MOVES = tuple(
    CubeMove(face, turns) for face in ("U", "R", "F") for turns in (1, 2, 3)
)


def _apply_quarter(state, face: str):
    cp, co = state
    perm, twist = _BASE[face]
    new_cp = tuple(cp[perm[i]] for i in range(8))
    new_co = tuple((co[perm[i]] + twist[i]) % 3 for i in range(8))
    return (new_cp, new_co)


def _apply_move(state, move: CubeMove):
    for _ in range(move.turns):
        state = _apply_quarter(state, move.face)
    return state


def scrambled_state(
    n_moves: int, rng: np.random.Generator
) -> Tuple[tuple, tuple]:
    """Apply *n_moves* random face turns to the solved cube."""
    state = (_SOLVED_CP, _SOLVED_CO)
    for _ in range(n_moves):
        state = _apply_move(state, MOVES[int(rng.integers(0, len(MOVES)))])
    return state


class PocketCubeDomain(PlanningDomain):
    """The Pocket Cube as a GA-plannable domain.

    Goal fitness: the fraction of the seven movable corners that are both
    correctly placed and correctly oriented (the fixed DBL corner is always
    correct and excluded), which is 1 exactly at the solved state.
    """

    def __init__(self, initial: Optional[Tuple[tuple, tuple]] = None) -> None:
        self._initial = initial if initial is not None else (_SOLVED_CP, _SOLVED_CO)
        cp, co = self._initial
        if sorted(cp) != list(range(8)):
            raise ValueError(f"corner permutation must be a permutation of 0..7, got {cp}")
        if len(co) != 8 or any(not 0 <= x <= 2 for x in co):
            raise ValueError(f"corner orientations must be eight values in 0..2, got {co}")
        if sum(co) % 3 != 0:
            raise ValueError("orientation sum must be divisible by 3 (unreachable state)")
        if cp[6] != 6 or co[6] != 0:
            raise ValueError(
                "the DBL corner (index 6) must stay fixed; rotate the "
                "whole-cube description so DBL is solved"
            )
        self.name = "pocket-cube"

    # -- PlanningDomain ------------------------------------------------------

    @property
    def initial_state(self):
        return self._initial

    def valid_operations(self, state) -> Sequence[CubeMove]:
        return MOVES  # every face turn is always legal

    def apply(self, state, op: CubeMove):
        return _apply_move(state, op)

    def goal_fitness(self, state) -> float:
        cp, co = state
        correct = sum(
            1 for i in range(8) if i != 6 and cp[i] == i and co[i] == 0
        )
        return correct / 7.0

    def is_goal(self, state) -> bool:
        return state == (_SOLVED_CP, _SOLVED_CO)

    def state_key(self, state) -> Hashable:
        return state

    def decode_key(self, state) -> Hashable:
        # The move set is state-independent: all states decode identically.
        return 0

    @staticmethod
    def solved_state() -> Tuple[tuple, tuple]:
        return (_SOLVED_CP, _SOLVED_CO)
