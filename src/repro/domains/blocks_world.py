"""Blocks World — the domain the GenPlan seeding study used (paper §2).

Classic four-operator formulation with an explicit gripper: ``pickup`` /
``putdown`` (table) and ``stack`` / ``unstack`` (block-on-block).  Provided
both as a grounded STRIPS problem (for the classical planners and
Graphplan) and pre-wrapped as a GA-plannable domain with a goal fitness
counting satisfied goal atoms.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.planning.adapter import StripsDomainAdapter
from repro.planning.conditions import atom
from repro.planning.grounding import OperatorSchema, ground_all
from repro.planning.problem import PlanningProblem

__all__ = ["blocks_world_problem", "BlocksWorldDomain", "towers_to_atoms"]


def _schemas() -> list:
    pickup = OperatorSchema(
        name="pickup",
        parameters=(("?b", "block"),),
        preconditions=(atom("clear", "?b"), atom("ontable", "?b"), atom("handempty")),
        add=(atom("holding", "?b"),),
        delete=(atom("clear", "?b"), atom("ontable", "?b"), atom("handempty")),
    )
    putdown = OperatorSchema(
        name="putdown",
        parameters=(("?b", "block"),),
        preconditions=(atom("holding", "?b"),),
        add=(atom("clear", "?b"), atom("ontable", "?b"), atom("handempty")),
        delete=(atom("holding", "?b"),),
    )
    stack = OperatorSchema(
        name="stack",
        parameters=(("?b", "block"), ("?under", "block")),
        preconditions=(atom("holding", "?b"), atom("clear", "?under")),
        add=(atom("on", "?b", "?under"), atom("clear", "?b"), atom("handempty")),
        delete=(atom("holding", "?b"), atom("clear", "?under")),
        constraint=lambda b: b["?b"] != b["?under"],
    )
    unstack = OperatorSchema(
        name="unstack",
        parameters=(("?b", "block"), ("?under", "block")),
        preconditions=(atom("on", "?b", "?under"), atom("clear", "?b"), atom("handempty")),
        add=(atom("holding", "?b"), atom("clear", "?under")),
        delete=(atom("on", "?b", "?under"), atom("clear", "?b"), atom("handempty")),
        constraint=lambda b: b["?b"] != b["?under"],
    )
    return [pickup, putdown, stack, unstack]


def towers_to_atoms(towers: Sequence[Sequence[str]]) -> set:
    """Atoms describing a configuration given as towers (bottom-to-top lists).

    ``[["a", "b"], ["c"]]`` means b on a (a on the table) and c on the table.
    """
    atoms = {atom("handempty")}
    seen: set = set()
    for tower in towers:
        if not tower:
            raise ValueError("towers must be non-empty lists of block names")
        for blk in tower:
            if blk in seen:
                raise ValueError(f"block {blk!r} appears twice")
            seen.add(blk)
        atoms.add(atom("ontable", tower[0]))
        for below, above in zip(tower, tower[1:]):
            atoms.add(atom("on", above, below))
        atoms.add(atom("clear", tower[-1]))
    return atoms


def blocks_world_problem(
    initial_towers: Sequence[Sequence[str]],
    goal_towers: Sequence[Sequence[str]],
    name: str = "blocks-world",
) -> PlanningProblem:
    """Grounded STRIPS Blocks World between two tower configurations.

    Goal atoms are the full description of *goal_towers* minus the dynamic
    gripper/clear details that any completed rearrangement implies — we keep
    ``on``/``ontable`` atoms only, which pins the configuration exactly.
    """
    blocks = sorted({b for t in initial_towers for b in t})
    goal_blocks = sorted({b for t in goal_towers for b in t})
    if blocks != goal_blocks:
        raise ValueError(
            f"initial blocks {blocks} and goal blocks {goal_blocks} differ"
        )
    operations = ground_all(_schemas(), {"block": blocks})
    initial = towers_to_atoms(initial_towers)
    goal = {
        a for a in towers_to_atoms(goal_towers) if a[0] in ("on", "ontable")
    }
    conditions = set(initial) | set(goal)
    for op in operations:
        conditions |= op.preconditions | op.add | op.delete
    return PlanningProblem(
        conditions=frozenset(conditions),
        operations=tuple(operations),
        initial=frozenset(initial),
        goal=frozenset(goal),
        name=name,
    )


class BlocksWorldDomain(StripsDomainAdapter):
    """GA-plannable Blocks World (goal fitness = satisfied goal fraction)."""

    def __init__(
        self,
        initial_towers: Sequence[Sequence[str]],
        goal_towers: Sequence[Sequence[str]],
    ) -> None:
        super().__init__(blocks_world_problem(initial_towers, goal_towers))
