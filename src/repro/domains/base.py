"""Back-compat shim: the protocol moved to :mod:`repro.protocol`."""

from repro.protocol import PlanningDomain

__all__ = ["PlanningDomain"]
