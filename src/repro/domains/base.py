"""Documented re-export of the domain protocol (which lives in :mod:`repro.protocol`).

Historically the :class:`PlanningDomain` ABC was defined here; it moved to
:mod:`repro.protocol` so the core GA machinery can type against it without
importing any concrete domain.  This module stays as the conventional
import site inside the domains package and re-exports the full protocol
surface — the object ABC and the array-native :class:`DomainKernel` ABI
that backs the vectorised decode path (DESIGN.md §12).
"""

from repro.protocol import DomainKernel, PlanningDomain

__all__ = ["DomainKernel", "PlanningDomain"]
