"""Kernel plumbing: the generic table kernel and the per-domain cache.

The specialised kernels (Hanoi's dense base-3 tables, the sliding tile's
packed boards, the pocket cube's composed move tables) live next to their
domains; this module holds what they share:

- :func:`cached_kernel` — the one-kernel-per-domain-instance cache behind
  every ``PlanningDomain.kernel()`` implementation, so repeated capability
  probes are free and concurrent consumers (islands, multi-phase, several
  evaluators) share warm tables.  The cache is external to the domain on
  purpose: domains are pickled to process-pool workers, and a kernel held
  in an attribute would ship megabytes of tables with every pool start.
- :class:`TableKernel` — a generic, object-backed
  :class:`~repro.protocol.DomainKernel` for *any* domain with hashable
  state keys.  It builds its tables by calling the object API
  (``valid_operations`` / ``apply`` / ``goal_fitness`` / ``is_goal``) the
  first time each state or transition is needed, so it is exactly as
  correct as the domain itself — just amortised into arrays.  Specialised
  kernels beat it by *vectorising* expansion; it exists so irregular
  domains (and tests) can opt into the vector decode path with one line.

This module deliberately imports only :mod:`repro.protocol` and numpy —
never ``repro.core`` — so domain modules can define kernels without import
cycles.
"""

from __future__ import annotations

import weakref
from typing import Callable, Hashable, Optional, Sequence

import numpy as np

from repro.protocol import DomainKernel, PlanningDomain

__all__ = ["TableKernel", "cached_kernel", "grow"]


#: domain instance -> its kernel (or None for "probed, unsupported").
_KERNEL_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UNSUPPORTED = object()


def cached_kernel(
    domain: PlanningDomain,
    factory: Callable[[PlanningDomain], Optional[DomainKernel]],
) -> Optional[DomainKernel]:
    """The kernel for *domain*, built once per instance via *factory*.

    ``factory(domain)`` may return ``None`` ("unsupported at this size");
    the negative result is cached too.  Entries die with the domain
    instance (weak keys), so long-lived processes cycling through many
    domains don't accumulate tables.
    """
    hit = _KERNEL_CACHE.get(domain)
    if hit is not None:
        return None if hit is _UNSUPPORTED else hit
    kernel = factory(domain)
    _KERNEL_CACHE[domain] = _UNSUPPORTED if kernel is None else kernel
    return kernel


def grow(arr: np.ndarray, needed: int, fill=None) -> np.ndarray:
    """Amortised-doubling reallocation of a row-indexed table.

    Returns an array whose first dimension is at least *needed*, with the
    old rows copied over and (optionally) new rows set to *fill*.
    """
    cap = arr.shape[0]
    if needed <= cap:
        return arr
    new_cap = max(needed, 2 * cap)
    out = np.empty((new_cap,) + arr.shape[1:], dtype=arr.dtype)
    out[:cap] = arr
    if fill is not None:
        out[cap:] = fill
    return out


class TableKernel(DomainKernel):
    """Object-backed kernel: arrays grown by calling the domain's own API.

    Any domain with hashable, injective ``state_key`` values qualifies —
    including ones with dead ends (``valid_count`` 0) and non-unit
    operation costs.  Interning a state computes its valid-operation
    tuple, goal fitness and goal flag once; transitions are filled on
    demand per ``(state, slot)`` pair.  All values come from the object
    API verbatim, so bit-identity with the object decode path is inherited
    rather than re-proven.
    """

    def __init__(self, domain: PlanningDomain, max_states: int = 200_000) -> None:
        if max_states < 1:
            raise ValueError(f"max_states must be >= 1, got {max_states}")
        self.domain = domain
        self.max_states = max_states
        self.unit_cost = (
            type(domain).operation_cost is PlanningDomain.operation_cost
        )
        self.epoch = 0
        self.max_ops = 1  # grows with the widest state seen
        self._ids: dict = {}  # state_key -> id
        self._states: list = []  # id -> concrete state
        self._valid: list = []  # id -> valid-operation tuple
        cap = 256
        self._vc = np.zeros(cap, dtype=np.int32)
        self._succ = np.full((cap, self.max_ops), -1, dtype=np.int32)
        self._gfit = np.zeros(cap, dtype=np.float64)
        self._gmask = np.zeros(cap, dtype=bool)
        self._cost = (
            None if self.unit_cost else np.zeros((cap, self.max_ops), dtype=np.float64)
        )

    # -- DomainKernel surface -------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def valid_count(self) -> np.ndarray:
        return self._vc

    @property
    def succ(self) -> np.ndarray:
        return self._succ

    @property
    def goal_fit(self) -> np.ndarray:
        return self._gfit

    @property
    def goal_mask(self) -> np.ndarray:
        return self._gmask

    @property
    def op_cost(self) -> Optional[np.ndarray]:
        return self._cost

    @property
    def overflowed(self) -> bool:
        return len(self._states) > self.max_states

    def tables(self) -> dict:
        """Live backing arrays for the fused decode loop (no property hops).

        Handing out ``_vc`` / ``_succ`` / … directly keeps the per-sweep
        re-export (after every ``fill_transitions``) at dict-build cost;
        the arrays themselves are the same objects the properties serve.
        """
        return {
            "valid_count": self._vc,
            "succ": self._succ,
            "goal_fit": self._gfit,
            "goal_mask": self._gmask,
            "op_cost": self._cost,
        }

    def reset(self) -> None:
        self._ids.clear()
        self._states.clear()
        self._valid.clear()
        self._succ[:, :] = -1
        self.epoch += 1

    def intern(self, state) -> int:
        key = self.domain.state_key(state)
        sid = self._ids.get(key)
        if sid is not None:
            return sid
        return self._admit(key, state)

    def id_for_key(self, key: Hashable) -> Optional[int]:
        return self._ids.get(key)

    def _admit(self, key: Hashable, state) -> int:
        domain = self.domain
        sid = len(self._states)
        valid = tuple(domain.valid_operations(state))
        if len(valid) > self.max_ops:
            self._widen(len(valid))
        needed = sid + 1
        self._vc = grow(self._vc, needed)
        self._succ = grow(self._succ, needed, fill=-1)
        self._gfit = grow(self._gfit, needed)
        self._gmask = grow(self._gmask, needed)
        if self._cost is not None:
            self._cost = grow(self._cost, needed)
        self._ids[key] = sid
        self._states.append(state)
        self._valid.append(valid)
        self._vc[sid] = len(valid)
        self._succ[sid, :] = -1
        self._gfit[sid] = float(domain.goal_fitness(state))
        self._gmask[sid] = bool(domain.is_goal(state))
        return sid

    def _widen(self, new_max_ops: int) -> None:
        """Widen the per-slot tables when a state has more ops than any before."""
        old = self._succ
        self._succ = np.full((old.shape[0], new_max_ops), -1, dtype=np.int32)
        self._succ[:, : old.shape[1]] = old
        if self._cost is not None:
            old_c = self._cost
            self._cost = np.zeros((old_c.shape[0], new_max_ops), dtype=np.float64)
            self._cost[:, : old_c.shape[1]] = old_c
        self.max_ops = new_max_ops

    def fill_transitions(self, ids, slots) -> None:
        domain = self.domain
        seen = set()
        for sid, slot in zip(ids.tolist(), slots.tolist()):
            if (sid, slot) in seen or self._succ[sid, slot] >= 0:
                continue
            seen.add((sid, slot))
            op = self._valid[sid][slot]
            nid = self.intern(domain.apply(self._states[sid], op))
            # intern() may have reallocated the tables; index fresh.
            self._succ[sid, slot] = nid
            if self._cost is not None:
                self._cost[sid, slot] = float(domain.operation_cost(op))

    # -- reconstruction -------------------------------------------------------

    def state_of(self, sid: int):
        return self._states[sid]

    def operations_of(self, sid: int) -> Sequence:
        return self._valid[sid]
