"""Towers of Hanoi planning domain (paper, Section 4.1).

Three stakes A, B, C and ``n`` disks ``d1`` (smallest) .. ``dn`` (largest),
all initially on stake A; the goal is all disks on stake B.  One disk moves
per step and a larger disk may never rest on a smaller one.  The optimal
solution has ``2**n - 1`` moves.

Goal fitness (paper, equation 5): disk ``d_i`` has weight ``2**(i-1)``; the
fitness of a state is the total weight of disks on stake B divided by the
total weight ``2**n - 1``, so placing large disks correctly dominates.  The
paper itself points out the deceptiveness this creates: a state with every
disk *except* the largest on B scores just under 0.5 yet is farther from the
goal than the initial state.

State representation: a tuple of three tuples, one per stake, each listing
disk sizes bottom-to-top, e.g. the 3-disk initial state is
``((3, 2, 1), (), ())``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.domains.kernels import cached_kernel
from repro.protocol import DomainKernel, PlanningDomain
from repro.planning.conditions import atom
from repro.planning.grounding import OperatorSchema, ground_all
from repro.planning.problem import PlanningProblem

__all__ = [
    "HanoiMove",
    "HanoiDomain",
    "HanoiKernel",
    "hanoi_strips_problem",
    "optimal_hanoi_moves",
]

#: Largest instance the dense kernel tabulates (3^12 states ≈ 20 MB of
#: tables); bigger domains fall back to the object decode path.
_MAX_KERNEL_DISKS = 12

STAKES = ("A", "B", "C")
#: All ordered stake pairs, fixed order — the decoder's gene→op mapping
#: depends on this ordering being stable.
_MOVES = tuple(
    (src, dst) for src in range(3) for dst in range(3) if src != dst
)


@dataclass(frozen=True)
class HanoiMove:
    """Move the top disk of stake *src* onto stake *dst* (0=A, 1=B, 2=C)."""

    src: int
    dst: int

    def __str__(self) -> str:
        return f"move({STAKES[self.src]}->{STAKES[self.dst]})"


class HanoiDomain(PlanningDomain):
    """The n-disk Towers of Hanoi as a GA-plannable domain."""

    def __init__(self, n_disks: int, goal_stake: int = 1) -> None:
        if n_disks < 1:
            raise ValueError(f"need at least one disk, got {n_disks}")
        if goal_stake not in (0, 1, 2):
            raise ValueError(f"goal stake must be 0, 1 or 2, got {goal_stake}")
        self.n_disks = n_disks
        self.goal_stake = goal_stake
        self.name = f"hanoi-{n_disks}"
        # Weight of disk of size i is 2**(i-1); total = 2**n - 1.
        self._weights = [0] + [2 ** (i - 1) for i in range(1, n_disks + 1)]
        self._total_weight = 2**n_disks - 1
        self._initial = (tuple(range(n_disks, 0, -1)), (), ())
        self._moves = tuple(HanoiMove(s, d) for s, d in _MOVES)

    # -- PlanningDomain ------------------------------------------------------

    @property
    def initial_state(self):
        return self._initial

    def valid_operations(self, state) -> Sequence[HanoiMove]:
        ops = []
        for mv in self._moves:
            src_stack = state[mv.src]
            if not src_stack:
                continue
            dst_stack = state[mv.dst]
            if dst_stack and dst_stack[-1] < src_stack[-1]:
                continue  # larger disk may not rest on a smaller one
            ops.append(mv)
        return ops

    def apply(self, state, op: HanoiMove):
        stacks = list(state)
        src = stacks[op.src]
        disk = src[-1]
        stacks[op.src] = src[:-1]
        stacks[op.dst] = stacks[op.dst] + (disk,)
        return tuple(stacks)

    def goal_fitness(self, state) -> float:
        """Weighted fraction of disk mass already on the goal stake (eq. 5)."""
        weight_on_goal = sum(self._weights[d] for d in state[self.goal_stake])
        return weight_on_goal / self._total_weight

    def is_goal(self, state) -> bool:
        return len(state[self.goal_stake]) == self.n_disks

    def state_key(self, state) -> Hashable:
        return state

    def kernel(self) -> Optional["HanoiKernel"]:
        """Dense precompiled kernel (None beyond ``3**12`` states)."""
        if self.n_disks > _MAX_KERNEL_DISKS:
            return None
        return cached_kernel(self, HanoiKernel)

    # -- reference data ------------------------------------------------------

    @property
    def optimal_length(self) -> int:
        """Minimum number of moves: ``2**n - 1``."""
        return 2**self.n_disks - 1


class HanoiKernel(DomainKernel):
    """Fully precompiled array kernel for the n-disk Towers of Hanoi.

    A Hanoi state is exactly "which stake is each disk on" — the stacking
    order within a stake is forced by disk size — so the state id *is* the
    base-3 code ``sum_i stake(disk i+1) * 3**i`` and the whole transition
    system (``3**n`` states × 6 moves) is tabulated vectorised at
    construction.  ``fill_transitions`` is therefore a no-op and the decode
    loop never misses.
    """

    def __init__(self, domain: HanoiDomain) -> None:
        n = domain.n_disks
        if n > _MAX_KERNEL_DISKS:
            raise ValueError(
                f"HanoiKernel tabulates 3**n states; n={n} exceeds the "
                f"{_MAX_KERNEL_DISKS}-disk budget"
            )
        self.domain = domain
        self.max_ops = 6
        self.unit_cost = True
        self.epoch = 0
        self._n = n
        self._pow3 = 3 ** np.arange(n, dtype=np.int64)
        m = int(3**n)
        ids = np.arange(m, dtype=np.int64)
        # stakes[s, i] = stake of disk i+1 in state s (its base-3 digit i).
        stakes = (ids[:, None] // self._pow3[None, :]) % 3
        # top[s, t] = index of the smallest (= movable) disk on stake t, n if
        # empty; filled largest-disk-first so smaller disks overwrite.
        top = np.full((m, 3), n, dtype=np.int64)
        rows = np.arange(m)
        for i in range(n - 1, -1, -1):
            top[rows, stakes[:, i]] = i
        vc = np.zeros(m, dtype=np.int32)
        succ = np.full((m, 6), -1, dtype=np.int32)
        slot = np.zeros(m, dtype=np.int64)
        for mi, (src, dst) in enumerate(_MOVES):
            movable = top[:, src]
            ok = (movable < n) & (movable < top[:, dst])
            target = ids[ok] + (dst - src) * self._pow3[movable[ok]]
            succ[ids[ok], slot[ok]] = target
            slot[ok] += 1
            vc[ok] += 1
        self._vc = vc
        self._succ = succ
        # Exact goal fitness: integer disk-weight sums, one float division —
        # the same arithmetic (and rounding) as HanoiDomain.goal_fitness.
        weights = 2 ** np.arange(n, dtype=np.int64)  # weight of disk i+1
        on_goal = (stakes == domain.goal_stake) * weights[None, :]
        won = on_goal.sum(axis=1)
        self._gfit = won / np.float64(domain._total_weight)
        self._gmask = won == domain._total_weight
        self._ops_cache: dict = {}

    # -- DomainKernel surface -------------------------------------------------

    @property
    def n_states(self) -> int:
        return int(self._vc.shape[0])

    @property
    def valid_count(self) -> np.ndarray:
        return self._vc

    @property
    def succ(self) -> np.ndarray:
        return self._succ

    @property
    def goal_fit(self) -> np.ndarray:
        return self._gfit

    @property
    def goal_mask(self) -> np.ndarray:
        return self._gmask

    def intern(self, state) -> int:
        sid = 0
        for t, stack in enumerate(state):
            for disk in stack:
                sid += t * int(self._pow3[disk - 1])
        return sid

    def id_for_key(self, key: Hashable) -> Optional[int]:
        return self.intern(key)  # state_key is the state itself

    def fill_transitions(self, ids, slots) -> None:  # pragma: no cover - dense
        raise AssertionError("dense kernel has no unfilled transitions")

    def reset(self) -> None:
        """No-op: the dense tables are the whole (bounded) state space."""

    # -- reconstruction -------------------------------------------------------

    def state_of(self, sid: int):
        stacks: list = [[], [], []]
        for i in range(self._n - 1, -1, -1):
            stacks[(sid // int(self._pow3[i])) % 3].append(i + 1)
        return tuple(tuple(s) for s in stacks)

    def operations_of(self, sid: int) -> Sequence[HanoiMove]:
        # Slot order is the _MOVES order filtered to valid — exactly what
        # valid_operations returns, so delegate and cache the tuple.
        ops = self._ops_cache.get(sid)
        if ops is None:
            ops = tuple(self.domain.valid_operations(self.state_of(sid)))
            self._ops_cache[sid] = ops
        return ops



def optimal_hanoi_moves(n_disks: int, src: int = 0, dst: int = 1) -> list:
    """The classical recursive optimal solution, as :class:`HanoiMove` list.

    Used as ground truth in tests and as a seeding source in the seeding
    ablation.
    """
    if n_disks < 0:
        raise ValueError("negative disk count")
    moves: list = []

    def rec(k: int, a: int, b: int) -> None:
        if k == 0:
            return
        c = 3 - a - b  # the spare stake
        rec(k - 1, a, c)
        moves.append(HanoiMove(a, b))
        rec(k - 1, c, b)

    rec(n_disks, src, dst)
    return moves


def hanoi_strips_problem(n_disks: int) -> PlanningProblem:
    """A STRIPS encoding of the same puzzle, for the classical planners.

    Atoms: ``on(x, y)`` (disk or stake y directly supports x) and
    ``clear(x)`` (nothing rests on x).  Disks are ``1 .. n`` (ints, 1 the
    smallest); stakes are ``"A" | "B" | "C"``.  A disk may sit on any strictly
    larger disk or on any stake.
    """
    if n_disks < 1:
        raise ValueError(f"need at least one disk, got {n_disks}")
    disks = list(range(1, n_disks + 1))
    objects = {"disk": disks, "support": disks + list(STAKES)}

    def _smaller(binding) -> bool:
        d, frm, to = binding["?d"], binding["?from"], binding["?to"]
        if frm == to or d == frm or d == to:
            return False
        for place in (frm, to):
            if isinstance(place, int) and place <= d:
                return False  # can only rest on a strictly larger disk
        return True

    move = OperatorSchema(
        name="move",
        parameters=(("?d", "disk"), ("?from", "support"), ("?to", "support")),
        preconditions=(
            atom("clear", "?d"),
            atom("on", "?d", "?from"),
            atom("clear", "?to"),
        ),
        add=(atom("on", "?d", "?to"), atom("clear", "?from")),
        delete=(atom("on", "?d", "?from"), atom("clear", "?to")),
        constraint=_smaller,
    )
    operations = ground_all([move], objects)

    conditions = set()
    for op in operations:
        conditions |= op.preconditions | op.add | op.delete

    initial = {atom("clear", 1), atom("clear", "B"), atom("clear", "C")}
    for d in disks:
        below = d + 1 if d < n_disks else "A"
        initial.add(atom("on", d, below))
    conditions |= initial

    goal = {atom("on", n_disks, "B")}
    for d in disks[:-1]:
        goal.add(atom("on", d, d + 1))
    conditions |= goal

    return PlanningProblem(
        conditions=frozenset(conditions),
        operations=tuple(operations),
        initial=frozenset(initial),
        goal=frozenset(goal),
        name=f"hanoi-strips-{n_disks}",
    )
