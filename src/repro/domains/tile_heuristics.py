"""Stronger sliding-tile heuristics from the paper's related work.

Korf & Taylor (1996) improved Manhattan distance with the *linear conflict*
heuristic; Korf & Felner (2002) introduced *disjoint pattern database*
heuristics.  Both are implemented here, both admissible, and both pluggable
into the classical planners — and, normalised, into the GA's goal fitness
(the paper's future-work item "more accurate goal fitness functions").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.domains.sliding_tile import SlidingTileDomain

__all__ = [
    "linear_conflict",
    "make_linear_conflict_heuristic",
    "PatternDatabase",
    "build_pattern_database",
    "make_disjoint_pdb_heuristic",
    "accurate_tile_fitness",
]


def linear_conflict(state: Sequence[int], goal: Sequence[int], n: int) -> int:
    """Manhattan distance plus 2 per linear conflict (admissible).

    Two tiles are in linear conflict when they are both in their goal row
    (or column), their goal positions are in that same row (column), and
    they are reversed relative to each other — one must step aside, costing
    two extra moves.
    """
    goal_pos = {tile: divmod(i, n) for i, tile in enumerate(goal)}
    manhattan = 0
    for i, tile in enumerate(state):
        if tile == 0:
            continue
        r, c = divmod(i, n)
        gr, gc = goal_pos[tile]
        manhattan += abs(r - gr) + abs(c - gc)

    # Per line, the minimum number of tiles that must temporarily leave the
    # line is (tiles in the line) minus the longest subsequence already in
    # relative order — counting raw reversed pairs would overestimate and
    # break admissibility (e.g. a fully reversed triple has 3 reversed
    # pairs but only 2 tiles need to step aside).
    evictions = 0
    for r in range(n):
        goals = [
            goal_pos[t][1]
            for c in range(n)
            for t in (state[r * n + c],)
            if t != 0 and goal_pos[t][0] == r
        ]
        evictions += len(goals) - _longest_increasing(goals)
    for c in range(n):
        goals = [
            goal_pos[t][0]
            for r in range(n)
            for t in (state[r * n + c],)
            if t != 0 and goal_pos[t][1] == c
        ]
        evictions += len(goals) - _longest_increasing(goals)
    return manhattan + 2 * evictions


def _longest_increasing(seq: Sequence[int]) -> int:
    """Length of the longest strictly increasing subsequence (n is tiny)."""
    if not seq:
        return 0
    best = [1] * len(seq)
    for i in range(1, len(seq)):
        for j in range(i):
            if seq[j] < seq[i]:
                best[i] = max(best[i], best[j] + 1)
    return max(best)


def make_linear_conflict_heuristic(domain: SlidingTileDomain) -> Callable:
    """``h(state)`` closure over the domain's goal."""
    goal, n = domain.goal_state, domain.n

    def h(state) -> float:
        return float(linear_conflict(state, goal, n))

    return h


class PatternDatabase:
    """Exact distances for a tile subset, every other tile abstracted away.

    Keys are the positions of the pattern tiles (plus nothing else — the
    blank is abstracted too, which keeps the table small and the estimate
    admissible for the *moves-of-pattern-tiles* cost measure used by
    disjoint PDBs: only moves of pattern tiles are counted, so values from
    databases over disjoint tile sets may be summed).
    """

    def __init__(self, n: int, pattern: Tuple[int, ...], table: Dict[tuple, int]) -> None:
        self.n = n
        self.pattern = pattern
        self.table = table

    def key_of(self, state: Sequence[int]) -> tuple:
        pos = {t: i for i, t in enumerate(state)}
        return tuple(pos[t] for t in self.pattern)

    def lookup(self, state: Sequence[int]) -> int:
        value = self.table.get(self.key_of(state))
        if value is None:
            raise KeyError(
                f"pattern positions {self.key_of(state)} missing from the PDB "
                "(state not a permutation of the goal?)"
            )
        return value

    def __len__(self) -> int:
        return len(self.table)


def build_pattern_database(
    n: int, pattern: Sequence[int], goal: Optional[Sequence[int]] = None
) -> PatternDatabase:
    """Backward BFS from the goal over the pattern projection.

    State of the search: (pattern tile positions, blank position).  Cost
    counts only pattern-tile moves (blank-only moves are free), which is
    what makes disjoint PDB values additive.  The stored table maxes over
    blank positions, keyed by pattern positions alone.
    """
    if goal is None:
        goal = tuple(range(1, n * n)) + (0,)
    pattern = tuple(sorted(pattern))
    if not pattern or any(t <= 0 or t >= n * n for t in pattern):
        raise ValueError(f"pattern must name tiles in 1..{n * n - 1}, got {pattern}")
    pos_of = {t: i for i, t in enumerate(goal)}
    start_positions = tuple(pos_of[t] for t in pattern)
    blank_start = pos_of[0]

    # Dijkstra with 0/1 weights -> deque-based 0-1 BFS.
    table: Dict[tuple, int] = {}
    best: Dict[tuple, int] = {(start_positions, blank_start): 0}
    queue = deque([(start_positions, blank_start)])
    neighbours = _neighbour_table(n)

    while queue:
        key = queue.popleft()
        positions, blank = key
        cost = best[key]
        stored = table.get(positions)
        if stored is None or cost < stored:
            table[positions] = cost
        occupied = {p: idx for idx, p in enumerate(positions)}
        for nb in neighbours[blank]:
            if nb in occupied:
                # Moving a pattern tile into the blank: cost 1.
                idx = occupied[nb]
                new_positions = list(positions)
                new_positions[idx] = blank
                new_key = (tuple(new_positions), nb)
                if cost + 1 < best.get(new_key, 1 << 30):
                    best[new_key] = cost + 1
                    queue.append(new_key)
            else:
                # Moving a non-pattern tile (abstracted): cost 0.
                new_key = (positions, nb)
                if cost < best.get(new_key, 1 << 30):
                    best[new_key] = cost
                    queue.appendleft(new_key)

    return PatternDatabase(n=n, pattern=pattern, table=table)


def _neighbour_table(n: int) -> list:
    out = []
    for i in range(n * n):
        r, c = divmod(i, n)
        nbs = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < n and 0 <= nc < n:
                nbs.append(nr * n + nc)
        out.append(tuple(nbs))
    return out


def make_disjoint_pdb_heuristic(
    domain: SlidingTileDomain, partition: Optional[Sequence[Sequence[int]]] = None
) -> Callable:
    """Sum of disjoint PDB lookups (admissible; Korf & Felner 2002).

    Default partition: 3×3 → {1,2,3,4} + {5,6,7,8}; 4×4 → rows-ish split
    {1,2,3,4,5} + {6,7,8,9,10} + {11,12,13,14,15} (a 5-5-5 partition keeps
    the tables small enough to build in seconds).
    """
    n = domain.n
    if partition is None:
        tiles = list(range(1, n * n))
        if n == 3:
            partition = [tiles[:4], tiles[4:]]
        else:
            third = len(tiles) // 3
            partition = [tiles[:third], tiles[third : 2 * third], tiles[2 * third :]]
    flat = sorted(t for group in partition for t in group)
    if flat != list(range(1, n * n)):
        raise ValueError(f"partition must cover tiles 1..{n * n - 1} exactly, got {partition}")
    dbs = [build_pattern_database(n, group, domain.goal_state) for group in partition]

    def h(state) -> float:
        return float(sum(db.lookup(state) for db in dbs))

    return h


def accurate_tile_fitness(
    domain: SlidingTileDomain, heuristic: Optional[Callable] = None
) -> Callable:
    """A drop-in, sharper goal fitness for the GA: ``1 - h(s)/bound``.

    The paper closes with "our results confirm that an accurate goal
    fitness function is essential"; this wraps any admissible heuristic
    (default: linear conflict) into the normalised [0, 1] form the GA
    expects.  The bound stretches the Manhattan bound by the maximum
    possible conflict surcharge so the value stays in range.
    """
    h = heuristic if heuristic is not None else make_linear_conflict_heuristic(domain)
    n = domain.n
    # Each row/column admits at most C(n,2) conflicts at 2 moves each.
    conflict_bound = 2 * 2 * n * (n * (n - 1) // 2)
    bound = domain.distance_bound + conflict_bound

    def fitness(state) -> float:
        value = 1.0 - h(state) / bound
        return min(1.0, max(0.0, value))

    return fitness


class AccurateTileDomain(SlidingTileDomain):
    """Sliding-tile domain whose goal fitness uses a sharper heuristic.

    Same puzzle, same operations — only the GA's gradient changes.  Used by
    the accurate-fitness ablation to test the paper's closing claim.
    """

    def __init__(self, n: int, heuristic_name: str = "linear-conflict", **kw) -> None:
        super().__init__(n, **kw)
        if heuristic_name == "linear-conflict":
            h = make_linear_conflict_heuristic(self)
        elif heuristic_name == "pdb":
            h = make_disjoint_pdb_heuristic(self)
        else:
            raise ValueError(
                f"heuristic must be 'linear-conflict' or 'pdb', got {heuristic_name!r}"
            )
        self._accurate_fitness = accurate_tile_fitness(self, h)
        self.name = f"tile-{n}x{n}-{heuristic_name}"

    def goal_fitness(self, state) -> float:
        return self._accurate_fitness(state)
