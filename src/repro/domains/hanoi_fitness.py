"""Structural goal fitness for the Towers of Hanoi.

The paper's weighted-disk fitness (equation 5) is deceptive — it scores the
state "every disk except the largest on B" just under 0.5 although that
state is *farther* from the goal than the initial state, and the paper
itself flags this ("good heuristic functions still play important roles").

This module provides the future-work item "more accurate goal fitness
functions" for Hanoi: a fitness derived from the exact recursive distance
to the goal, which is computable in O(n) for any legal state.

Exact distance
--------------
Let the goal be "all n disks on stake g".  Work from the largest disk down:
if disk k already sits on the current target, recurse on disk k-1 with the
same target; otherwise disk k must move from its stake s to the target,
which first requires disks k-1..1 to be stacked on the spare stake
(6 - s - target), costing at least 2^(k-1) - 1 further moves after the
recursion; the target for disk k-1 becomes that spare.  This classic
recurrence gives the exact optimal distance, and

    fitness(s) = 1 - distance(s) / (2^n - 1)

is a monotone, deception-free gradient (the denominator is the worst-case
distance from any state to the all-on-one-stake goal).
"""

from __future__ import annotations

from typing import Sequence

from repro.domains.hanoi import HanoiDomain

__all__ = ["hanoi_distance", "StructuralHanoiDomain"]


def hanoi_distance(state: Sequence[Sequence[int]], n_disks: int, goal_stake: int = 1) -> int:
    """Exact minimum number of moves from *state* to all-disks-on-goal.

    O(n): one pass from the largest disk to the smallest.
    """
    stake_of = {}
    for idx, stack in enumerate(state):
        for disk in stack:
            stake_of[disk] = idx
    if len(stake_of) != n_disks:
        raise ValueError(
            f"state holds {len(stake_of)} disks, expected {n_disks}"
        )
    distance = 0
    target = goal_stake
    for disk in range(n_disks, 0, -1):
        s = stake_of[disk]
        if s == target:
            continue  # already in place; smaller disks keep the same target
        # Disk must move s -> target; the smaller tower must first clear to
        # the spare, then this disk moves (1), then the recursion continues
        # with the spare as the new target for the smaller tower.
        distance += 2 ** (disk - 1)
        target = 3 - s - target  # stakes are 0+1+2=3; the spare stake
    return distance


class StructuralHanoiDomain(HanoiDomain):
    """Hanoi with the exact-distance goal fitness (deception-free).

    Same states and moves as :class:`HanoiDomain`; only the GA's gradient
    changes.  Used by the accurate-fitness ablation.
    """

    def __init__(self, n_disks: int, goal_stake: int = 1) -> None:
        super().__init__(n_disks, goal_stake=goal_stake)
        self.name = f"hanoi-{n_disks}-structural"
        self._worst = 2**n_disks - 1

    def goal_fitness(self, state) -> float:
        d = hanoi_distance(state, self.n_disks, self.goal_stake)
        return 1.0 - d / self._worst
