"""The planning-domain protocol the GA planner couples to.

Lives at the package root (not inside ``repro.domains``) so low-level
modules — the STRIPS adapter, the search algorithms, the GA decoder — can
import it without triggering the domain package's __init__, which would
create an import cycle.

The GA's indirect encoding only needs four things from a domain: the start
state, the ordered list of valid operations in a state, the transition
function, and a goal fitness in ``[0, 1]``.  Everything else in the library
(STRIPS problems, the grid-workflow world, the toy puzzles) adapts to this
protocol.

Determinism contract
--------------------
``valid_operations(state)`` must return the same sequence, in the same
order, every time it is called with the same state.  The gene→operation
mapping (Section 3.1 of the paper) divides [0, 1) into ``k`` equal bins
indexed into this sequence, so a nondeterministic order would silently change
the meaning of a genome between evaluations.
"""

from __future__ import annotations

import abc
from typing import Generic, Hashable, Sequence, TypeVar

__all__ = ["PlanningDomain"]

S = TypeVar("S")  # state type
O = TypeVar("O")  # operation type


class PlanningDomain(abc.ABC, Generic[S, O]):
    """Abstract base for GA-plannable domains."""

    #: Human-readable domain name (used in reports).
    name: str = "domain"

    @property
    @abc.abstractmethod
    def initial_state(self) -> S:
        """The state the search starts from."""

    @abc.abstractmethod
    def valid_operations(self, state: S) -> Sequence[O]:
        """Operations valid in *state*, in a deterministic order.

        May be empty (dead end); the decoder stops decoding there.
        """

    @abc.abstractmethod
    def apply(self, state: S, op: O) -> S:
        """Successor state after executing *op* (assumed valid) in *state*."""

    @abc.abstractmethod
    def goal_fitness(self, state: S) -> float:
        """Quality of the match between *state* and the goal, in [0, 1].

        Must equal 1.0 exactly when *state* satisfies the goal.  This is the
        problem-specific component of the paper's fitness function.
        """

    def is_goal(self, state: S) -> bool:
        """Whether *state* satisfies all goal conditions.

        Default: goal fitness of 1.  Domains with float-precision concerns
        should override with an exact test.
        """
        return self.goal_fitness(state) >= 1.0

    def operation_cost(self, op: O) -> float:
        """Cost of an operation; unit by default (paper's experiments)."""
        return 1.0

    def state_key(self, state: S) -> Hashable:
        """Hashable identity of a state (used by caches and visited sets).

        Contract: keys must be cheap to build, hashable, and *injective* —
        two states may share a key only if they are interchangeable for
        planning (same valid operations, same transitions, same goal
        fitness).  The decode engine relies on this: it memoises
        ``(state_key, gene index) → successor`` transitions and resumes
        partial decodes from a *representative* concrete state it stored
        under the same key, so a key collision between genuinely different
        states would silently corrupt every cached evaluation.  The default
        (the state itself) is always correct for hashable immutable states.
        """
        return state

    def decode_key(self, state: S) -> Hashable:
        """Equivalence key for state-aware crossover's state-match test.

        The paper: "two states match if the same genetic code will be
        mapped to the same sequence of operations from these two states".
        Two states with equal decode keys MUST map every gene suffix to the
        same operation sequence.  Identical states trivially qualify, so
        the default is :meth:`state_key`; domains where the gene→operation
        mapping depends on less than the full state should override with
        the coarsest *provably sufficient* key — e.g. the sliding-tile
        puzzle's mapping depends only on the blank position, which makes
        matches abundant and state-aware crossover effective.
        """
        return self.state_key(state)

    def describe_operation(self, op: O) -> str:
        """Human-readable rendering of an operation."""
        return str(op)

    # -- convenience -------------------------------------------------------

    def execute(self, ops: Sequence[O]) -> S:
        """Apply a valid operation sequence from the initial state."""
        state = self.initial_state
        for i, op in enumerate(ops):
            valid = self.valid_operations(state)
            if op not in list(valid):
                raise ValueError(
                    f"operation {self.describe_operation(op)!r} at index {i} "
                    f"is not valid in the current state"
                )
            state = self.apply(state, op)
        return state

    def plan_cost(self, ops: Sequence[O]) -> float:
        return float(sum(self.operation_cost(op) for op in ops))
