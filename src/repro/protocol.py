"""The planning-domain protocol the GA planner couples to.

Lives at the package root (not inside ``repro.domains``) so low-level
modules — the STRIPS adapter, the search algorithms, the GA decoder — can
import it without triggering the domain package's __init__, which would
create an import cycle.

The GA's indirect encoding only needs four things from a domain: the start
state, the ordered list of valid operations in a state, the transition
function, and a goal fitness in ``[0, 1]``.  Everything else in the library
(STRIPS problems, the grid-workflow world, the toy puzzles) adapts to this
protocol.

Determinism contract
--------------------
``valid_operations(state)`` must return the same sequence, in the same
order, every time it is called with the same state.  The gene→operation
mapping (Section 3.1 of the paper) divides [0, 1) into ``k`` equal bins
indexed into this sequence, so a nondeterministic order would silently change
the meaning of a genome between evaluations.

The kernel ABI
--------------
Regular domains can additionally expose a :class:`DomainKernel` — an
array-level view of the same transition system (interned integer state
ids, per-state valid-operation *counts*, an int successor table, packed
goal-fitness/goal-mask arrays) that lets ``repro.core.vector_decode``
decode a whole population in numpy instead of walking Python objects
gene by gene.  The kernel is strictly optional: :meth:`PlanningDomain.
kernel` returns ``None`` by default and every consumer falls back to the
object path, so the two APIs coexist and must agree bit-for-bit wherever
both exist.
"""

from __future__ import annotations

import abc
from typing import Generic, Hashable, Optional, Sequence, TypeVar

__all__ = ["PlanningDomain", "DomainKernel"]

S = TypeVar("S")  # state type
O = TypeVar("O")  # operation type


class PlanningDomain(abc.ABC, Generic[S, O]):
    """Abstract base for GA-plannable domains."""

    #: Human-readable domain name (used in reports).
    name: str = "domain"

    @property
    @abc.abstractmethod
    def initial_state(self) -> S:
        """The state the search starts from."""

    @abc.abstractmethod
    def valid_operations(self, state: S) -> Sequence[O]:
        """Operations valid in *state*, in a deterministic order.

        May be empty (dead end); the decoder stops decoding there.
        """

    @abc.abstractmethod
    def apply(self, state: S, op: O) -> S:
        """Successor state after executing *op* (assumed valid) in *state*."""

    @abc.abstractmethod
    def goal_fitness(self, state: S) -> float:
        """Quality of the match between *state* and the goal, in [0, 1].

        Must equal 1.0 exactly when *state* satisfies the goal.  This is the
        problem-specific component of the paper's fitness function.
        """

    def is_goal(self, state: S) -> bool:
        """Whether *state* satisfies all goal conditions.

        Default: goal fitness of 1.  Domains with float-precision concerns
        should override with an exact test.
        """
        return self.goal_fitness(state) >= 1.0

    def operation_cost(self, op: O) -> float:
        """Cost of an operation; unit by default (paper's experiments)."""
        return 1.0

    def state_key(self, state: S) -> Hashable:
        """Hashable identity of a state (used by caches and visited sets).

        Contract: keys must be cheap to build, hashable, and *injective* —
        two states may share a key only if they are interchangeable for
        planning (same valid operations, same transitions, same goal
        fitness).  The decode engine relies on this: it memoises
        ``(state_key, gene index) → successor`` transitions and resumes
        partial decodes from a *representative* concrete state it stored
        under the same key, so a key collision between genuinely different
        states would silently corrupt every cached evaluation.  The default
        (the state itself) is always correct for hashable immutable states.
        """
        return state

    def decode_key(self, state: S) -> Hashable:
        """Equivalence key for state-aware crossover's state-match test.

        The paper: "two states match if the same genetic code will be
        mapped to the same sequence of operations from these two states".
        Two states with equal decode keys MUST map every gene suffix to the
        same operation sequence.  Identical states trivially qualify, so
        the default is :meth:`state_key`; domains where the gene→operation
        mapping depends on less than the full state should override with
        the coarsest *provably sufficient* key — e.g. the sliding-tile
        puzzle's mapping depends only on the blank position, which makes
        matches abundant and state-aware crossover effective.
        """
        return self.state_key(state)

    def describe_operation(self, op: O) -> str:
        """Human-readable rendering of an operation."""
        return str(op)

    def kernel(self) -> Optional["DomainKernel"]:
        """The domain's array-level kernel, or ``None`` when unsupported.

        Capability discovery hook for the vectorised decode path: callers
        probe ``domain.kernel()`` and fall back to the object API on
        ``None``.  Implementations should return a *cached* kernel (one per
        domain instance — see ``repro.domains.kernels.cached_kernel``) so
        repeated probes are free and concurrent consumers (islands, phases)
        share warm tables.  A domain may also return ``None`` selectively,
        e.g. when the instance is too large to tabulate.
        """
        return None

    # -- convenience -------------------------------------------------------

    def execute(self, ops: Sequence[O]) -> S:
        """Apply a valid operation sequence from the initial state."""
        state = self.initial_state
        for i, op in enumerate(ops):
            valid = self.valid_operations(state)
            if op not in list(valid):
                raise ValueError(
                    f"operation {self.describe_operation(op)!r} at index {i} "
                    f"is not valid in the current state"
                )
            state = self.apply(state, op)
        return state

    def plan_cost(self, ops: Sequence[O]) -> float:
        return float(sum(self.operation_cost(op) for op in ops))


class DomainKernel(abc.ABC, Generic[S, O]):
    """Array-level ABI over a domain's transition system.

    A kernel interns states to dense integer ids and exposes the decode
    loop's per-gene questions — "how many valid operations here?", "which
    successor does slot ``j`` lead to?", "is this a goal state, and how
    fit?" — as numpy arrays indexed by id, so
    :class:`repro.core.vector_decode.VectorDecoder` can advance *every*
    genome of a population by one gene with a handful of array gathers.

    Exactness contract (the whole point): for every interned id the arrays
    must agree bit-for-bit with the object API —

    - ``valid_count[i] == len(domain.valid_operations(state_of(i)))``,
    - slot ``j`` of ``succ[i]`` is the state reached by
      ``domain.apply(state, valid_operations(state)[j])``,
    - ``goal_fit[i] == float(domain.goal_fitness(state_of(i)))`` (the very
      same IEEE double, not merely close),
    - ``goal_mask[i] == domain.is_goal(state_of(i))``,
    - with ``unit_cost`` False, ``op_cost[i, j] ==
      float(domain.operation_cost(valid_operations(state)[j]))``.

    Invariants: *interned* ids (rows of the arrays) always have
    ``valid_count`` / ``goal_fit`` / ``goal_mask`` filled; ``succ`` entries
    are filled lazily — ``-1`` marks a transition not yet computed, and
    :meth:`fill_transitions` materialises requested ``(id, slot)`` pairs in
    bulk.  Dense kernels (precompiled tables) simply never contain ``-1``.
    Arrays may be *reallocated* by growth or :meth:`reset`; consumers must
    re-read the properties after any call that can intern states and must
    re-intern ids after a reset (``epoch`` changes).
    """

    #: The object-API domain this kernel mirrors.
    domain: "PlanningDomain[S, O]"
    #: Width of the ``succ`` table (max valid operations in any state).
    max_ops: int
    #: True when every operation costs exactly 1.0 (no ``op_cost`` table).
    unit_cost: bool = True
    #: Incremented by :meth:`reset`; interned ids are invalid across epochs.
    epoch: int = 0

    @property
    @abc.abstractmethod
    def n_states(self) -> int:
        """Number of interned states (ids are ``0 .. n_states-1``)."""

    @property
    @abc.abstractmethod
    def valid_count(self):
        """int array, ``valid_count[i]`` = number of valid ops in state i."""

    @property
    @abc.abstractmethod
    def succ(self):
        """int32 ``(capacity, max_ops)`` successor table; ``-1`` = unfilled."""

    @property
    @abc.abstractmethod
    def goal_fit(self):
        """float64 array of exact ``goal_fitness`` values per id."""

    @property
    @abc.abstractmethod
    def goal_mask(self):
        """bool array, ``goal_mask[i]`` = ``is_goal(state_of(i))``."""

    @property
    def op_cost(self):
        """float64 ``(capacity, max_ops)`` cost table; ``None`` if unit-cost."""
        return None

    @abc.abstractmethod
    def intern(self, state: S) -> int:
        """Id for *state*, interning it (and its row data) on first sight."""

    @abc.abstractmethod
    def id_for_key(self, key: Hashable) -> Optional[int]:
        """Id previously interned under ``domain.state_key`` *key*, or None.

        Used by dirty-prefix resume to re-enter the tables from a parent
        plan's ``state_keys``; ``None`` (evicted or never seen) makes the
        caller fall back to a full decode.
        """

    @abc.abstractmethod
    def fill_transitions(self, ids, slots) -> None:
        """Materialise ``succ`` (and ``op_cost``) for the given pairs.

        *ids*/*slots* are parallel int arrays of ``(state id, slot)`` pairs
        whose ``succ`` entry is ``-1``; duplicates allowed.  Successor
        states are interned as a side effect (arrays may reallocate).
        """

    def reset(self) -> None:
        """Drop interned state (bounded-memory escape hatch); bumps epoch.

        Dense kernels may keep their precompiled tables and make this a
        no-op as long as ids remain stable (then ``epoch`` must not change).
        """

    @property
    def overflowed(self) -> bool:
        """Whether the table grew past its budget and wants a :meth:`reset`."""
        return False

    def tables(self) -> dict:
        """Bulk export of the decode tables for fused per-row kernels.

        Returns ``{"valid_count", "succ", "goal_fit", "goal_mask",
        "op_cost"}`` mapping to the *live* backing arrays (``op_cost`` is
        ``None`` for unit-cost kernels) — views, never copies, so a
        compiled decode loop can index them directly without per-gene
        property dispatch.  The reallocation caveat applies with full
        force: any call that may intern states (:meth:`fill_transitions`,
        :meth:`intern`) invalidates a previous export, and consumers must
        call :meth:`tables` again afterwards.  Kernels whose properties
        compute anything per access should override this to hand out the
        raw arrays.
        """
        return {
            "valid_count": self.valid_count,
            "succ": self.succ,
            "goal_fit": self.goal_fit,
            "goal_mask": self.goal_mask,
            "op_cost": None if self.unit_cost else self.op_cost,
        }

    # -- reconstruction hooks (plan-keeping decodes) --------------------------

    @abc.abstractmethod
    def state_of(self, sid: int) -> S:
        """The concrete state object for an interned id."""

    @abc.abstractmethod
    def operations_of(self, sid: int) -> Sequence[O]:
        """``domain.valid_operations(state_of(sid))`` as a cached tuple."""

    def state_key_of(self, sid: int) -> Hashable:
        """``domain.state_key(state_of(sid))`` (override to serve cached)."""
        return self.domain.state_key(self.state_of(sid))

    def decode_key_of(self, sid: int) -> Hashable:
        """``domain.decode_key(state_of(sid))`` (override to serve cached)."""
        return self.domain.decode_key(self.state_of(sid))

    def state_keys_of(self, sids) -> list:
        """State keys for an int array of ids, in order.

        Bulk form of :meth:`state_key_of` — plan reconstruction asks for
        a whole batch's worth of keys at once, and kernels whose keys
        derive from packed rows can build them vectorised (one ``tolist``
        instead of one genexpr per state).  The default just loops.
        """
        return [self.state_key_of(int(s)) for s in sids]

    def decode_keys_of(self, sids) -> list:
        """Decode keys for an int array of ids, in order (bulk form)."""
        return [self.decode_key_of(int(s)) for s in sids]
