"""Ablation studies beyond the paper's tables (DESIGN.md §5).

Each driver returns a :class:`Table` like the main experiments; they probe
the design choices the paper discusses without measuring: crossover choice
on Hanoi, MaxLen sensitivity, fitness-weight balance, how to split a fixed
generation budget into phases, and GenPlan-style population seeding.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.experiments import (
    ExperimentScale,
    multiphase_config,
    run_multi_record,
    run_single_record,
    single_phase_config,
    hanoi_max_len,
    scale_from_env,
)
from repro.analysis.tables import Table
from repro.core import (
    GAConfig,
    MultiPhaseConfig,
    encode_operations,
    Individual,
    make_rng,
    run_ga,
    spawn_many,
)
from repro.domains.hanoi import HanoiDomain, optimal_hanoi_moves
from repro.domains.sliding_tile import SlidingTileDomain

__all__ = [
    "crossover_on_hanoi",
    "island_study",
    "maxlen_sweep",
    "weight_sweep",
    "phase_budget_sweep",
    "seeding_study",
]


def crossover_on_hanoi(
    scale: Optional[ExperimentScale] = None, seed: int = 7, n_disks: int = 5
) -> Table:
    """Do state-aware/mixed crossover help Hanoi too?  (Paper only tried
    random crossover on Hanoi.)"""
    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    table = Table(
        f"Ablation: crossover type on Hanoi-{n_disks} ({s.label} scale)",
        ["Crossover", "Avg Goal Fitness", "Solved Runs", "Total Runs", "Avg Size"],
    )
    for crossover in ("random", "state-aware", "mixed"):
        cfg = multiphase_config(s, hanoi_max_len(n_disks), domain.optimal_length, crossover)
        records = [run_multi_record(domain, cfg, rng) for rng in spawn_many(root, s.runs_hanoi)]
        solved = sum(r.solved for r in records)
        table.add_row(
            crossover,
            round(sum(r.goal_fitness for r in records) / len(records), 3),
            solved,
            len(records),
            round(sum(r.size for r in records) / len(records), 1),
        )
    return table


def maxlen_sweep(
    scale: Optional[ExperimentScale] = None,
    seed: int = 11,
    n_disks: int = 5,
    multipliers: Sequence[float] = (1, 2, 5, 10),
) -> Table:
    """MaxLen sensitivity: "chosen to ensure GA search quality while not
    incurring too much computation time" — this quantifies the trade."""
    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    optimal = domain.optimal_length
    table = Table(
        f"Ablation: MaxLen on Hanoi-{n_disks}, single-phase ({s.label} scale)",
        ["MaxLen (x optimal)", "MaxLen", "Avg Goal Fitness", "Solved Runs", "Total Runs", "Avg Time (s)"],
    )
    for mult in multipliers:
        max_len = max(optimal, int(mult * optimal))
        cfg = single_phase_config(s, max_len, optimal, "random")
        records = [run_single_record(domain, cfg, rng) for rng in spawn_many(root, s.runs_hanoi)]
        table.add_row(
            mult,
            max_len,
            round(sum(r.goal_fitness for r in records) / len(records), 3),
            sum(r.solved for r in records),
            len(records),
            round(sum(r.elapsed_seconds for r in records) / len(records), 2),
        )
    return table


def weight_sweep(
    scale: Optional[ExperimentScale] = None,
    seed: int = 13,
    n_disks: int = 5,
    goal_weights: Sequence[float] = (0.5, 0.7, 0.9, 1.0),
) -> Table:
    """Goal/cost weight balance (paper uses 0.9/0.1)."""
    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    table = Table(
        f"Ablation: fitness weights on Hanoi-{n_disks} ({s.label} scale)",
        ["w_goal", "w_cost", "Avg Goal Fitness", "Solved Runs", "Total Runs", "Avg Size"],
    )
    for wg in goal_weights:
        cfg = single_phase_config(s, hanoi_max_len(n_disks), domain.optimal_length, "random")
        cfg = cfg.replace(goal_weight=wg, cost_weight=round(1.0 - wg, 10))
        records = [run_single_record(domain, cfg, rng) for rng in spawn_many(root, s.runs_hanoi)]
        table.add_row(
            wg,
            round(1.0 - wg, 3),
            round(sum(r.goal_fitness for r in records) / len(records), 3),
            sum(r.solved for r in records),
            len(records),
            round(sum(r.size for r in records) / len(records), 1),
        )
    return table


def phase_budget_sweep(
    scale: Optional[ExperimentScale] = None,
    seed: int = 17,
    n_disks: int = 5,
    splits: Sequence[int] = (1, 2, 5, 10),
) -> Table:
    """Same total generation budget, different phase counts.

    Probes the paper's central claim — that restarting from the best final
    state beats one long run — while holding compute constant.
    """
    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    total = s.generations_single
    table = Table(
        f"Ablation: phase budget split on Hanoi-{n_disks}, {total} total generations ({s.label} scale)",
        ["Phases", "Gens/Phase", "Avg Goal Fitness", "Solved Runs", "Total Runs"],
    )
    for n_phases in splits:
        per_phase = max(1, total // n_phases)
        phase_cfg = single_phase_config(
            s, hanoi_max_len(n_disks), domain.optimal_length, "random"
        ).replace(generations=per_phase, stop_on_goal=False)
        mp = MultiPhaseConfig(
            max_phases=n_phases, phase=phase_cfg, early_stop_in_phase=s.early_stop_in_phase
        )
        records = [run_multi_record(domain, mp, rng) for rng in spawn_many(root, s.runs_hanoi)]
        table.add_row(
            n_phases,
            per_phase,
            round(sum(r.goal_fitness for r in records) / len(records), 3),
            sum(r.solved for r in records),
            len(records),
        )
    return table


def seeding_study(
    scale: Optional[ExperimentScale] = None,
    seed: int = 19,
    n_disks: int = 5,
    seed_fractions: Sequence[float] = (0.0, 0.05, 0.25),
) -> Table:
    """GenPlan-style seeding (related work [22]): inject noisy encodings of a
    *prefix* of the optimal plan into the initial population."""
    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    optimal = optimal_hanoi_moves(n_disks)
    prefix = optimal[: len(optimal) // 2]  # partial solution, as in [22]
    table = Table(
        f"Ablation: population seeding on Hanoi-{n_disks} ({s.label} scale)",
        ["Seed Fraction", "Avg Goal Fitness", "Solved Runs", "Total Runs", "Avg Gens"],
    )
    for frac in seed_fractions:
        cfg = single_phase_config(s, hanoi_max_len(n_disks), domain.optimal_length, "random")
        n_seeds = int(frac * cfg.population_size)
        records = []
        for rng in spawn_many(root, s.runs_hanoi):
            seeds = [
                Individual(genes=encode_operations(domain, domain.initial_state, prefix, rng=rng))
                for _ in range(n_seeds)
            ]
            result = run_ga(domain, cfg, rng, seeds=seeds)
            records.append(_run_single_result(result))
        solved = [r for r in records if r["solved"]]
        gens = [r["gens"] for r in solved if r["gens"] is not None]
        table.add_row(
            frac,
            round(sum(r["goal"] for r in records) / len(records), 3),
            len(solved),
            len(records),
            round(sum(gens) / len(gens), 1) if gens else "-",
        )
    return table


def _run_single_result(result) -> dict:
    assert result.best.fitness is not None
    return {
        "goal": result.best.fitness.goal,
        "solved": result.best.fitness.goal_reached,
        "gens": result.solved_at_generation,
    }


def island_study(
    scale: Optional[ExperimentScale] = None,
    seed: int = 23,
    n_disks: int = 5,
    n_islands: int = 4,
) -> Table:
    """Island model vs one panmictic population at equal evaluation budget.

    Beyond-paper extension: splits the same population size across
    *n_islands* ring-migrating islands and compares solve rate on the
    deceptive weighted-disk Hanoi fitness.
    """
    from repro.core import IslandConfig, run_islands

    s = scale or scale_from_env()
    root = make_rng(seed)
    domain = HanoiDomain(n_disks)
    max_len = hanoi_max_len(n_disks)
    total_pop = s.population_size
    table = Table(
        f"Ablation: island model on Hanoi-{n_disks}, total population {total_pop} ({s.label} scale)",
        ["Structure", "Avg Goal Fitness", "Solved Runs", "Total Runs"],
    )

    single_cfg = single_phase_config(s, max_len, domain.optimal_length, "random")
    records = [run_single_record(domain, single_cfg, rng) for rng in spawn_many(root, s.runs_hanoi)]
    table.add_row(
        "1 population",
        round(sum(r.goal_fitness for r in records) / len(records), 3),
        sum(r.solved for r in records),
        len(records),
    )

    per_island = max(2, total_pop // n_islands)
    island_cfg = IslandConfig(
        n_islands=n_islands,
        migration_interval=10,
        migration_size=max(1, per_island // 10),
        island=single_cfg.replace(population_size=per_island),
    )
    goals, solved = [], 0
    for rng in spawn_many(root, s.runs_hanoi):
        result = run_islands(domain, island_cfg, rng)
        assert result.best.fitness is not None
        goals.append(result.best.fitness.goal)
        solved += result.solved
    table.add_row(
        f"{n_islands} islands (ring migration)",
        round(sum(goals) / len(goals), 3),
        solved,
        len(goals),
    )
    return table
