"""ASCII rendering of the paper's figures.

Figures 1 and 2 are the 5-disk Towers of Hanoi initial and goal states;
Figure 3 shows the 15-puzzle's reversed initial state and its goal.  These
render the same states as deterministic text diagrams, which the figure
benches regenerate and the tests pin.
"""

from __future__ import annotations

from typing import Sequence

from repro.domains.hanoi import STAKES, HanoiDomain
from repro.domains.sliding_tile import SlidingTileDomain

__all__ = ["render_hanoi", "render_tile_board", "figure1", "figure2", "figure3"]


def render_hanoi(state: Sequence[Sequence[int]], n_disks: int) -> str:
    """Draw a Hanoi state, one column per stake, disks as ``=`` bars.

    >>> print(render_hanoi(((2, 1), (), ()), 2))  # doctest: +NORMALIZE_WHITESPACE
    """
    width = 2 * n_disks + 1  # widest disk plus the pole
    rows = []
    for level in range(n_disks - 1, -1, -1):  # top row first
        cells = []
        for stake in state:
            if level < len(stake):
                disk = stake[level]
                bar = "=" * disk + "|" + "=" * disk
                cells.append(bar.center(width))
            else:
                cells.append("|".center(width))
        rows.append("  ".join(cells))
    base = "  ".join(("-" * width) for _ in state)
    labels = "  ".join(STAKES[i].center(width) for i in range(len(state)))
    return "\n".join(rows + [base, labels])


def render_tile_board(state: Sequence[int], n: int) -> str:
    """Draw an n×n sliding-tile board; the blank is an empty cell."""
    if len(state) != n * n:
        raise ValueError(f"state length {len(state)} does not match n={n}")
    width = len(str(n * n - 1))
    lines = []
    sep = "+" + "+".join(["-" * (width + 2)] * n) + "+"
    for r in range(n):
        cells = []
        for c in range(n):
            tile = state[r * n + c]
            cells.append((" " * (width + 2)) if tile == 0 else f" {tile:>{width}} ")
        lines.append(sep)
        lines.append("|" + "|".join(cells) + "|")
    lines.append(sep)
    return "\n".join(lines)


def figure1() -> str:
    """Paper Figure 1: initial state of the 5-disk Towers of Hanoi."""
    domain = HanoiDomain(5)
    return render_hanoi(domain.initial_state, 5)


def figure2() -> str:
    """Paper Figure 2: goal state of the 5-disk Towers of Hanoi."""
    goal = ((), tuple(range(5, 0, -1)), ())
    return render_hanoi(goal, 5)


def figure3() -> str:
    """Paper Figure 3: 15-puzzle initial (reversed) and goal states."""
    domain = SlidingTileDomain(4)
    a = render_tile_board(domain.initial_state, 4)
    b = render_tile_board(domain.goal_state, 4)
    a_lines, b_lines = a.splitlines(), b.splitlines()
    out = ["(a) initial" + " " * (len(a_lines[0]) - 11) + "    (b) goal"]
    for la, lb in zip(a_lines, b_lines):
        out.append(f"{la}    {lb}")
    return "\n".join(out)
