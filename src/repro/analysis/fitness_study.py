"""Accurate-goal-fitness study (the paper's closing future-work item).

"Our results confirm that an accurate goal fitness function is essential to
achieving good search performance."  This driver measures exactly that:
the same GA, same budget, on the same puzzles, under

- Hanoi: the paper's weighted-disk fitness (deceptive) vs the exact
  recursive-distance fitness (:class:`StructuralHanoiDomain`);
- Sliding tile: the paper's Manhattan fitness vs linear-conflict and
  disjoint-PDB fitness (:class:`AccurateTileDomain`).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.experiments import (
    ExperimentScale,
    multiphase_config,
    run_multi_record,
    hanoi_max_len,
    scale_from_env,
    tile_init_length,
    tile_max_len,
)
from repro.analysis.tables import Table
from repro.core import make_rng, spawn_many
from repro.domains import (
    AccurateTileDomain,
    HanoiDomain,
    SlidingTileDomain,
    StructuralHanoiDomain,
)

__all__ = ["fitness_accuracy_study"]


def fitness_accuracy_study(
    scale: Optional[ExperimentScale] = None,
    seed: int = 29,
    n_disks: int = 6,
    tile_n: int = 3,
) -> Table:
    """Paper fitness vs accurate fitness, multi-phase GA, same budget."""
    s = scale or scale_from_env()
    root = make_rng(seed)
    table = Table(
        f"Ablation: goal-fitness accuracy ({s.label} scale)",
        ["Domain", "Goal Fitness Fn", "Solved Runs", "Total Runs", "Avg Plan Length", "Avg Generations"],
    )

    cells = [
        (f"hanoi-{n_disks}", "weighted disks (paper eq. 5)", HanoiDomain(n_disks),
         hanoi_max_len(n_disks), 2**n_disks - 1),
        (f"hanoi-{n_disks}", "exact distance (structural)", StructuralHanoiDomain(n_disks),
         hanoi_max_len(n_disks), 2**n_disks - 1),
        (f"tile-{tile_n}x{tile_n}", "Manhattan (paper eq. 6)", SlidingTileDomain(tile_n),
         tile_max_len(tile_n), tile_init_length(tile_n)),
        (f"tile-{tile_n}x{tile_n}", "linear conflict", AccurateTileDomain(tile_n, "linear-conflict"),
         tile_max_len(tile_n), tile_init_length(tile_n)),
    ]
    for name, label, domain, max_len, init in cells:
        cfg = multiphase_config(s, max_len, init, "random")
        records = [run_multi_record(domain, cfg, rng) for rng in spawn_many(root, s.runs_hanoi)]
        solved = [r for r in records if r.solved]
        gens = [r.generations for r in solved if r.generations is not None]
        table.add_row(
            name,
            label,
            len(solved),
            len(records),
            round(sum(r.size for r in records) / len(records), 1),
            round(sum(gens) / len(gens), 1) if gens else "-",
        )
    return table
