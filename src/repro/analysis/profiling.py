"""Profiling helpers, following the measure-first workflow.

"No optimization without measuring" — these wrappers make it one line to
profile a GA run or an experiment driver and get the top-k cumulative
offenders, without littering call sites with cProfile boilerplate.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Tuple, TypeVar

__all__ = ["profile_call"]

T = TypeVar("T")


def profile_call(fn: Callable[..., T], *args, top: int = 20, **kwargs) -> Tuple[T, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where *report* is the top-``top`` entries
    by cumulative time.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buf.getvalue()
