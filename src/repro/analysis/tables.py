"""Lightweight result tables: construction, text rendering, CSV export.

Every experiment driver returns a :class:`Table`; the bench harness prints
it in the same row layout the paper uses, so paper-vs-measured comparison
is a visual diff.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["Table"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> "Table":
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))
        return self

    def column(self, name: str) -> List[object]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.columns}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [self.columns] + [[_fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self, path: Optional[str | Path] = None) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def __str__(self) -> str:
        return self.render()
