"""GA-vs-classical-planner comparison driver (ablation bench).

Runs the GA planner and the deterministic/randomized baselines on the same
domain instances and tabulates solve rate, plan length, and nodes/genomes
evaluated — the paper's Section 1 claim ("forward- and backward-chaining
perform well only on small problems") made measurable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.analysis.experiments import (
    ExperimentScale,
    multiphase_config,
    hanoi_max_len,
    scale_from_env,
    tile_init_length,
    tile_max_len,
)
from repro.analysis.tables import Table
from repro.core import make_rng, run_multiphase, spawn
from repro.domains.hanoi import HanoiDomain
from repro.domains.sliding_tile import SlidingTileDomain
from repro.planning.search import (
    astar,
    breadth_first_search,
    goal_gap,
    greedy_best_first,
    hill_climbing,
    random_walk_planner,
)

__all__ = ["planner_comparison"]


def planner_comparison(
    scale: Optional[ExperimentScale] = None,
    seed: int = 23,
    hanoi_disks: int = 4,
    tile_n: int = 3,
    max_expansions: int = 200_000,
) -> Table:
    """All planners on one Hanoi and one tile instance."""
    s = scale or scale_from_env()
    root = make_rng(seed)
    table = Table(
        f"Planner comparison ({s.label} scale)",
        ["Domain", "Planner", "Solved", "Plan Length", "Work (nodes/genomes)", "Time (s)"],
    )

    instances = [
        (f"hanoi-{hanoi_disks}", HanoiDomain(hanoi_disks)),
        (f"tile-{tile_n}x{tile_n}", SlidingTileDomain(tile_n)),
    ]
    for name, domain in instances:
        if isinstance(domain, SlidingTileDomain):
            h = lambda st, d=domain: float(d.manhattan(st))
            max_len, init = tile_max_len(tile_n), tile_init_length(tile_n)
        else:
            h = goal_gap(domain, scale=float(2 ** (hanoi_disks + 1)))
            max_len, init = hanoi_max_len(hanoi_disks), domain.optimal_length

        r = breadth_first_search(domain, max_expansions=max_expansions)
        table.add_row(name, "BFS", r.solved, r.plan_length, r.expanded, round(r.elapsed_seconds, 3))

        r = astar(domain, heuristic=h, max_expansions=max_expansions)
        table.add_row(name, "A*", r.solved, r.plan_length, r.expanded, round(r.elapsed_seconds, 3))

        r = greedy_best_first(domain, heuristic=h, max_expansions=max_expansions)
        table.add_row(name, "Greedy BF (HSP2)", r.solved, r.plan_length, r.expanded, round(r.elapsed_seconds, 3))

        r = hill_climbing(domain, h, spawn(root))
        table.add_row(name, "Hill climb (HSP)", r.solved, r.plan_length, r.expanded, round(r.elapsed_seconds, 3))

        r = random_walk_planner(domain, spawn(root), walk_length=max_len, max_walks=200)
        table.add_row(name, "Random walk (Stocplan)", r.solved, r.plan_length, r.expanded, round(r.elapsed_seconds, 3))

        cfg = multiphase_config(s, max_len, init, "random")
        t0 = time.perf_counter()
        mp = run_multiphase(domain, cfg, spawn(root))
        genomes = mp.total_generations * s.population_size
        table.add_row(
            name, "GA (multi-phase)", mp.solved, mp.plan_length, genomes,
            round(time.perf_counter() - t0, 3),
        )
    return table
