"""Experiment harness: drivers for every paper table/figure plus ablations."""

from repro.analysis.ablations import (
    crossover_on_hanoi,
    island_study,
    maxlen_sweep,
    phase_budget_sweep,
    seeding_study,
    weight_sweep,
)
from repro.analysis.baselines import planner_comparison
from repro.analysis.experiments import (
    ExperimentScale,
    hanoi_max_len,
    hanoi_parameter_table,
    run_hanoi_table2,
    run_tile_table4,
    run_tile_table5,
    scale_from_env,
    tile_init_length,
    tile_max_len,
    tile_parameter_table,
)
from repro.analysis.profiling import profile_call
from repro.analysis.render import figure1, figure2, figure3, render_hanoi, render_tile_board
from repro.analysis.tables import Table

__all__ = [
    "ExperimentScale", "Table", "crossover_on_hanoi", "figure1", "figure2", "figure3",
    "hanoi_max_len", "hanoi_parameter_table", "maxlen_sweep", "phase_budget_sweep",
    "planner_comparison", "profile_call", "render_hanoi", "render_tile_board",
    "run_hanoi_table2", "run_tile_table4", "run_tile_table5", "scale_from_env",
    "seeding_study", "tile_init_length", "tile_max_len", "tile_parameter_table",
    "weight_sweep",
]

from repro.analysis.fitness_study import fitness_accuracy_study  # noqa: E402

__all__ += ["fitness_accuracy_study"]

from repro.analysis.stats_util import (  # noqa: E402
    MeanCI,
    bootstrap_ci,
    mann_whitney,
    mean_ci,
    summarize,
)

__all__ += ["MeanCI", "bootstrap_ci", "island_study", "mann_whitney", "mean_ci", "summarize"]
