"""Statistical helpers for experiment reporting.

Reproduction claims should come with uncertainty: these wrappers provide
mean ± t-based confidence intervals, bootstrap intervals, and the
Mann-Whitney U test (scipy) for comparing GA variants across runs — small
sample counts and non-normal fitness distributions make the rank test the
right default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sps

__all__ = ["MeanCI", "mean_ci", "bootstrap_ci", "mann_whitney", "summarize"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}] (n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean.

    A single observation yields a degenerate interval at the point value.
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one value")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    m = float(x.mean())
    if x.size == 1:
        return MeanCI(mean=m, low=m, high=m, confidence=confidence, n=1)
    sem = float(x.std(ddof=1)) / np.sqrt(x.size)
    if sem == 0.0:
        return MeanCI(mean=m, low=m, high=m, confidence=confidence, n=int(x.size))
    half = float(sps.t.ppf(0.5 + confidence / 2, df=x.size - 1)) * sem
    return MeanCI(mean=m, low=m - half, high=m + half, confidence=confidence, n=int(x.size))


def bootstrap_ci(
    values: Sequence[float],
    rng: np.random.Generator,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    statistic=np.mean,
) -> Tuple[float, float]:
    """Percentile bootstrap interval for an arbitrary statistic."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one value")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    samples = statistic(x[idx], axis=1)
    alpha = (1 - confidence) / 2
    return (
        float(np.quantile(samples, alpha)),
        float(np.quantile(samples, 1 - alpha)),
    )


def mann_whitney(
    a: Sequence[float], b: Sequence[float], alternative: str = "two-sided"
) -> Tuple[float, float]:
    """Mann-Whitney U: ``(statistic, p_value)`` for samples *a* vs *b*."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("both samples must be non-empty")
    result = sps.mannwhitneyu(list(a), list(b), alternative=alternative)
    return float(result.statistic), float(result.pvalue)


def summarize(values: Sequence[float]) -> dict:
    """Quick descriptive summary used by report generators."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one value")
    return {
        "n": int(x.size),
        "mean": float(x.mean()),
        "std": float(x.std(ddof=1)) if x.size > 1 else 0.0,
        "min": float(x.min()),
        "median": float(np.median(x)),
        "max": float(x.max()),
    }
