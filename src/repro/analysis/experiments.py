"""Experiment drivers: one function per paper table plus the ablations.

Every driver takes an :class:`ExperimentScale` so the same code serves two
regimes:

- ``ExperimentScale.paper()`` — the paper's parameters (pop 200, 500
  generations, 10 runs for Hanoi / 50 for tiles); minutes-to-hours of CPU.
- ``ExperimentScale.scaled(...)`` — small populations/budgets so the bench
  suite completes quickly while preserving every qualitative shape.

``scale_from_env()`` picks the paper regime when ``REPRO_FULL=1``.

MaxLen assumptions (the paper's MaxLen values are illegible in the source
scan; recorded in EXPERIMENTS.md):

- Hanoi: ``MaxLen = 5 * (2**n - 1)`` — five times the optimal length.  The
  paper's reported solution sizes (72.3–628.0 single-phase) exceed small
  powers of two and fit comfortably under this cap, and it reproduces the
  reported generation counts.
- Sliding tile: ``MaxLen = 2 * n**4`` (162 for 3×3, 512 for 4×4), against
  reported sizes 107–182 (3×3, ≤2 phases) and 832–922 (4×4, ≤5 phases).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.core import (
    GAConfig,
    MultiPhaseConfig,
    make_rng,
    run_ga,
    run_multiphase,
    spawn_many,
)
from repro.domains.hanoi import HanoiDomain
from repro.domains.sliding_tile import SlidingTileDomain

__all__ = [
    "ExperimentScale",
    "scale_from_env",
    "hanoi_max_len",
    "tile_max_len",
    "tile_init_length",
    "hanoi_parameter_table",
    "tile_parameter_table",
    "run_hanoi_table2",
    "run_tile_table4",
    "run_tile_table5",
    "RunRecord",
    "single_phase_config",
    "multiphase_config",
    "run_single_record",
    "run_multi_record",
]


def hanoi_max_len(n_disks: int) -> int:
    """MaxLen for the n-disk Hanoi GA: five times the optimal length."""
    return 5 * (2**n_disks - 1)


def tile_max_len(n: int) -> int:
    """MaxLen for the n×n tile GA: ``2 n^4``."""
    return 2 * n**4


def tile_init_length(n: int) -> int:
    """Initial individual size ``n² · log2(n²)`` (paper, Section 4.2)."""
    t = n * n
    return max(1, int(round(t * math.log2(t))))


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    population_size: int = 200
    generations_single: int = 500
    generations_phase: int = 100
    max_phases: int = 5
    runs_hanoi: int = 10
    runs_tile: int = 50
    hanoi_disks: tuple = (5, 6, 7)
    tile_sizes: tuple = (3, 4)
    early_stop_in_phase: bool = False
    label: str = "paper"

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def scaled(
        population_size: int = 80,
        generations_single: int = 120,
        generations_phase: int = 60,
        runs_hanoi: int = 3,
        runs_tile: int = 5,
        hanoi_disks: tuple = (4, 5),
        tile_sizes: tuple = (3,),
    ) -> "ExperimentScale":
        """Fast regime for the default bench suite (~seconds per cell)."""
        return ExperimentScale(
            population_size=population_size,
            generations_single=generations_single,
            generations_phase=generations_phase,
            max_phases=5,
            runs_hanoi=runs_hanoi,
            runs_tile=runs_tile,
            hanoi_disks=hanoi_disks,
            tile_sizes=tile_sizes,
            early_stop_in_phase=True,
            label="scaled",
        )


def scale_from_env() -> ExperimentScale:
    """``REPRO_FULL=1`` → paper fidelity; anything else → scaled."""
    if os.environ.get("REPRO_FULL", "") == "1":
        return ExperimentScale.paper()
    return ExperimentScale.scaled()


# -- parameter tables (Tables 1 and 3) ----------------------------------------


def hanoi_parameter_table(scale: Optional[ExperimentScale] = None) -> Table:
    """Table 1: parameter settings for the Towers of Hanoi experiments."""
    s = scale or ExperimentScale.paper()
    t = Table("Table 1: Towers of Hanoi GA parameters", ["Parameter", "Value"])
    t.add_row("Population size", s.population_size)
    t.add_row("Number of generations", s.generations_single)
    t.add_row("Crossover rate", 0.9)
    t.add_row("Mutation rate", 0.01)
    t.add_row("Selection scheme", "Tournament (2)")
    t.add_row("Weight of goal fitness", 0.9)
    t.add_row("Weight of cost fitness", 0.1)
    t.add_row("Number of disks", ", ".join(str(d) for d in s.hanoi_disks))
    t.add_row("Number of phases in multi-phase GA", s.max_phases)
    return t


def tile_parameter_table(scale: Optional[ExperimentScale] = None) -> Table:
    """Table 3: parameter settings for the Sliding-tile puzzle experiments."""
    s = scale or ExperimentScale.paper()
    t = Table("Table 3: Sliding-tile puzzle GA parameters", ["Parameter", "Value"])
    t.add_row("Population size", s.population_size)
    t.add_row("Number of generations", s.generations_single)
    t.add_row("Crossover type", "Random / State-aware / Mixed")
    t.add_row("Crossover rate", 0.9)
    t.add_row("Mutation rate", 0.01)
    t.add_row("Selection scheme", "Tournament (2)")
    t.add_row("Weight of goal fitness", 0.9)
    t.add_row("Weight of cost fitness", 0.1)
    t.add_row("Board size (n)", ", ".join(str(n) for n in s.tile_sizes))
    t.add_row("Number of phases in multi-phase GA", s.max_phases)
    return t


# -- shared run records ---------------------------------------------------------


@dataclass
class RunRecord:
    """Per-run measurements shared by the table drivers."""

    goal_fitness: float
    size: int
    solved: bool
    generations: Optional[int]  # generations consumed when a solution appeared
    solved_in_phase: Optional[int]
    elapsed_seconds: float


def single_phase_config(scale: ExperimentScale, max_len: int, init_length: int, crossover: str) -> GAConfig:
    """Paper-parameter single-phase :class:`GAConfig` at the given scale."""
    return GAConfig(
        population_size=scale.population_size,
        generations=scale.generations_single,
        crossover_rate=0.9,
        mutation_rate=0.01,
        crossover=crossover,
        tournament_size=2,
        goal_weight=0.9,
        cost_weight=0.1,
        max_len=max_len,
        init_length=min(init_length, max_len),
        stop_on_goal=True,
    )


def multiphase_config(scale: ExperimentScale, max_len: int, init_length: int, crossover: str) -> MultiPhaseConfig:
    """Paper-parameter :class:`MultiPhaseConfig` at the given scale."""
    phase = GAConfig(
        population_size=scale.population_size,
        generations=scale.generations_phase,
        crossover_rate=0.9,
        mutation_rate=0.01,
        crossover=crossover,
        tournament_size=2,
        goal_weight=0.9,
        cost_weight=0.1,
        max_len=max_len,
        init_length=min(init_length, max_len),
        stop_on_goal=False,
    )
    return MultiPhaseConfig(
        max_phases=scale.max_phases, phase=phase, early_stop_in_phase=scale.early_stop_in_phase
    )


def run_single_record(domain, config: GAConfig, rng) -> RunRecord:
    """Run one single-phase GA trial and fold the result into a :class:`RunRecord`."""
    result = run_ga(domain, config, rng)
    decoded = result.best.decoded
    assert decoded is not None and result.best.fitness is not None
    return RunRecord(
        goal_fitness=result.best.fitness.goal,
        size=len(decoded.operations),
        solved=result.best.fitness.goal_reached,
        generations=result.solved_at_generation,
        solved_in_phase=1 if result.best.fitness.goal_reached else None,
        elapsed_seconds=result.elapsed_seconds,
    )


def run_multi_record(domain, config: MultiPhaseConfig, rng) -> RunRecord:
    """Run one multi-phase GA trial and fold the result into a :class:`RunRecord`."""
    result = run_multiphase(domain, config, rng)
    return RunRecord(
        goal_fitness=result.goal_fitness,
        size=result.plan_length,
        solved=result.solved,
        generations=result.total_generations if result.solved else None,
        solved_in_phase=result.solved_in_phase,
        elapsed_seconds=result.elapsed_seconds,
    )


def _aggregate(records: Sequence[RunRecord]) -> Tuple[float, float, float, int, float]:
    """(avg goal fitness, avg size, avg gens-to-solution, n solved, avg time)."""
    n = len(records)
    avg_goal = sum(r.goal_fitness for r in records) / n
    avg_size = sum(r.size for r in records) / n
    solved = [r for r in records if r.solved and r.generations is not None]
    avg_gens = sum(r.generations for r in solved) / len(solved) if solved else float("nan")
    avg_time = sum(r.elapsed_seconds for r in records) / n
    return avg_goal, avg_size, avg_gens, len(solved), avg_time


# -- Table 2: Towers of Hanoi ----------------------------------------------------


def run_hanoi_table2(
    scale: Optional[ExperimentScale] = None,
    seed: int = 2003,
    crossover: str = "random",
) -> Table:
    """Single- vs multi-phase GA across disk counts (paper Table 2).

    Expected shape: multi-phase goal fitness ≥ single-phase at every size;
    fitness decreases with disk count; multi-phase solutions are longer.
    """
    s = scale or scale_from_env()
    root = make_rng(seed)
    table = Table(
        f"Table 2: Towers of Hanoi results ({s.label} scale)",
        [
            "GA Type",
            "Disks",
            "Avg Goal Fitness",
            "Avg Size of Solution",
            "Avg Gens to Find Solution",
            "Solved Runs",
            "Total Runs",
        ],
    )
    for ga_type in ("single-phase", "multi-phase"):
        for n_disks in s.hanoi_disks:
            domain = HanoiDomain(n_disks)
            max_len = hanoi_max_len(n_disks)
            init = domain.optimal_length
            rngs = spawn_many(root, s.runs_hanoi)
            records = []
            for rng in rngs:
                if ga_type == "single-phase":
                    cfg = single_phase_config(s, max_len, init, crossover)
                    records.append(run_single_record(domain, cfg, rng))
                else:
                    cfg = multiphase_config(s, max_len, init, crossover)
                    records.append(run_multi_record(domain, cfg, rng))
            avg_goal, avg_size, avg_gens, n_solved, _t = _aggregate(records)
            table.add_row(
                ga_type, n_disks, round(avg_goal, 3), round(avg_size, 1),
                round(avg_gens, 1) if avg_gens == avg_gens else "-", n_solved, len(records),
            )
    return table


# -- Tables 4 and 5: Sliding-tile puzzle -------------------------------------------


def _tile_records(
    scale: ExperimentScale, n: int, crossover: str, root_rng
) -> List[RunRecord]:
    domain = SlidingTileDomain(n)
    cfg = multiphase_config(scale, tile_max_len(n), tile_init_length(n), crossover)
    records = []
    for rng in spawn_many(root_rng, scale.runs_tile):
        records.append(run_multi_record(domain, cfg, rng))
    return records


def run_tile_table4(
    scale: Optional[ExperimentScale] = None, seed: int = 2003
) -> Table:
    """Crossover type × board size (paper Table 4).

    Expected shape: the three crossovers are close; 3×3 solved in nearly
    every run; 4×4 almost never; size and time grow sharply from 9→16 tiles.
    """
    s = scale or scale_from_env()
    root = make_rng(seed)
    table = Table(
        f"Table 4: Sliding-tile puzzle results ({s.label} scale)",
        [
            "Crossover",
            "Tiles",
            "Avg Goal Fitness",
            "Avg Size of Solution",
            "Runs Finding Valid Solution",
            "Total Runs",
            "Avg Time (s)",
        ],
    )
    for crossover in ("state-aware", "random", "mixed"):
        for n in s.tile_sizes:
            records = _tile_records(s, n, crossover, root)
            avg_goal, avg_size, _gens, n_solved, avg_time = _aggregate(records)
            table.add_row(
                crossover, n * n, round(avg_goal, 3), round(avg_size, 2),
                n_solved, len(records), round(avg_time, 2),
            )
    return table


def run_tile_table5(
    scale: Optional[ExperimentScale] = None, seed: int = 2003, n: int = 3
) -> Table:
    """Phase in which the first valid solution appears (paper Table 5).

    Expected shape: state-aware and mixed solve mostly in phase 1; random
    needs phase 2 more often; almost everything resolves within two phases.
    """
    s = scale or scale_from_env()
    root = make_rng(seed)
    counts: Dict[str, List[int]] = {}
    for crossover in ("random", "state-aware", "mixed"):
        records = _tile_records(s, n, crossover, root)
        per_phase = [0] * s.max_phases
        for r in records:
            if r.solved_in_phase is not None:
                per_phase[r.solved_in_phase - 1] += 1
        counts[crossover] = per_phase
    table = Table(
        f"Table 5: runs finding a valid solution per phase, {n}x{n} ({s.label} scale)",
        ["Phase", "Random", "State-aware", "Mixed"],
    )
    for phase in range(s.max_phases):
        table.add_row(
            phase + 1,
            counts["random"][phase],
            counts["state-aware"][phase],
            counts["mixed"][phase],
        )
    return table
