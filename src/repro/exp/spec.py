"""Declarative experiment specifications.

An :class:`ExperimentSpec` turns one paper table (or ablation) into data:
named axes whose cross product enumerates the cells, a picklable
per-trial function, a trial count, and the aggregation that folds
recorded trials back into the paper-shaped table.  Everything downstream
— the sweep runner, resume, reporting — works off the deterministic
enumeration this module produces: the same spec, scale and base seed
always yield the same trial ids, per-trial seeds and config hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import ExperimentScale, scale_from_env
from repro.exp.defaults import PAPER_SEED

__all__ = [
    "Comparison",
    "ExperimentSpec",
    "TrialSpec",
    "config_hash",
    "derive_seed",
]

#: Axes may be a static mapping or depend on the scale (e.g. Table 4's board
#: sizes shrink in the scaled regime).
AxesSpec = Union[
    Mapping[str, Sequence[object]],
    Callable[[ExperimentScale], Mapping[str, Sequence[object]]],
]

#: Trial counts likewise: a constant or a function of the scale.
TrialsSpec = Union[int, Callable[[ExperimentScale], int]]


def config_hash(payload: Mapping[str, object]) -> str:
    """Short stable hash of a JSON-serialisable configuration payload.

    Parameters
    ----------
    payload:
        The configuration to fingerprint; keys are sorted so dict order
        never changes the hash.

    Returns
    -------
    str
        First 12 hex digits of the SHA-256 of the canonical JSON.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def derive_seed(base_seed: int, trial_id: str) -> int:
    """Deterministic per-trial seed from the sweep's base seed and trial id.

    Stable across processes and Python versions (SHA-256, not ``hash()``),
    so a resumed sweep reruns a pending trial with exactly the seed the
    original invocation would have used.
    """
    digest = hashlib.sha256(f"{base_seed}:{trial_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class TrialSpec:
    """One concrete trial: a cell of the experiment grid at one seed.

    Attributes
    ----------
    experiment:
        Name of the owning :class:`ExperimentSpec`.
    trial_id:
        Stable identifier, ``"<axis>=<value>,...#t<index>"``; the resume
        key.
    cell:
        Axis-name → value mapping for this grid cell.
    trial_index:
        0-based repeat index within the cell.
    seed:
        Derived RNG seed for this trial (see :func:`derive_seed`).
    config_hash:
        Provenance fingerprint of (experiment, trial, seed, scale).
    """

    experiment: str
    trial_id: str
    cell: Tuple[Tuple[str, object], ...]
    trial_index: int
    seed: int
    config_hash: str

    @property
    def cell_dict(self) -> Dict[str, object]:
        """The cell as a plain dict (axis name → value)."""
        return dict(self.cell)


@dataclass(frozen=True)
class Comparison:
    """A two-sample statistical comparison the report should run.

    The report collects ``metric`` from all trials where ``cell[axis] == a``
    versus ``cell[axis] == b`` (stratified by the ``groupby`` axes) and
    applies the Wilcoxon rank-sum / Mann-Whitney U test.
    """

    metric: str
    axis: str
    a: object
    b: object
    groupby: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: grid, trial function, aggregation.

    Attributes
    ----------
    name:
        Registry key and CLI name (e.g. ``"table2-hanoi"``).
    title:
        Human-readable one-liner shown by ``repro exp list``.
    description:
        What the experiment measures and the shape it should reproduce.
    axes:
        Mapping of axis name → values, or a callable of the
        :class:`~repro.analysis.experiments.ExperimentScale` returning one.
        The cell enumeration is the cross product in axis order.
    trial_fn:
        ``f(cell: dict, seed: int, scale) -> dict`` returning the trial's
        metrics.  Must be a module-level (picklable) function so the
        process-parallel runner can ship it to workers.
    trials:
        Trials per cell: an int or a callable of the scale (e.g.
        ``lambda s: s.runs_hanoi``).
    aggregate_fn:
        ``f(spec, records, scale) -> Table`` folding trial records into
        the paper-shaped table.
    base_seed:
        Root seed; per-trial seeds derive from it and the trial id.
    ci_metrics:
        Numeric metric keys the report summarises as mean ± 95 % CI per
        cell.
    comparisons:
        Statistical comparisons the report should include.
    doc_section:
        Marker name of this experiment's generated section in
        ``EXPERIMENTS.md``; ``None`` (the default) means "use ``name``".
    """

    name: str
    title: str
    description: str
    axes: AxesSpec
    trial_fn: Callable[[Dict[str, object], int, ExperimentScale], Mapping[str, object]]
    trials: TrialsSpec
    aggregate_fn: Callable[..., object]
    base_seed: int = PAPER_SEED
    ci_metrics: Tuple[str, ...] = field(default_factory=tuple)
    comparisons: Tuple[Comparison, ...] = field(default_factory=tuple)
    doc_section: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate the name slug and default ``doc_section`` to ``name``."""
        if not self.name or "/" in self.name or " " in self.name:
            raise ValueError(f"experiment name must be a simple slug, got {self.name!r}")
        if self.doc_section is None:
            object.__setattr__(self, "doc_section", self.name)

    # -- enumeration -----------------------------------------------------------

    def axes_for(self, scale: Optional[ExperimentScale] = None) -> Dict[str, List[object]]:
        """Resolve the (possibly scale-dependent) axes to a concrete mapping."""
        s = scale or scale_from_env()
        axes = self.axes(s) if callable(self.axes) else self.axes
        resolved = {name: list(values) for name, values in axes.items()}
        if not resolved or any(not vals for vals in resolved.values()):
            raise ValueError(f"experiment {self.name!r} has an empty axis: {resolved}")
        return resolved

    def trials_for(self, scale: Optional[ExperimentScale] = None) -> int:
        """Resolve the per-cell trial count for *scale*."""
        s = scale or scale_from_env()
        n = self.trials(s) if callable(self.trials) else self.trials
        if n < 1:
            raise ValueError(f"experiment {self.name!r} resolved to {n} trials per cell")
        return n

    def cells(self, scale: Optional[ExperimentScale] = None) -> List[Dict[str, object]]:
        """Every grid cell, in deterministic cross-product order."""
        axes = self.axes_for(scale)
        names = list(axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(axes[n] for n in names))
        ]

    def trial_specs(
        self,
        scale: Optional[ExperimentScale] = None,
        trials: Optional[int] = None,
    ) -> List[TrialSpec]:
        """Enumerate every trial of the sweep, with seeds and hashes.

        Parameters
        ----------
        scale:
            Experiment scale; defaults to
            :func:`~repro.analysis.experiments.scale_from_env`.
        trials:
            Override of the per-cell trial count.

        Returns
        -------
        list[TrialSpec]
            Cells in cross-product order, trial indices innermost.
        """
        s = scale or scale_from_env()
        n_trials = trials if trials is not None else self.trials_for(s)
        scale_fields = dataclasses.asdict(s)
        specs: List[TrialSpec] = []
        for cell in self.cells(s):
            slug = ",".join(f"{k}={v}" for k, v in cell.items())
            for index in range(n_trials):
                trial_id = f"{slug}#t{index}"
                seed = derive_seed(self.base_seed, trial_id)
                digest = config_hash(
                    {
                        "experiment": self.name,
                        "trial_id": trial_id,
                        "cell": cell,
                        "seed": seed,
                        "scale": scale_fields,
                    }
                )
                specs.append(
                    TrialSpec(
                        experiment=self.name,
                        trial_id=trial_id,
                        cell=tuple(cell.items()),
                        trial_index=index,
                        seed=seed,
                        config_hash=digest,
                    )
                )
        return specs

    def sweep_hash(
        self, scale: Optional[ExperimentScale] = None, trials: Optional[int] = None
    ) -> str:
        """Fingerprint of the whole sweep configuration (for the manifest)."""
        s = scale or scale_from_env()
        return config_hash(
            {
                "experiment": self.name,
                "base_seed": self.base_seed,
                "axes": self.axes_for(s),
                "trials": trials if trials is not None else self.trials_for(s),
                "scale": dataclasses.asdict(s),
            }
        )
