"""The experiment registry: name → :class:`ExperimentSpec`.

Built-in specs (the paper tables in :mod:`repro.exp.paper`) register at
import time; projects can :func:`register` their own.  Lookups raise
with the list of known names, so a CLI typo is a one-line fix.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exp.spec import ExperimentSpec

__all__ = ["register", "get_spec", "list_specs", "spec_names"]

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
    """Add *spec* to the registry and return it.

    Parameters
    ----------
    spec:
        The experiment to register under ``spec.name``.
    replace:
        Allow overwriting an existing registration (tests use this);
        without it a duplicate name raises ``ValueError``.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name.

    Raises ``KeyError`` naming the known experiments when absent.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown experiment {name!r}; registered: {known}") from None


def spec_names() -> List[str]:
    """Sorted names of every registered experiment."""
    return sorted(_REGISTRY)


def list_specs() -> List[ExperimentSpec]:
    """Every registered experiment, sorted by name."""
    return [_REGISTRY[name] for name in spec_names()]
