"""Shared experiment constants: seeds, trial counts, result locations.

These used to be duplicated across ``benchmarks/conftest.py``, the bench
scripts and the CLI defaults; they live here so a seed is defined exactly
once.  This module must stay dependency-free (no ``repro.analysis``
imports) because both the analysis drivers and the benches import it.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "PAPER_SEED",
    "ABLATION_SEEDS",
    "GRID_SEED",
    "SCHEDULE_SEED",
    "DECODE_BENCH_SEED",
    "DEFAULT_RESULTS_ROOT",
    "default_out_dir",
]

#: Root seed for every paper-table reproduction (the paper's publication year).
PAPER_SEED = 2003

#: Per-study seeds for the ablation suite (distinct primes so no two studies
#: share an RNG stream by accident).
ABLATION_SEEDS = {
    "crossover": 7,
    "maxlen": 11,
    "weights": 13,
    "phases": 17,
    "seeding": 19,
    "islands": 23,
    "baselines": 23,
    "fitness": 29,
}

#: Seed for the grid-workflow bench / example runs.
GRID_SEED = 31

#: Seed for the scheduling-heuristics table.
SCHEDULE_SEED = 1

#: Seed for the decode-engine ablation bench (paper submission date).
DECODE_BENCH_SEED = 20030422

#: Where sweeps record trials unless told otherwise, relative to the
#: repository root (the committed sweeps under version control live here).
DEFAULT_RESULTS_ROOT = Path("benchmarks") / "results" / "exp"


def default_out_dir(experiment: str, root: Path | str | None = None) -> Path:
    """Per-experiment record directory under the results root.

    Parameters
    ----------
    experiment:
        Registered experiment name (e.g. ``"table2-hanoi"``).
    root:
        Results root to resolve against; defaults to
        :data:`DEFAULT_RESULTS_ROOT`.

    Returns
    -------
    Path
        ``<root>/<experiment>`` (not created).
    """
    return Path(root if root is not None else DEFAULT_RESULTS_ROOT) / experiment
