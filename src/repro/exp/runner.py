"""The process-parallel sweep runner with atomic resume.

A sweep is the full trial enumeration of one :class:`~repro.exp.spec.
ExperimentSpec` at one scale.  The runner fans pending trials out over a
``ProcessPoolExecutor`` (trials are independent processes-worth of GA
work, the same SPMD shape as :mod:`repro.core.parallel`), retries failed
trials with the capped-backoff ladder of :class:`~repro.core.resilient.
ResiliencePolicy`, and appends one durable JSONL record per completed
trial.  Killing a sweep at any point loses at most the in-flight trials:
a later ``resume`` re-enumerates the spec, skips every recorded trial
whose config hash still matches, and runs only the remainder.

Observability: the runner emits ``trial-started`` / ``trial-finished`` /
``sweep-progress`` events through the ambient (or injected) tracer and
ticks ``trials_completed`` / ``trials_failed`` / ``trials_skipped``
counters plus a ``trial`` timer.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.experiments import ExperimentScale, scale_from_env
from repro.core.resilient import ResiliencePolicy
from repro.exp.records import (
    RECORDS_NAME,
    TrialRecord,
    append_record,
    git_revision,
    load_records,
    read_manifest,
    write_manifest,
)
from repro.exp.registry import get_spec
from repro.exp.spec import ExperimentSpec, TrialSpec
from repro.obs.events import SweepProgress, TrialFinished, TrialStarted
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer

__all__ = [
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepStatus",
    "run_inline",
    "scale_from_dict",
    "sweep_status",
]

#: Default retry ladder for trials: one retry, fast capped backoff, no
#: timeout (a GA trial's runtime is legitimately unbounded-ish; pass a
#: policy with ``eval_timeout_s`` to bound it).
DEFAULT_POLICY = ResiliencePolicy(retry_max=1, backoff_base_s=0.1, backoff_cap_s=2.0)


class SweepError(RuntimeError):
    """A sweep could not start or resume (conflicting records, bad manifest)."""


def scale_from_dict(payload: dict) -> ExperimentScale:
    """Rebuild an :class:`ExperimentScale` from its manifest JSON form.

    JSON turns the tuple-valued fields into lists; coerce them back so
    the reconstructed scale hashes identically to the original.
    """
    coerced = {
        k: tuple(v) if isinstance(v, list) else v for k, v in payload.items()
    }
    return ExperimentScale(**coerced)


@dataclass(frozen=True)
class SweepStatus:
    """Progress summary of a sweep directory against its spec enumeration."""

    experiment: str
    total: int
    done: int
    failed: int
    stale: int  # records whose config hash no longer matches the spec

    @property
    def pending(self) -> int:
        """Trials still to run."""
        return self.total - self.done

    @property
    def complete(self) -> bool:
        """Whether every enumerated trial has a matching ok record."""
        return self.done >= self.total


@dataclass
class SweepResult:
    """Everything a finished (or partial) sweep invocation produced.

    ``records`` is the complete ok-record set for the sweep (prior +
    new), which is what aggregation wants; ``new_records`` is what this
    invocation actually ran.
    """

    spec: ExperimentSpec
    scale: ExperimentScale
    records: List[TrialRecord]
    new_records: List[TrialRecord] = field(default_factory=list)
    failed: List[TrialRecord] = field(default_factory=list)
    skipped: int = 0  # previously recorded trials not re-run
    total: int = 0

    @property
    def complete(self) -> bool:
        """Whether every enumerated trial now has an ok record."""
        return len(self.records) >= self.total

    def table(self):
        """Aggregate the ok records into the paper-shaped table."""
        return self.spec.aggregate_fn(self.spec, self.records, self.scale)


def _execute_trial(trial_fn, cell: dict, seed: int, scale: ExperimentScale):
    """Run one trial (in a worker or inline) and time it."""
    t0 = time.perf_counter()
    metrics = trial_fn(cell, seed, scale)
    return dict(metrics), time.perf_counter() - t0


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class SweepRunner:
    """Run one experiment sweep: enumerate, skip done, fan out, record.

    Parameters
    ----------
    spec:
        The experiment, or a registered experiment name.
    out_dir:
        Directory for ``records.jsonl`` + ``manifest.json``.  ``None``
        keeps records in memory only (the benches use this).
    scale:
        Experiment scale; defaults to the environment's
        (:func:`~repro.analysis.experiments.scale_from_env`).
    trials:
        Per-cell trial count override.
    workers:
        Worker processes; ``<= 1`` runs trials inline in this process
        (deterministic record order, no pool overhead).
    policy:
        Retry/backoff/timeout ladder (:class:`~repro.core.resilient.
        ResiliencePolicy`); ``eval_timeout_s`` bounds one trial attempt.
    tracer / metrics:
        Observability wiring; defaults to the ambient pair.
    """

    def __init__(
        self,
        spec: Union[ExperimentSpec, str],
        out_dir: Optional[Path | str] = None,
        *,
        scale: Optional[ExperimentScale] = None,
        trials: Optional[int] = None,
        workers: int = 1,
        policy: Optional[ResiliencePolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.spec = get_spec(spec) if isinstance(spec, str) else spec
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.scale = scale or scale_from_env()
        self.trials = trials
        self.workers = max(1, workers)
        self.policy = policy or DEFAULT_POLICY
        self.tracer = tracer if tracer is not None else default_tracer()
        self.metrics = metrics if metrics is not None else default_metrics()
        self._git_rev = git_revision()

    # -- bookkeeping -----------------------------------------------------------

    @property
    def records_path(self) -> Optional[Path]:
        """Path of the sweep's JSONL record file (``None`` in-memory)."""
        return self.out_dir / RECORDS_NAME if self.out_dir is not None else None

    def _manifest(self, trial_specs: List[TrialSpec]) -> dict:
        import dataclasses

        return {
            "experiment": self.spec.name,
            "base_seed": self.spec.base_seed,
            "trials_per_cell": self.trials
            if self.trials is not None
            else self.spec.trials_for(self.scale),
            "scale": dataclasses.asdict(self.scale),
            "sweep_hash": self.spec.sweep_hash(self.scale, self.trials),
            "total_trials": len(trial_specs),
        }

    def _load_completed(self, trial_specs: List[TrialSpec]):
        """Map trial_id → ok record for records matching the current spec."""
        if self.records_path is None:
            return {}, 0
        records, torn = load_records(self.records_path)
        by_id = {t.trial_id: t for t in trial_specs}
        completed: Dict[str, TrialRecord] = {}
        stale = 0
        for rec in records:
            spec = by_id.get(rec.trial_id)
            if spec is None or rec.config_hash != spec.config_hash:
                stale += 1
                continue
            if rec.ok:
                completed[rec.trial_id] = rec
        return completed, stale + torn

    # -- execution -------------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        limit: Optional[int] = None,
        force: bool = False,
    ) -> SweepResult:
        """Execute the sweep (or its remainder) and return the result.

        Parameters
        ----------
        resume:
            Continue a previous invocation: recorded trials whose config
            hash still matches are skipped, everything else runs.
        limit:
            Run at most this many trials this invocation (tests use it to
            simulate a killed sweep; ``repro exp run --limit`` exposes it).
        force:
            Start over — discard existing records instead of refusing.

        Raises
        ------
        SweepError
            When records already exist and neither *resume* nor *force*
            was given, or a manifest disagrees with the current sweep
            configuration on resume.
        """
        trial_specs = self.spec.trial_specs(self.scale, self.trials)
        completed: Dict[str, TrialRecord] = {}
        if self.records_path is not None and self.records_path.exists():
            if force:
                self.records_path.unlink()
            elif not resume:
                raise SweepError(
                    f"{self.records_path} already holds records; use resume to "
                    f"continue the sweep or force to start over"
                )
            else:
                manifest = read_manifest(self.out_dir)
                expected = self.spec.sweep_hash(self.scale, self.trials)
                if manifest is not None and manifest.get("sweep_hash") != expected:
                    raise SweepError(
                        f"sweep manifest in {self.out_dir} was written by a different "
                        f"configuration (hash {manifest.get('sweep_hash')} != {expected}); "
                        f"rerun with the original scale/trials or start over with force"
                    )
                completed, _stale = self._load_completed(trial_specs)
        if self.out_dir is not None:
            write_manifest(self.out_dir, self._manifest(trial_specs))

        pending = [t for t in trial_specs if t.trial_id not in completed]
        if limit is not None:
            pending = pending[:limit]
        result = SweepResult(
            spec=self.spec,
            scale=self.scale,
            records=list(completed.values()),
            skipped=len(completed),
            total=len(trial_specs),
        )
        if self.metrics is not None and completed:
            self.metrics.counter("trials_skipped").add(len(completed))
        if not pending:
            self._emit_progress(len(completed), 0, len(trial_specs))
            result.records.sort(key=lambda r: r.trial_id)
            return result

        if self.workers <= 1:
            self._run_serial(pending, completed, result)
        else:
            self._run_pool(pending, completed, result)
        # Deterministic order for aggregation regardless of completion order.
        result.records.sort(key=lambda r: r.trial_id)
        return result

    def _run_serial(self, pending, completed, result: SweepResult) -> None:
        done = len(completed)
        failed = 0
        for trial in pending:
            record = self._run_one_with_retry(trial)
            self._commit(record, result)
            if record.ok:
                done += 1
            else:
                failed += 1
            self._emit_progress(done, failed, result.total)

    def _run_pool(self, pending, completed, result: SweepResult) -> None:
        done = len(completed)
        failed = 0
        attempts: Dict[str, int] = {t.trial_id: 1 for t in pending}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {}
            for trial in pending:
                self._emit_started(trial)
                futures[self._submit(pool, trial)] = trial
            while futures:
                done_set, _ = wait(
                    futures, timeout=self.policy.eval_timeout_s, return_when=FIRST_COMPLETED
                )
                if not done_set:
                    # Whole-pool quiescence past the timeout: fail one
                    # in-flight trial per wait round so the sweep cannot
                    # wedge forever on a hung worker.
                    fut, trial = next(iter(futures.items()))
                    futures.pop(fut)
                    fut.cancel()
                    record = self._failure_record(
                        trial, attempts[trial.trial_id], "trial timed out"
                    )
                    self._commit(record, result)
                    failed += 1
                    self._emit_finished(trial, record)
                    self._emit_progress(done, failed, result.total)
                    continue
                for fut in done_set:
                    trial = futures.pop(fut)
                    attempt = attempts[trial.trial_id]
                    try:
                        metrics, elapsed = fut.result()
                        record = self._success_record(trial, metrics, elapsed, attempt)
                    except Exception as exc:  # worker raised or died
                        if attempt <= self.policy.retry_max:
                            attempts[trial.trial_id] = attempt + 1
                            self.policy.sleep(self.policy.backoff_s(attempt - 1))
                            futures[self._submit(pool, trial)] = trial
                            continue
                        record = self._failure_record(trial, attempt, repr(exc))
                    self._commit(record, result)
                    if record.ok:
                        done += 1
                    else:
                        failed += 1
                    self._emit_finished(trial, record)
                    self._emit_progress(done, failed, result.total)

    def _submit(self, pool: ProcessPoolExecutor, trial: TrialSpec):
        return pool.submit(
            _execute_trial, self.spec.trial_fn, trial.cell_dict, trial.seed, self.scale
        )

    def _run_one_with_retry(self, trial: TrialSpec) -> TrialRecord:
        """Inline execution with the same retry ladder as the pool path."""
        self._emit_started(trial)
        last_error = "unknown"
        for attempt in range(1, self.policy.retry_max + 2):
            try:
                metrics, elapsed = _execute_trial(
                    self.spec.trial_fn, trial.cell_dict, trial.seed, self.scale
                )
                record = self._success_record(trial, metrics, elapsed, attempt)
                self._emit_finished(trial, record)
                return record
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                last_error = repr(exc)
                if attempt <= self.policy.retry_max:
                    self.policy.sleep(self.policy.backoff_s(attempt - 1))
        record = self._failure_record(trial, self.policy.retry_max + 1, last_error)
        self._emit_finished(trial, record)
        return record

    # -- record construction / commit -----------------------------------------

    def _success_record(
        self, trial: TrialSpec, metrics: dict, elapsed: float, attempt: int
    ) -> TrialRecord:
        return TrialRecord(
            experiment=self.spec.name,
            trial_id=trial.trial_id,
            cell=trial.cell_dict,
            trial_index=trial.trial_index,
            seed=trial.seed,
            config_hash=trial.config_hash,
            status="ok",
            metrics=metrics,
            elapsed_seconds=round(elapsed, 6),
            git_rev=self._git_rev,
            started_at=_utc_now(),
            attempt=attempt,
        )

    def _failure_record(self, trial: TrialSpec, attempt: int, error: str) -> TrialRecord:
        return TrialRecord(
            experiment=self.spec.name,
            trial_id=trial.trial_id,
            cell=trial.cell_dict,
            trial_index=trial.trial_index,
            seed=trial.seed,
            config_hash=trial.config_hash,
            status="failed",
            git_rev=self._git_rev,
            started_at=_utc_now(),
            attempt=attempt,
            error=error,
        )

    def _commit(self, record: TrialRecord, result: SweepResult) -> None:
        if self.records_path is not None:
            append_record(self.records_path, record)
        if record.ok:
            result.records.append(record)
            result.new_records.append(record)
            if self.metrics is not None:
                self.metrics.counter("trials_completed").add(1)
                self.metrics.timer("trial").record(record.elapsed_seconds)
        else:
            result.failed.append(record)
            if self.metrics is not None:
                self.metrics.counter("trials_failed").add(1)

    # -- observability ---------------------------------------------------------

    def _emit_started(self, trial: TrialSpec) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                TrialStarted(
                    scope=self.spec.name,
                    experiment=self.spec.name,
                    trial_id=trial.trial_id,
                    seed=trial.seed,
                )
            )

    def _emit_finished(self, trial: TrialSpec, record: TrialRecord) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                TrialFinished(
                    scope=self.spec.name,
                    experiment=self.spec.name,
                    trial_id=trial.trial_id,
                    seed=trial.seed,
                    status=record.status,
                    seconds=record.elapsed_seconds,
                    attempt=record.attempt,
                )
            )

    def _emit_progress(self, done: int, failed: int, total: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                SweepProgress(
                    scope=self.spec.name,
                    experiment=self.spec.name,
                    done=done,
                    failed=failed,
                    total=total,
                )
            )


def sweep_status(
    spec: Union[ExperimentSpec, str],
    out_dir: Path | str,
    scale: Optional[ExperimentScale] = None,
    trials: Optional[int] = None,
) -> SweepStatus:
    """Summarise a sweep directory against the spec's trial enumeration.

    Uses the manifest's recorded scale/trial count when present (so
    ``repro exp status`` agrees with what ``run`` started), falling back
    to the given or environment scale.
    """
    spec = get_spec(spec) if isinstance(spec, str) else spec
    manifest = read_manifest(out_dir)
    if manifest is not None:
        scale = scale_from_dict(manifest["scale"])
        trials = manifest.get("trials_per_cell", trials)
    runner = SweepRunner(spec, out_dir, scale=scale, trials=trials)
    trial_specs = spec.trial_specs(runner.scale, trials)
    completed, stale = runner._load_completed(trial_specs)
    records, _ = load_records(runner.records_path)
    failed_ids = {
        r.trial_id
        for r in records
        if not r.ok and r.trial_id not in completed
    }
    return SweepStatus(
        experiment=spec.name,
        total=len(trial_specs),
        done=len(completed),
        failed=len(failed_ids),
        stale=stale,
    )


def run_inline(
    spec: Union[ExperimentSpec, str],
    scale: Optional[ExperimentScale] = None,
    trials: Optional[int] = None,
) -> SweepResult:
    """Run a whole sweep serially in-process with in-memory records.

    The bench suite's entry point: no disk, deterministic record order,
    returns a :class:`SweepResult` whose :meth:`~SweepResult.table` is
    the paper-shaped table.
    """
    return SweepRunner(spec, None, scale=scale, trials=trials, workers=1).run()
