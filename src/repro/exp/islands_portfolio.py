"""Experiment spec: heterogeneous portfolio vs ring islands vs one population.

Beyond-paper extension backing ``benchmarks/bench_ablation_islands.py``
and the ``islands-portfolio`` section of ``EXPERIMENTS.md``: at an equal
total population budget on n-disk Hanoi, compare

- ``single`` — one panmictic GA population,
- ``ring-islands`` — the homogeneous island model with ring migration
  (:func:`repro.core.run_islands`),
- ``portfolio`` — the racing portfolio (:func:`repro.core.run_portfolio`):
  two GA strategies with different crossovers plus a greedy best-first
  search island, adaptive migration, first-solution cancellation.

Each trial records goal fitness, solution size and the wall-clock
time-to-first-solution (TTFS), so the aggregated table shows both
solution quality and the anytime advantage of racing heterogeneous
strategies.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Sequence

from repro.analysis.experiments import (
    ExperimentScale,
    hanoi_max_len,
    run_single_record,
    single_phase_config,
)
from repro.analysis.tables import Table
from repro.core import make_rng
from repro.exp.records import TrialRecord
from repro.exp.registry import register
from repro.exp.spec import Comparison, ExperimentSpec

__all__ = ["ISLANDS_PORTFOLIO", "STRUCTURES", "portfolio_trial"]

#: Population structures compared at an equal evaluation budget.
STRUCTURES = ("single", "ring-islands", "portfolio")

_N_ISLANDS = 4


def _base_config(scale: ExperimentScale, n_disks: int):
    from repro.domains import HanoiDomain

    domain = HanoiDomain(n_disks)
    cfg = single_phase_config(
        scale, hanoi_max_len(n_disks), domain.optimal_length, "random"
    )
    return domain, cfg


def portfolio_trial(cell: dict, seed: int, scale: ExperimentScale) -> Dict[str, object]:
    """One trial: run the cell's population structure on n-disk Hanoi."""
    from repro.core import IslandConfig, PortfolioSpec, StrategySpec, run_islands, run_portfolio

    n_disks = int(cell["disks"])
    domain, cfg = _base_config(scale, n_disks)
    rng = make_rng(seed)
    structure = cell["structure"]

    if structure == "single":
        rec = run_single_record(domain, cfg, rng)
        return {
            "goal_fitness": rec.goal_fitness,
            "size": rec.size,
            "solved": rec.solved,
            "ttfs_s": round(rec.elapsed_seconds, 6) if rec.solved else None,
            "elapsed_seconds": round(rec.elapsed_seconds, 6),
        }

    per_island = max(2, cfg.population_size // _N_ISLANDS)
    island_cfg = cfg.replace(population_size=per_island)

    if structure == "ring-islands":
        config = IslandConfig(
            n_islands=_N_ISLANDS,
            migration_interval=5,
            migration_size=max(1, per_island // 10),
            island=island_cfg,
        )
        t0 = time.perf_counter()
        result = run_islands(domain, config, rng)
        elapsed = time.perf_counter() - t0
        assert result.best.fitness is not None
        decoded = result.best.decoded
        return {
            "goal_fitness": result.best.fitness.goal,
            "size": len(decoded.operations) if decoded else 0,
            "solved": result.solved,
            "ttfs_s": round(elapsed, 6) if result.solved else None,
            "elapsed_seconds": round(elapsed, 6),
        }

    # portfolio: two GA strategies with different crossovers plus a racing
    # greedy best-first search island, at the same per-island budget.
    spec = PortfolioSpec(
        strategies=(
            StrategySpec(kind="ga", ga=island_cfg),
            StrategySpec(kind="ga", ga=island_cfg.replace(crossover="state-aware")),
            StrategySpec(kind="search", algorithm="gbfs", expansions_per_tick=64),
        ),
        interval=5,
        migration_size=max(1, per_island // 10),
    )
    result = run_portfolio(domain, spec, rng)
    best = result.best
    return {
        "goal_fitness": best.goal_fitness if best else 0.0,
        "size": len(best.plan) if best else 0,
        "solved": result.solved,
        "ttfs_s": (
            round(result.first_solution_wall_s, 6)
            if result.first_solution_wall_s is not None
            else None
        ),
        "elapsed_seconds": round(result.elapsed_seconds, 6),
    }


def aggregate_portfolio(
    spec: ExperimentSpec, records: Sequence[TrialRecord], scale: ExperimentScale
) -> Table:
    """Fold trial records into the structure × disks comparison table."""
    table = Table(
        f"Portfolio vs ring islands vs one population on Hanoi ({scale.label} scale)",
        [
            "Structure",
            "Disks",
            "Avg Goal Fitness",
            "Avg Size",
            "Solved Runs",
            "Total Runs",
            "Median TTFS (s)",
        ],
    )
    groups: Dict[tuple, List[TrialRecord]] = {}
    for rec in records:
        if rec.ok:
            groups.setdefault((rec.cell["structure"], rec.cell["disks"]), []).append(rec)
    axes = spec.axes_for(scale)
    for structure in axes["structure"]:
        for disks in axes["disks"]:
            cell = groups.get((structure, disks), [])
            if not cell:
                continue
            ttfs = [r.metrics["ttfs_s"] for r in cell if r.metrics["ttfs_s"] is not None]
            table.add_row(
                structure,
                disks,
                round(sum(r.metrics["goal_fitness"] for r in cell) / len(cell), 3),
                round(sum(r.metrics["size"] for r in cell) / len(cell), 1),
                sum(1 for r in cell if r.metrics["solved"]),
                len(cell),
                round(statistics.median(ttfs), 3) if ttfs else "-",
            )
    return table


ISLANDS_PORTFOLIO = register(
    ExperimentSpec(
        name="islands-portfolio",
        title="Islands ablation: racing portfolio vs ring migration vs one population",
        description=(
            "Equal total population budget on n-disk Hanoi; the claim is that "
            "the heterogeneous racing portfolio (GA crossover mix + greedy "
            "search island, adaptive migration, first-solution cancellation) "
            "solves at least as often as the homogeneous ring and reaches its "
            "first solution in far less wall-clock time."
        ),
        axes=lambda s: {"structure": STRUCTURES, "disks": s.hanoi_disks},
        trial_fn=portfolio_trial,
        trials=lambda s: s.runs_hanoi,
        aggregate_fn=aggregate_portfolio,
        ci_metrics=("goal_fitness", "elapsed_seconds"),
        comparisons=(
            Comparison(
                metric="goal_fitness",
                axis="structure",
                a="portfolio",
                b="ring-islands",
                groupby=("disks",),
            ),
        ),
    )
)
