"""Aggregation and rendering: recorded trials → Markdown documentation.

The report layer is a pure function of the recorded trials (plus the
sweep manifest): aggregated paper-shaped tables, per-cell mean ± 95 % CI
summaries (:func:`repro.analysis.stats_util.mean_ci`) and Wilcoxon
rank-sum comparisons (:func:`repro.analysis.stats_util.mann_whitney`).
Nothing time- or machine-dependent enters the output, so regenerating a
report from the same records is byte-identical — which is what lets CI
fail when ``EXPERIMENTS.md`` drifts from the committed results
(``repro exp report --check``).

``EXPERIMENTS.md`` integration uses marker comments::

    <!-- exp:table2-hanoi:begin -->
    ... generated, do not edit ...
    <!-- exp:table2-hanoi:end -->

Only the text between markers is owned by the generator; the surrounding
prose stays hand-written.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentScale
from repro.analysis.stats_util import mann_whitney, mean_ci
from repro.analysis.tables import Table, _fmt
from repro.exp.records import TrialRecord
from repro.exp.spec import ExperimentSpec

__all__ = [
    "markdown_table",
    "experiment_report",
    "render_sections",
    "update_experiments_md",
    "MarkerError",
]

REPORT_NAME = "report.md"


class MarkerError(ValueError):
    """``EXPERIMENTS.md`` is missing (or has malformed) section markers."""


def markdown_table(table: Table) -> str:
    """Render a :class:`~repro.analysis.tables.Table` as a GFM pipe table."""
    lines = ["| " + " | ".join(table.columns) + " |"]
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def _numeric(values: Sequence[object]) -> List[float]:
    """Keep finite numeric values only (drops None and NaN metrics)."""
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        if math.isnan(v) or math.isinf(v):
            continue
        out.append(float(v))
    return out


def _cell_label(cell: Mapping[str, object]) -> str:
    return ", ".join(f"{k}={v}" for k, v in cell.items())


def _provenance_line(
    spec: ExperimentSpec,
    records: Sequence[TrialRecord],
    scale: ExperimentScale,
    manifest: Optional[dict],
) -> str:
    ok = [r for r in records if r.ok]
    revs = sorted({r.git_rev for r in ok}) or ["unknown"]
    sweep_hash = (
        manifest.get("sweep_hash") if manifest else spec.sweep_hash(scale)
    )
    return (
        f"*{len(ok)} recorded trials · base seed {spec.base_seed} · scale "
        f"`{scale.label}` · sweep config `{sweep_hash}` · "
        f"git {', '.join(f'`{r}`' for r in revs)}*"
    )


def _ci_section(
    spec: ExperimentSpec, records: Sequence[TrialRecord], scale: ExperimentScale
) -> str:
    if not spec.ci_metrics:
        return ""
    groups: Dict[Tuple, List[TrialRecord]] = {}
    for rec in records:
        if rec.ok:
            groups.setdefault(tuple(sorted(rec.cell.items())), []).append(rec)
    lines = [
        "| Cell | Metric | Mean | 95% CI | n |",
        "|---|---|---|---|---|",
    ]
    for key in sorted(groups):
        cell_records = groups[key]
        label = _cell_label(dict(key))
        for metric in spec.ci_metrics:
            values = _numeric([r.metrics.get(metric) for r in cell_records])
            if not values:
                lines.append(f"| {label} | {metric} | - | - | 0 |")
                continue
            ci = mean_ci(values)
            lines.append(
                f"| {label} | {metric} | {ci.mean:.3f} | "
                f"[{ci.low:.3f}, {ci.high:.3f}] | {ci.n} |"
            )
    return "**Per-cell mean ± 95% CI**\n\n" + "\n".join(lines)


def _comparison_section(
    spec: ExperimentSpec, records: Sequence[TrialRecord]
) -> str:
    if not spec.comparisons:
        return ""
    lines = [
        "| Metric | Stratum | A | B | U | p |",
        "|---|---|---|---|---|---|",
    ]
    ok = [r for r in records if r.ok]
    for cmp_ in spec.comparisons:
        strata = sorted({tuple((g, r.cell[g]) for g in cmp_.groupby) for r in ok})
        for stratum in strata:
            stratum_dict = dict(stratum)
            pool = [
                r for r in ok
                if all(r.cell.get(g) == v for g, v in stratum_dict.items())
            ]
            a = _numeric(
                [r.metrics.get(cmp_.metric) for r in pool if r.cell.get(cmp_.axis) == cmp_.a]
            )
            b = _numeric(
                [r.metrics.get(cmp_.metric) for r in pool if r.cell.get(cmp_.axis) == cmp_.b]
            )
            label = _cell_label(stratum_dict) or "all"
            if not a or not b:
                lines.append(
                    f"| {cmp_.metric} | {label} | {cmp_.a} | {cmp_.b} | - | - |"
                )
                continue
            u, p = mann_whitney(a, b)
            lines.append(
                f"| {cmp_.metric} | {label} | {cmp_.a} (n={len(a)}) | "
                f"{cmp_.b} (n={len(b)}) | {u:.1f} | {p:.4f} |"
            )
    return (
        "**Wilcoxon rank-sum comparisons** (Mann-Whitney U, two-sided)\n\n"
        + "\n".join(lines)
    )


def experiment_report(
    spec: ExperimentSpec,
    records: Sequence[TrialRecord],
    scale: ExperimentScale,
    manifest: Optional[dict] = None,
    heading_level: int = 3,
) -> str:
    """Full Markdown report for one experiment's recorded trials.

    Parameters
    ----------
    spec / records / scale:
        The experiment, its trial records, and the scale the sweep ran at
        (normally reconstructed from the manifest).
    manifest:
        The sweep manifest, used for provenance; optional.
    heading_level:
        Markdown heading depth of the report title.

    Returns
    -------
    str
        Deterministic Markdown (no timestamps, no machine identifiers):
        regenerating from the same records is byte-identical.

    Raises
    ------
    ValueError
        When *records* contains no successful trials — an empty report
        would silently mask a broken sweep.
    """
    ok = [r for r in records if r.ok]
    if not ok:
        raise ValueError(
            f"experiment {spec.name!r} has no successful trial records to report"
        )
    failed = len(records) - len(ok)
    table = spec.aggregate_fn(spec, ok, scale)
    parts = [
        f"{'#' * heading_level} {spec.title}",
        _provenance_line(spec, records, scale, manifest),
        spec.description,
        markdown_table(table),
    ]
    if failed:
        parts.append(f"*{failed} failed trial record(s) excluded from aggregation.*")
    ci = _ci_section(spec, ok, scale)
    if ci:
        parts.append(ci)
    cmp_section = _comparison_section(spec, records)
    if cmp_section:
        parts.append(cmp_section)
    return "\n\n".join(parts) + "\n"


def render_sections(
    reports: Mapping[str, str],
) -> Dict[str, str]:
    """Wrap per-experiment reports in their ``EXPERIMENTS.md`` marker lines."""
    return {
        name: (
            f"<!-- exp:{name}:begin -->\n"
            "<!-- generated by `repro exp report` from the recorded sweep; do not edit -->\n"
            f"{body}"
            f"<!-- exp:{name}:end -->"
        )
        for name, body in reports.items()
    }


def update_experiments_md(
    path: Path | str,
    reports: Mapping[str, str],
    check: bool = False,
) -> List[str]:
    """Regenerate the marked sections of ``EXPERIMENTS.md``.

    Parameters
    ----------
    path:
        The Markdown file containing ``<!-- exp:<name>:begin/end -->``
        marker pairs.
    reports:
        Experiment name → report body (from :func:`experiment_report`).
    check:
        Compare only: never write, just report which sections are stale.

    Returns
    -------
    list[str]
        Names whose sections differed (and were rewritten unless *check*).

    Raises
    ------
    MarkerError
        When the file lacks a marker pair for a report it should hold.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    changed: List[str] = []
    for name, section in render_sections(reports).items():
        begin = f"<!-- exp:{name}:begin -->"
        end = f"<!-- exp:{name}:end -->"
        i = text.find(begin)
        j = text.find(end)
        if i == -1 or j == -1 or j < i:
            raise MarkerError(
                f"{path} has no '{begin}' / '{end}' marker pair; add the markers "
                f"where the generated section should live"
            )
        current = text[i : j + len(end)]
        if current != section:
            changed.append(name)
            text = text[:i] + section + text[j + len(end):]
    if changed and not check:
        path.write_text(text, encoding="utf-8")
    return changed
