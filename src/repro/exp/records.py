"""Trial records: append-only JSONL results with provenance.

One completed trial is one JSON line.  Appends are flushed and fsynced
per line, so a killed sweep loses at most the line being written;
:func:`load_records` tolerates a torn trailing line (the same durability
discipline as ``repro.core.checkpoint``, minus the CRC header — a JSON
parse failure is the integrity check for line-oriented text).  The sweep
manifest is written atomically via temp-file + ``os.replace``, exactly
like checkpoints.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RECORDS_NAME",
    "MANIFEST_NAME",
    "TrialRecord",
    "append_record",
    "load_records",
    "git_revision",
    "write_manifest",
    "read_manifest",
]

#: Canonical file names inside a sweep's output directory.
RECORDS_NAME = "records.jsonl"
MANIFEST_NAME = "manifest.json"

_RECORD_VERSION = 1


@dataclass(frozen=True)
class TrialRecord:
    """One completed (or failed) trial with full provenance.

    Attributes
    ----------
    experiment / trial_id / trial_index / seed / config_hash:
        Identity, copied from the :class:`~repro.exp.spec.TrialSpec`.
    cell:
        Axis-name → value mapping of the grid cell.
    status:
        ``"ok"`` or ``"failed"``.
    metrics:
        The trial function's returned measurements (empty when failed).
    elapsed_seconds:
        Wall clock of the trial function.
    git_rev:
        Repository revision the trial ran at (``"unknown"`` outside git).
    started_at:
        UTC ISO-8601 timestamp (provenance only — reports never include
        it, so regenerated docs stay byte-stable).
    attempt:
        1-based attempt number that produced this record (> 1 after
        retries).
    error:
        Exception summary for failed trials.
    """

    experiment: str
    trial_id: str
    cell: Dict[str, object]
    trial_index: int
    seed: int
    config_hash: str
    status: str
    metrics: Dict[str, object] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    git_rev: str = "unknown"
    started_at: str = ""
    attempt: int = 1
    error: Optional[str] = None
    version: int = _RECORD_VERSION

    @property
    def ok(self) -> bool:
        """Whether the trial completed successfully."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-serialisable payload (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialRecord":
        """Rebuild a record from a parsed JSON line.

        Unknown keys are dropped so newer records stay readable by older
        code (same forward-compatibility contract as ``repro.obs`` traces).
        """
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def git_revision(cwd: Optional[Path] = None) -> str:
    """Current git revision (short hash, ``+dirty`` suffix when modified).

    Returns ``"unknown"`` when git is unavailable or *cwd* is not a
    repository — provenance degrades, it never raises.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        suffix = "+dirty" if dirty.returncode == 0 and dirty.stdout.strip() else ""
        return rev.stdout.strip() + suffix
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_record(path: Path | str, record: TrialRecord) -> None:
    """Append one record as a JSON line, flushed and fsynced.

    The parent directory is created on demand.  A crash mid-append can
    tear only the final line, which :func:`load_records` skips.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_records(path: Path | str) -> Tuple[List[TrialRecord], int]:
    """Parse a records file, skipping corrupt or torn lines.

    Returns
    -------
    (records, skipped):
        Parsed records in file order, and the number of unparseable
        lines that were skipped (0 on a clean file).  A missing file
        yields ``([], 0)``.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: List[TrialRecord] = []
    skipped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            records.append(TrialRecord.from_dict(payload))
        except (ValueError, TypeError):
            skipped += 1
    return records, skipped


def write_manifest(directory: Path | str, manifest: dict) -> Path:
    """Atomically persist the sweep manifest (temp file + ``os.replace``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on failure — os.replace consumed it otherwise
            tmp.unlink()
    return path


def read_manifest(directory: Path | str) -> Optional[dict]:
    """Load the sweep manifest from *directory*, or ``None`` if absent."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
