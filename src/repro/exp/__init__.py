"""repro.exp — declarative experiment orchestration.

Every paper table/figure and ablation is *data*: an
:class:`ExperimentSpec` names the axes (GA type, disk count, crossover,
…), the per-trial function, the trial count and the aggregation that
turns recorded trials back into the paper-shaped table.  The
:class:`SweepRunner` fans trials out over a worker pool, appends one
JSONL :class:`TrialRecord` per trial (config-hash + git-revision
provenance) and resumes a killed sweep from the completed records.  The
report layer (:mod:`repro.exp.report`) aggregates records into tables,
mean ± CI summaries and Wilcoxon comparisons, and regenerates the marked
sections of ``EXPERIMENTS.md`` — documentation as a build artifact.

The CLI surface is ``python -m repro exp {list,run,status,resume,report}``.
"""

from repro.exp.defaults import (
    ABLATION_SEEDS,
    DEFAULT_RESULTS_ROOT,
    GRID_SEED,
    PAPER_SEED,
    SCHEDULE_SEED,
    default_out_dir,
)
from repro.exp.records import (
    TrialRecord,
    append_record,
    git_revision,
    load_records,
    read_manifest,
    write_manifest,
)
from repro.exp.registry import get_spec, list_specs, register, spec_names
from repro.exp.report import (
    experiment_report,
    markdown_table,
    render_sections,
    update_experiments_md,
)
from repro.exp.runner import SweepResult, SweepRunner, SweepStatus, run_inline, sweep_status
from repro.exp.spec import Comparison, ExperimentSpec, TrialSpec, config_hash, derive_seed

# Built-in paper/table specs self-register on import.
from repro.exp import paper as _paper  # noqa: F401  (import for side effect)
from repro.exp import islands_portfolio as _islands_portfolio  # noqa: F401  (self-registers)

__all__ = [
    "ABLATION_SEEDS",
    "Comparison",
    "DEFAULT_RESULTS_ROOT",
    "ExperimentSpec",
    "GRID_SEED",
    "PAPER_SEED",
    "SCHEDULE_SEED",
    "SweepResult",
    "SweepRunner",
    "SweepStatus",
    "TrialRecord",
    "TrialSpec",
    "append_record",
    "config_hash",
    "default_out_dir",
    "derive_seed",
    "experiment_report",
    "get_spec",
    "git_revision",
    "list_specs",
    "load_records",
    "markdown_table",
    "read_manifest",
    "register",
    "render_sections",
    "run_inline",
    "spec_names",
    "sweep_status",
    "update_experiments_md",
    "write_manifest",
]
