"""Built-in experiment specs: the paper's result tables as data.

Each spec re-expresses one ``benchmarks/bench_table*.py`` one-off as a
declarative grid + trial function + aggregation, so the tables are
produced by the shared :class:`~repro.exp.runner.SweepRunner` (resume,
provenance, parallelism) instead of nineteen hand-rolled trial loops.
The trial functions reuse the exact configs of the
:mod:`repro.analysis.experiments` drivers; only the seeding pathway
differs (per-trial derived seeds instead of one spawning root RNG, which
is what makes individual trials resumable).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.experiments import (
    ExperimentScale,
    RunRecord,
    hanoi_max_len,
    multiphase_config,
    run_multi_record,
    run_single_record,
    single_phase_config,
    tile_init_length,
    tile_max_len,
)
from repro.analysis.tables import Table
from repro.core import make_rng
from repro.exp.records import TrialRecord
from repro.exp.registry import register
from repro.exp.spec import Comparison, ExperimentSpec

__all__ = ["TABLE2_HANOI", "TABLE4_TILE", "TABLE5_PHASES", "record_metrics"]

GA_TYPES = ("single-phase", "multi-phase")
CROSSOVERS_T4 = ("state-aware", "random", "mixed")  # paper Table 4 row order
CROSSOVERS_T5 = ("random", "state-aware", "mixed")  # paper Table 5 column order


def record_metrics(rec: RunRecord) -> Dict[str, object]:
    """Flatten a :class:`RunRecord` into the JSONL metrics payload."""
    return {
        "goal_fitness": rec.goal_fitness,
        "size": rec.size,
        "solved": rec.solved,
        "generations": rec.generations,
        "solved_in_phase": rec.solved_in_phase,
        "elapsed_seconds": round(rec.elapsed_seconds, 6),
    }


def _group(records: Sequence[TrialRecord], *axes: str) -> Dict[tuple, List[TrialRecord]]:
    """Bucket ok-records by the given cell axes (insertion order preserved)."""
    groups: Dict[tuple, List[TrialRecord]] = {}
    for rec in records:
        if not rec.ok:
            continue
        groups.setdefault(tuple(rec.cell[a] for a in axes), []).append(rec)
    return groups


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


# -- Table 2: Towers of Hanoi --------------------------------------------------


def hanoi_trial(cell: dict, seed: int, scale: ExperimentScale) -> Dict[str, object]:
    """One Table-2 trial: single- or multi-phase GA on n-disk Hanoi."""
    from repro.domains.registry import create as create_domain

    n_disks = int(cell["disks"])
    domain = create_domain("hanoi", n_disks)
    max_len = hanoi_max_len(n_disks)
    init = domain.optimal_length
    rng = make_rng(seed)
    if cell["ga_type"] == "single-phase":
        rec = run_single_record(
            domain, single_phase_config(scale, max_len, init, "random"), rng
        )
    else:
        rec = run_multi_record(
            domain, multiphase_config(scale, max_len, init, "random"), rng
        )
    return record_metrics(rec)


def aggregate_table2(
    spec: ExperimentSpec, records: Sequence[TrialRecord], scale: ExperimentScale
) -> Table:
    """Fold Table-2 trial records into the paper's row layout."""
    table = Table(
        f"Table 2: Towers of Hanoi results ({scale.label} scale)",
        [
            "GA Type",
            "Disks",
            "Avg Goal Fitness",
            "Avg Size of Solution",
            "Avg Gens to Find Solution",
            "Solved Runs",
            "Total Runs",
        ],
    )
    groups = _group(records, "ga_type", "disks")
    for ga_type in spec.axes_for(scale)["ga_type"]:
        for disks in spec.axes_for(scale)["disks"]:
            cell = groups.get((ga_type, disks), [])
            if not cell:
                continue
            solved = [r for r in cell if r.metrics["solved"] and r.metrics["generations"]]
            avg_gens = (
                round(_mean([r.metrics["generations"] for r in solved]), 1)
                if solved
                else "-"
            )
            table.add_row(
                ga_type,
                disks,
                round(_mean([r.metrics["goal_fitness"] for r in cell]), 3),
                round(_mean([r.metrics["size"] for r in cell]), 1),
                avg_gens,
                len(solved),
                len(cell),
            )
    return table


TABLE2_HANOI = register(
    ExperimentSpec(
        name="table2-hanoi",
        title="Table 2: Towers of Hanoi, single- vs multi-phase GA",
        description=(
            "Goal fitness, solution size and generations-to-solution across "
            "disk counts; the claim is multi-phase >= single-phase at every "
            "size, with fitness decreasing in disk count."
        ),
        axes=lambda s: {"ga_type": GA_TYPES, "disks": s.hanoi_disks},
        trial_fn=hanoi_trial,
        trials=lambda s: s.runs_hanoi,
        aggregate_fn=aggregate_table2,
        ci_metrics=("goal_fitness", "size"),
        comparisons=(
            Comparison(
                metric="goal_fitness",
                axis="ga_type",
                a="multi-phase",
                b="single-phase",
                groupby=("disks",),
            ),
        ),
    )
)


# -- Table 4: Sliding-tile puzzle ---------------------------------------------


def tile_trial(cell: dict, seed: int, scale: ExperimentScale) -> Dict[str, object]:
    """One Table-4/5 trial: the multi-phase GA on the n×n tile puzzle."""
    from repro.domains.registry import create as create_domain

    n = int(cell["n"])
    domain = create_domain("tile", n)
    cfg = multiphase_config(scale, tile_max_len(n), tile_init_length(n), cell["crossover"])
    return record_metrics(run_multi_record(domain, cfg, make_rng(seed)))


def aggregate_table4(
    spec: ExperimentSpec, records: Sequence[TrialRecord], scale: ExperimentScale
) -> Table:
    """Fold Table-4 trial records into the paper's row layout."""
    table = Table(
        f"Table 4: Sliding-tile puzzle results ({scale.label} scale)",
        [
            "Crossover",
            "Tiles",
            "Avg Goal Fitness",
            "Avg Size of Solution",
            "Runs Finding Valid Solution",
            "Total Runs",
            "Avg Time (s)",
        ],
    )
    groups = _group(records, "crossover", "n")
    for crossover in spec.axes_for(scale)["crossover"]:
        for n in spec.axes_for(scale)["n"]:
            cell = groups.get((crossover, n), [])
            if not cell:
                continue
            table.add_row(
                crossover,
                n * n,
                round(_mean([r.metrics["goal_fitness"] for r in cell]), 3),
                round(_mean([r.metrics["size"] for r in cell]), 2),
                sum(1 for r in cell if r.metrics["solved"]),
                len(cell),
                round(_mean([r.metrics["elapsed_seconds"] for r in cell]), 2),
            )
    return table


TABLE4_TILE = register(
    ExperimentSpec(
        name="table4-tile",
        title="Table 4: Sliding-tile puzzle, crossover type × board size",
        description=(
            "The three crossovers score closely on one board; 3×3 is solved "
            "nearly every run, 4×4 almost never; size and wall-clock grow "
            "sharply from 9 to 16 tiles."
        ),
        axes=lambda s: {"crossover": CROSSOVERS_T4, "n": s.tile_sizes},
        trial_fn=tile_trial,
        trials=lambda s: s.runs_tile,
        aggregate_fn=aggregate_table4,
        ci_metrics=("goal_fitness", "size", "elapsed_seconds"),
        comparisons=(
            Comparison(
                metric="size",
                axis="crossover",
                a="state-aware",
                b="random",
                groupby=("n",),
            ),
        ),
    )
)


# -- Table 5: phase of first valid solution -----------------------------------


def aggregate_table5(
    spec: ExperimentSpec, records: Sequence[TrialRecord], scale: ExperimentScale
) -> Table:
    """Fold Table-5 trial records into runs-per-phase counts."""
    axes = spec.axes_for(scale)
    n = axes["n"][0]
    table = Table(
        f"Table 5: runs finding a valid solution per phase, {n}x{n} ({scale.label} scale)",
        ["Phase", "Random", "State-aware", "Mixed"],
    )
    groups = _group(records, "crossover")
    counts = {}
    for crossover in CROSSOVERS_T5:
        per_phase = [0] * scale.max_phases
        for rec in groups.get((crossover,), []):
            phase = rec.metrics.get("solved_in_phase")
            if phase is not None:
                per_phase[int(phase) - 1] += 1
        counts[crossover] = per_phase
    for phase in range(scale.max_phases):
        table.add_row(
            phase + 1,
            counts["random"][phase],
            counts["state-aware"][phase],
            counts["mixed"][phase],
        )
    return table


TABLE5_PHASES = register(
    ExperimentSpec(
        name="table5-phases",
        title="Table 5: phase in which the first valid solution appears (3×3)",
        description=(
            "Distribution of the first solving phase per crossover; "
            "state-aware and mixed mostly solve in phase 1, random needs "
            "phase 2 more often, and almost everything resolves within two "
            "phases."
        ),
        axes={"crossover": CROSSOVERS_T5, "n": (3,)},
        trial_fn=tile_trial,
        trials=lambda s: s.runs_tile,
        aggregate_fn=aggregate_table5,
        comparisons=(
            Comparison(
                metric="solved_in_phase",
                axis="crossover",
                a="state-aware",
                b="random",
                groupby=("n",),
            ),
        ),
    )
)
