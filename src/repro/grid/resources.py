"""Hardware-resource ontology: machines, sites, links, topology.

The paper assumes "ontologies describing data, programs, and hardware
resources"; this module is the hardware third.  A machine advertises its
capabilities (speed, memory, disk) — the attributes program preconditions
are checked against — plus dynamic load, which brokerage and dynamic
replanning react to ("assume that site S is overloaded and there are
alternative sites capable of executing program P at lower costs").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

import networkx as nx

__all__ = ["Machine", "Site", "Link", "GridTopology"]


@dataclass(frozen=True)
class Machine:
    """One compute resource.

    Attributes
    ----------
    name:
        Unique id.
    site:
        The site (administrative domain) the machine belongs to.
    speed:
        Relative compute speed in Mflop/s; execution time of a program is
        ``program.flops / (speed / (1 + load))``.
    memory_gb / disk_tb:
        Capacity limits checked against program requirements.
    load:
        Background load factor ≥ 0; 0 means dedicated.  An overloaded
        machine still works, just slower — exactly the scenario that makes
        static scripts inferior to replanning.
    up:
        Whether the machine is alive; failed machines accept no work.
    """

    name: str
    site: str
    speed: float
    memory_gb: float = 4.0
    disk_tb: float = 1.0
    load: float = 0.0
    up: bool = True

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"machine {self.name!r}: speed must be positive")
        if self.memory_gb <= 0 or self.disk_tb <= 0:
            raise ValueError(f"machine {self.name!r}: capacities must be positive")
        if self.load < 0:
            raise ValueError(f"machine {self.name!r}: load must be non-negative")

    @property
    def effective_speed(self) -> float:
        """Speed after background load: ``speed / (1 + load)``."""
        return self.speed / (1.0 + self.load)

    def with_load(self, load: float) -> "Machine":
        return replace(self, load=load)

    def failed(self) -> "Machine":
        return replace(self, up=False)

    def restored(self) -> "Machine":
        return replace(self, up=True)


@dataclass(frozen=True)
class Site:
    """An administrative domain hosting machines."""

    name: str
    description: str = ""


@dataclass(frozen=True)
class Link:
    """A network link between two sites.

    ``bandwidth_mbps`` is the sustained transfer rate; ``latency_s`` is a
    fixed per-transfer startup cost.
    """

    a: str
    b: str
    bandwidth_mbps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"link {self.a}-{self.b}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError(f"link {self.a}-{self.b}: latency must be non-negative")


class GridTopology:
    """The grid: sites, machines, and inter-site links.

    Intra-site transfers use a configurable (fast) local bandwidth.
    Machine lookups are by name; iteration order is sorted by name so that
    planning operations ground deterministically.
    """

    def __init__(self, local_bandwidth_mbps: float = 10_000.0) -> None:
        self.sites: Dict[str, Site] = {}
        self.machines: Dict[str, Machine] = {}
        self._graph = nx.Graph()
        self.local_bandwidth_mbps = local_bandwidth_mbps
        # Pristine Link records for currently degraded/partitioned site
        # pairs, keyed by the sorted pair — what restore_link reinstates.
        self._pristine_links: Dict[Tuple[str, str], Link] = {}

    # -- construction --------------------------------------------------------

    def add_site(self, site: Site) -> "GridTopology":
        if site.name in self.sites:
            raise ValueError(f"duplicate site {site.name!r}")
        self.sites[site.name] = site
        self._graph.add_node(site.name)
        return self

    def add_machine(self, machine: Machine) -> "GridTopology":
        if machine.name in self.machines:
            raise ValueError(f"duplicate machine {machine.name!r}")
        if machine.site not in self.sites:
            raise ValueError(f"machine {machine.name!r} references unknown site {machine.site!r}")
        self.machines[machine.name] = machine
        return self

    def add_link(self, link: Link) -> "GridTopology":
        for s in (link.a, link.b):
            if s not in self.sites:
                raise ValueError(f"link references unknown site {s!r}")
        self._graph.add_edge(link.a, link.b, link=link)
        return self

    # -- queries -------------------------------------------------------------

    def machine_names(self) -> list:
        return sorted(self.machines)

    def link_pairs(self) -> list:
        """Sorted site pairs that have (or had, while faulted) a link."""
        pairs = {tuple(sorted(edge)) for edge in self._graph.edges}
        pairs.update(self._pristine_links)
        return sorted(pairs)

    def up_machines(self) -> list:
        return [self.machines[n] for n in self.machine_names() if self.machines[n].up]

    def bandwidth(self, src_machine: str, dst_machine: str) -> Optional[float]:
        """Path bandwidth (bottleneck) between two machines, Mbit/s.

        ``None`` when no path exists.  Same-machine transfers are free and
        report local bandwidth.
        """
        src = self.machines[src_machine]
        dst = self.machines[dst_machine]
        if src.site == dst.site:
            return self.local_bandwidth_mbps
        try:
            path = nx.shortest_path(self._graph, src.site, dst.site)
        except nx.NetworkXNoPath:
            return None
        bw = self.local_bandwidth_mbps
        for a, b in zip(path, path[1:]):
            bw = min(bw, self._graph.edges[a, b]["link"].bandwidth_mbps)
        return bw

    def latency(self, src_machine: str, dst_machine: str) -> Optional[float]:
        """Total path latency in seconds (0 for same-site)."""
        src = self.machines[src_machine]
        dst = self.machines[dst_machine]
        if src.site == dst.site:
            return 0.0
        try:
            path = nx.shortest_path(self._graph, src.site, dst.site)
        except nx.NetworkXNoPath:
            return None
        return sum(
            self._graph.edges[a, b]["link"].latency_s for a, b in zip(path, path[1:])
        )

    def transfer_time(self, src_machine: str, dst_machine: str, volume_mb: float) -> Optional[float]:
        """Seconds to move *volume_mb* megabytes between two machines."""
        if volume_mb < 0:
            raise ValueError(f"volume must be non-negative, got {volume_mb}")
        if src_machine == dst_machine:
            return 0.0
        bw = self.bandwidth(src_machine, dst_machine)
        lat = self.latency(src_machine, dst_machine)
        if bw is None or lat is None:
            return None
        return lat + (volume_mb * 8.0) / bw

    # -- mutation (dynamic events) -------------------------------------------

    def set_machine(self, machine: Machine) -> None:
        """Replace a machine record (load change, failure, recovery)."""
        if machine.name not in self.machines:
            raise ValueError(f"unknown machine {machine.name!r}")
        self.machines[machine.name] = machine

    def _get(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise ValueError(f"unknown machine {name!r}") from None

    def fail_machine(self, name: str) -> None:
        self.set_machine(self._get(name).failed())

    def restore_machine(self, name: str) -> None:
        self.set_machine(self._get(name).restored())

    def set_load(self, name: str, load: float) -> None:
        self.set_machine(self._get(name).with_load(load))

    # -- link faults ---------------------------------------------------------
    #
    # Link degradation and partition are the network half of the fault
    # model: a degraded link keeps routing at a fraction of its bandwidth,
    # a partitioned link disappears entirely (paths through it become
    # unreachable until restored).  The pristine Link is remembered on the
    # first fault so restore_link always returns to the original state.

    def _link_key(self, site_a: str, site_b: str) -> Tuple[str, str]:
        for s in (site_a, site_b):
            if s not in self.sites:
                raise ValueError(f"unknown site {s!r}")
        return tuple(sorted((site_a, site_b)))  # type: ignore[return-value]

    def _current_link(self, key: Tuple[str, str]) -> Optional[Link]:
        if self._graph.has_edge(*key):
            return self._graph.edges[key]["link"]
        return None

    def degrade_link(self, site_a: str, site_b: str, factor: float) -> None:
        """Divide the link's bandwidth by *factor* (> 1)."""
        if factor <= 1.0:
            raise ValueError(f"degrade factor must be > 1, got {factor}")
        key = self._link_key(site_a, site_b)
        link = self._current_link(key)
        if link is None:
            raise ValueError(f"no link between {site_a!r} and {site_b!r}")
        self._pristine_links.setdefault(key, link)
        degraded = replace(link, bandwidth_mbps=link.bandwidth_mbps / factor)
        self._graph.edges[key]["link"] = degraded

    def partition_link(self, site_a: str, site_b: str) -> None:
        """Remove the link entirely until :meth:`restore_link`."""
        key = self._link_key(site_a, site_b)
        link = self._current_link(key)
        if link is None:
            if key not in self._pristine_links:
                raise ValueError(f"no link between {site_a!r} and {site_b!r}")
            return  # already partitioned
        self._pristine_links.setdefault(key, link)
        self._graph.remove_edge(*key)

    def restore_link(self, site_a: str, site_b: str) -> None:
        """Undo any degradation/partition, reinstating the pristine link."""
        key = self._link_key(site_a, site_b)
        pristine = self._pristine_links.pop(key, None)
        if pristine is None:
            return  # never faulted — nothing to do
        self._graph.add_edge(key[0], key[1], link=pristine)
