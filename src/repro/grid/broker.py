"""Brokerage: resource discovery and ranking — a societal service.

Given a program, the broker discovers the machines whose hardware satisfies
its preconditions and ranks them by estimated completion cost (runtime plus
the time to stage missing inputs), from both "the grid's and the user's
perspective" — the ranking weight lets callers trade raw speed against
load-balancing pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.grid.data import DataProduct
from repro.grid.ontology import Ontology
from repro.grid.resources import Machine

__all__ = ["Offer", "ResourceBroker"]


@dataclass(frozen=True)
class Offer:
    """One candidate placement for a program."""

    machine: str
    runtime_s: float
    staging_s: float
    load: float

    @property
    def total_s(self) -> float:
        return self.runtime_s + self.staging_s


class ResourceBroker:
    """Discovery + ranking over the ontology's topology."""

    def __init__(self, ontology: Ontology, load_penalty: float = 0.0) -> None:
        if load_penalty < 0:
            raise ValueError("load_penalty must be non-negative")
        self.ontology = ontology
        self.load_penalty = load_penalty

    def discover(self, program_name: str) -> List[Machine]:
        """Machines satisfying the program's hardware preconditions."""
        return self.ontology.hosts_for(program_name)

    def _staging_time(
        self, machine: str, inputs: Sequence[Tuple[DataProduct, str]]
    ) -> Optional[float]:
        """Time to move each input product from its location to *machine*."""
        total = 0.0
        for product, location in inputs:
            if location == machine:
                continue
            t = self.ontology.topology.transfer_time(
                location, machine, self.ontology.volume_of(product.dtype)
            )
            if t is None:
                return None
            total += t
        return total

    def offers(
        self,
        program_name: str,
        input_locations: Sequence[Tuple[DataProduct, str]] = (),
    ) -> List[Offer]:
        """Ranked placements (cheapest first, load-penalised)."""
        program = self.ontology.programs[program_name]
        out: List[Offer] = []
        for machine in self.discover(program_name):
            staging = self._staging_time(machine.name, input_locations)
            if staging is None:
                continue  # unreachable inputs
            out.append(
                Offer(
                    machine=machine.name,
                    runtime_s=program.runtime_on(machine),
                    staging_s=staging,
                    load=machine.load,
                )
            )
        out.sort(key=lambda o: (o.total_s + self.load_penalty * o.load, o.machine))
        return out

    def best_offer(
        self,
        program_name: str,
        input_locations: Sequence[Tuple[DataProduct, str]] = (),
    ) -> Optional[Offer]:
        ranked = self.offers(program_name, input_locations)
        return ranked[0] if ranked else None
