"""Brokerage: resource discovery and ranking — a societal service.

Given a program, the broker discovers the machines whose hardware satisfies
its preconditions and ranks them by estimated completion cost (runtime plus
the time to stage missing inputs), from both "the grid's and the user's
perspective" — the ranking weight lets callers trade raw speed against
load-balancing pressure.

On an unreliable grid an offer is a bet, not a contract: the chosen machine
may crash or be unreachable by the time work is dispatched.
:meth:`ResourceBroker.place_with_retry` encodes the recovery policy — walk
the ranked offers from best to next-best, backing off exponentially (with a
cap) between attempts, reporting each failure as a ``retry`` event and a
``retries`` counter tick through :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.grid.data import DataProduct
from repro.grid.ontology import Ontology
from repro.grid.resources import Machine
from repro.obs.events import RetryAttempt
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer

__all__ = ["Offer", "ResourceBroker", "RetryPolicy", "Placement", "PlacementError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over a bounded number of attempts.

    With ``jitter=True`` (the default) retried placements use *full jitter*:
    each delay is drawn uniformly from ``[0, backoff_s(index)]``, which
    decorrelates retry storms when many requests lose the same machine at
    once (the classic thundering-herd fix).  :meth:`backoff_s` stays the
    deterministic envelope; :meth:`jittered_backoff_s` applies the draw.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_s(self, failure_index: int) -> float:
        """Deterministic delay cap after the ``failure_index``-th failure (0-based)."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** failure_index))

    def jittered_backoff_s(self, failure_index: int, rng=None) -> float:
        """The actual delay: full jitter over :meth:`backoff_s` when enabled.

        *rng* is a ``numpy.random.Generator`` (or anything with a
        ``uniform(low, high)`` method); without one — or with
        ``jitter=False`` — the deterministic envelope is returned, so
        callers that never pass an rng keep their exact historical delays.
        """
        envelope = self.backoff_s(failure_index)
        if not self.jitter or rng is None or envelope <= 0:
            return envelope
        return float(rng.uniform(0.0, envelope))


@dataclass(frozen=True)
class Placement:
    """Outcome of a retried placement: the offer that stuck, plus cost."""

    offer: "Offer"
    attempts: int
    backoff_s: float  # total (simulated) backoff delay spent before success


class PlacementError(RuntimeError):
    """Every candidate offer was tried and failed (or none existed)."""


@dataclass(frozen=True)
class Offer:
    """One candidate placement for a program."""

    machine: str
    runtime_s: float
    staging_s: float
    load: float

    @property
    def total_s(self) -> float:
        return self.runtime_s + self.staging_s


class ResourceBroker:
    """Discovery + ranking over the ontology's topology."""

    def __init__(self, ontology: Ontology, load_penalty: float = 0.0) -> None:
        if load_penalty < 0:
            raise ValueError("load_penalty must be non-negative")
        self.ontology = ontology
        self.load_penalty = load_penalty

    def discover(self, program_name: str) -> List[Machine]:
        """Machines satisfying the program's hardware preconditions."""
        return self.ontology.hosts_for(program_name)

    def _staging_time(
        self, machine: str, inputs: Sequence[Tuple[DataProduct, str]]
    ) -> Optional[float]:
        """Time to move each input product from its location to *machine*."""
        total = 0.0
        for product, location in inputs:
            if location == machine:
                continue
            t = self.ontology.topology.transfer_time(
                location, machine, self.ontology.volume_of(product.dtype)
            )
            if t is None:
                return None
            total += t
        return total

    def offers(
        self,
        program_name: str,
        input_locations: Sequence[Tuple[DataProduct, str]] = (),
    ) -> List[Offer]:
        """Ranked placements (cheapest first, load-penalised)."""
        program = self.ontology.programs.get(program_name)
        if program is None:
            known = ", ".join(sorted(self.ontology.programs)) or "(none registered)"
            raise ValueError(f"unknown program {program_name!r}; known: {known}")
        out: List[Offer] = []
        for machine in self.discover(program_name):
            staging = self._staging_time(machine.name, input_locations)
            if staging is None:
                continue  # unreachable inputs
            out.append(
                Offer(
                    machine=machine.name,
                    runtime_s=program.runtime_on(machine),
                    staging_s=staging,
                    load=machine.load,
                )
            )
        out.sort(key=lambda o: (o.total_s + self.load_penalty * o.load, o.machine))
        return out

    def best_offer(
        self,
        program_name: str,
        input_locations: Sequence[Tuple[DataProduct, str]] = (),
    ) -> Optional[Offer]:
        ranked = self.offers(program_name, input_locations)
        return ranked[0] if ranked else None

    def place_with_retry(
        self,
        program_name: str,
        input_locations: Sequence[Tuple[DataProduct, str]] = (),
        *,
        attempt: Callable[[Offer], bool],
        policy: Optional[RetryPolicy] = None,
        rng=None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Placement:
        """Place a program, falling back to the next-best offer on failure.

        *attempt* dispatches work to one offer and reports success: truthy
        return means the placement stuck; a falsy return or any exception
        means it failed (machine crashed, dispatch refused, …) and the next
        ranked offer is tried after a capped exponential backoff with full
        jitter (pass a seeded *rng* to enable the jitter draw; without one
        the deterministic envelope delay is used).  Backoff is *simulated* —
        accumulated into :attr:`Placement.backoff_s`, not slept — because
        broker time is grid time, not wall time.

        Every attempt ticks the ``placement_attempts`` counter and each
        failure emits a ``retry`` event, ticks ``retries`` and accumulates
        its delay into ``placement_backoff_s``; exhausting every offer (or
        ``policy.max_attempts``) raises :class:`PlacementError`.
        """
        policy = policy or RetryPolicy()
        tracer = tracer if tracer is not None else default_tracer()
        metrics = metrics if metrics is not None else default_metrics()
        ranked = self.offers(program_name, input_locations)
        if not ranked:
            raise PlacementError(f"no machine can host program {program_name!r}")
        delay = 0.0
        failures: List[str] = []
        for index, offer in enumerate(ranked[: policy.max_attempts]):
            if metrics is not None:
                metrics.counter("placement_attempts").add(1)
            try:
                ok = bool(attempt(offer))
                reason = f"placement on {offer.machine} refused"
            except Exception as exc:
                ok = False
                reason = f"placement on {offer.machine} failed: {exc}"
            if ok:
                return Placement(offer=offer, attempts=index + 1, backoff_s=delay)
            failures.append(reason)
            backoff = policy.jittered_backoff_s(index, rng)
            delay += backoff
            if metrics is not None:
                metrics.counter("retries").add(1)
                metrics.counter("placement_backoff_s").add(backoff)
            if tracer.enabled:
                tracer.emit(
                    RetryAttempt(
                        scope="broker",
                        component="broker",
                        attempt=index + 1,
                        backoff_s=backoff,
                        reason=reason,
                    )
                )
        raise PlacementError(
            f"program {program_name!r} could not be placed after "
            f"{min(len(ranked), policy.max_attempts)} attempt(s): " + "; ".join(failures)
        )
