"""Activity graphs: the workflow DAG a plan compiles into.

"The objective of planning in the context of the execution of complex tasks
on a grid is to construct an activity graph describing a transformation of
input data into a different set of data" — this module is that construction.
A linear plan over :class:`~repro.grid.workflow_domain.GridWorkflowDomain`
operations becomes a DAG whose nodes are activities (program runs and
transfers) and whose edges are data dependencies; independent activities are
then free to execute concurrently under the coordination service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.grid.data import DataProduct
from repro.grid.workflow_domain import GridWorkflowDomain, RunProgram, Transfer

__all__ = ["Activity", "ActivityGraph", "activity_graph_to_dag_problem", "plan_to_activity_graph", "to_dot"]


@dataclass(frozen=True)
class Activity:
    """One node of the activity graph.

    ``kind`` is ``"run"`` or ``"transfer"``; ``op`` is the underlying
    planning operation; ``produces`` lists ``(product, machine)`` placements
    the activity creates and ``consumes`` the ones it needs.
    """

    id: int
    kind: str
    op: object
    consumes: tuple
    produces: tuple

    @property
    def label(self) -> str:
        return f"a{self.id}:{self.op}"


class ActivityGraph:
    """A validated DAG of activities over a grid domain."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._by_id: Dict[int, Activity] = {}

    def add(self, activity: Activity, depends_on: Sequence[int] = ()) -> None:
        if activity.id in self._by_id:
            raise ValueError(f"duplicate activity id {activity.id}")
        self._by_id[activity.id] = activity
        self.graph.add_node(activity.id)
        for dep in depends_on:
            if dep not in self._by_id:
                raise ValueError(f"activity {activity.id} depends on unknown activity {dep}")
            self.graph.add_edge(dep, activity.id)
        if not nx.is_directed_acyclic_graph(self.graph):  # pragma: no cover - defensive
            raise ValueError("activity graph acquired a cycle")

    def activity(self, activity_id: int) -> Activity:
        return self._by_id[activity_id]

    def activities(self) -> List[Activity]:
        return [self._by_id[i] for i in sorted(self._by_id)]

    def topological_order(self) -> List[Activity]:
        return [self._by_id[i] for i in nx.topological_sort(self.graph)]

    def predecessors(self, activity_id: int) -> List[int]:
        return sorted(self.graph.predecessors(activity_id))

    def __len__(self) -> int:
        return len(self._by_id)

    def critical_path_length(self, duration_of) -> float:
        """Longest path through the DAG under *duration_of(activity)*."""
        longest: Dict[int, float] = {}
        for act in self.topological_order():
            base = max(
                (longest[p] for p in self.graph.predecessors(act.id)), default=0.0
            )
            longest[act.id] = base + duration_of(act)
        return max(longest.values(), default=0.0)


def plan_to_activity_graph(
    domain: GridWorkflowDomain, plan: Sequence[object]
) -> ActivityGraph:
    """Compile a linear plan into an activity DAG with data-dependency edges.

    An activity depends on the most recent earlier activity that produced
    each placement it consumes; placements present in the initial state have
    no producer.  Plan steps with no data flow between them end up
    unordered — that is the concurrency the coordination service exploits.
    """
    ag = ActivityGraph()
    producer: Dict[Tuple[DataProduct, str], int] = {}
    ids = itertools.count()
    for op in plan:
        aid = next(ids)
        if isinstance(op, RunProgram):
            consumes = tuple((p, op.machine) for p in op.inputs)
            produces = tuple((o, op.machine) for o in op.outputs)
            kind = "run"
        elif isinstance(op, Transfer):
            consumes = ((op.product, op.src),)
            produces = ((op.product, op.dst),)
            kind = "transfer"
        else:
            raise TypeError(f"cannot compile operation of type {type(op).__name__}")
        deps = sorted({producer[c] for c in consumes if c in producer})
        missing = [c for c in consumes if c not in producer and c not in domain.initial_state]
        if missing:
            raise ValueError(
                f"plan step {op} consumes placements never produced: {missing}"
            )
        ag.add(
            Activity(id=aid, kind=kind, op=op, consumes=consumes, produces=produces),
            depends_on=deps,
        )
        for placement in produces:
            producer[placement] = aid
    return ag


def to_dot(graph: ActivityGraph) -> str:
    """Graphviz DOT rendering of an activity graph.

    Run nodes are boxes, transfers are ellipses; edges are data
    dependencies.  Paste into any DOT viewer — handy when debugging why a
    workflow serialised the way it did.
    """
    lines = ["digraph activity {", "  rankdir=LR;"]
    for act in graph.activities():
        shape = "box" if act.kind == "run" else "ellipse"
        label = str(act.op).replace('"', "'")
        lines.append(f'  a{act.id} [shape={shape}, label="{label}"];')
    for src, dst in graph.graph.edges:
        lines.append(f"  a{src} -> a{dst};")
    lines.append("}")
    return "\n".join(lines)


def activity_graph_to_dag_problem(graph: ActivityGraph, ontology) -> "object":
    """Bridge a grid activity graph to a :class:`DagProblem` for HEFT.

    Run activities may be re-placed on any machine that satisfies the
    program's hardware preconditions (cost = runtime there); transfer
    activities stay pinned to their planned endpoints (their duration is a
    property of the route, not of a host).  Edge communication volumes come
    from the produced placements' data types.
    """
    import numpy as np

    from repro.scheduling.dag import DagProblem

    machines = tuple(ontology.topology.machine_names())
    compute: dict = {}
    for act in graph.activities():
        row: dict = {}
        if act.kind == "run":
            program = ontology.programs[act.op.program]
            for m in machines:
                machine = ontology.topology.machines[m]
                row[m] = (
                    program.runtime_on(machine)
                    if program.machine_ok(machine)
                    else float("inf")
                )
        else:
            duration = ontology.topology.transfer_time(
                act.op.src, act.op.dst, ontology.volume_of(act.op.product.dtype)
            )
            for m in machines:
                # Pinned: only the source machine "hosts" the transfer.
                row[m] = duration if m == act.op.src else float("inf")
        compute[act.id] = row

    comm: dict = {}
    for src, dst in graph.graph.edges:
        produced = graph.activity(src).produces
        volume = sum(ontology.volume_of(p.dtype) for p, _m in produced)
        # Worst-case inter-site estimate: slowest pairwise route.
        times = [
            ontology.topology.transfer_time(a, b, volume)
            for a in machines
            for b in machines
            if a != b
        ]
        finite = [t for t in times if t is not None]
        comm[(src, dst)] = max(finite) if finite else 0.0
    return DagProblem(graph=graph.graph.copy(), compute=compute, comm=comm, machines=machines)
