"""Data ontology: typed, attributed data products with genealogy.

The paper's program preconditions include "the type, format, amount, and
possibly a history of the input data" — the worked footnote example is a 2D
image whose resolution, filtering and transform history decides which
downstream program may legally consume it.  :class:`DataProduct` carries all
of that as hashable, immutable values so products can live inside planning
states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

__all__ = ["DataType", "DataProduct", "ProvenanceStep"]


@dataclass(frozen=True)
class DataType:
    """A named data type with a format and a nominal volume."""

    name: str
    format: str = "binary"
    volume_mb: float = 100.0

    def __post_init__(self) -> None:
        if self.volume_mb < 0:
            raise ValueError(f"data type {self.name!r}: volume must be non-negative")


@dataclass(frozen=True)
class ProvenanceStep:
    """One entry in a product's genealogy: which program, with what params."""

    program: str
    params: tuple = ()

    def __str__(self) -> str:
        if not self.params:
            return self.program
        kv = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.program}({kv})"


def _freeze_attrs(attrs: Optional[Mapping[str, object]]) -> tuple:
    if not attrs:
        return ()
    return tuple(sorted(attrs.items()))


@dataclass(frozen=True)
class DataProduct:
    """An immutable data artefact.

    Attributes
    ----------
    dtype:
        Name of the :class:`DataType`.
    attrs:
        Sorted ``(key, value)`` pairs — resolution, frequency cutoffs, ...
        Checked by program input constraints.
    history:
        The genealogy: the sequence of :class:`ProvenanceStep` that produced
        this artefact.  Programs may constrain it (e.g. "must have been
        histogram-equalised", "must not have been low-pass filtered").
    """

    dtype: str
    attrs: tuple = ()
    history: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "attrs", tuple(self.attrs))
        object.__setattr__(self, "history", tuple(self.history))

    @staticmethod
    def make(
        dtype: str,
        attrs: Optional[Mapping[str, object]] = None,
        history: Tuple[ProvenanceStep, ...] = (),
    ) -> "DataProduct":
        return DataProduct(dtype=dtype, attrs=_freeze_attrs(attrs), history=tuple(history))

    def attr(self, key: str, default: object = None) -> object:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def with_attrs(self, **updates: object) -> "DataProduct":
        merged = dict(self.attrs)
        merged.update(updates)
        return DataProduct(dtype=self.dtype, attrs=_freeze_attrs(merged), history=self.history)

    def derived(
        self,
        dtype: str,
        program: str,
        params: Optional[Mapping[str, object]] = None,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> "DataProduct":
        """A new product produced from this one by *program*."""
        step = ProvenanceStep(program=program, params=_freeze_attrs(params))
        return DataProduct(
            dtype=dtype,
            attrs=_freeze_attrs(attrs) if attrs is not None else self.attrs,
            history=self.history + (step,),
        )

    def processed_by(self, program: str) -> bool:
        """Whether *program* appears anywhere in the genealogy."""
        return any(step.program == program for step in self.history)

    def __str__(self) -> str:
        hist = " <- ".join(str(s) for s in reversed(self.history)) or "raw"
        return f"{self.dtype}[{hist}]"
