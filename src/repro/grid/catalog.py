"""Replica catalog: the persistent-storage societal service.

Tracks which data products are stored where, enforces per-machine storage
capacity, and answers "nearest replica" queries — the storage counterpart
to the broker's compute discovery.  The coordination service records every
placement an execution realises; staging logic can then pull inputs from
the *cheapest* replica instead of the original location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.grid.data import DataProduct
from repro.grid.ontology import Ontology

__all__ = ["ReplicaCatalog", "StorageFullError"]


class StorageFullError(RuntimeError):
    """Raised when a machine's disk cannot hold another replica."""


@dataclass(frozen=True)
class _Replica:
    product: DataProduct
    machine: str


class ReplicaCatalog:
    """Placement registry with capacity accounting and replica selection."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._replicas: Set[_Replica] = set()
        self._used_mb: Dict[str, float] = {m: 0.0 for m in ontology.topology.machines}

    # -- registration -----------------------------------------------------------

    def capacity_mb(self, machine: str) -> float:
        return self.ontology.topology.machines[machine].disk_tb * 1e6

    def used_mb(self, machine: str) -> float:
        return self._used_mb[machine]

    def register(self, product: DataProduct, machine: str) -> None:
        """Record a replica; idempotent for existing entries."""
        if machine not in self._used_mb:
            raise ValueError(f"unknown machine {machine!r}")
        replica = _Replica(product, machine)
        if replica in self._replicas:
            return
        volume = self.ontology.volume_of(product.dtype)
        if self._used_mb[machine] + volume > self.capacity_mb(machine):
            raise StorageFullError(
                f"machine {machine!r} cannot store {product.dtype!r} "
                f"({volume} MB needed, "
                f"{self.capacity_mb(machine) - self._used_mb[machine]:.0f} MB free)"
            )
        self._replicas.add(replica)
        self._used_mb[machine] += volume

    def register_placements(self, placements: Iterable[Tuple[DataProduct, str]]) -> None:
        for product, machine in placements:
            self.register(product, machine)

    def evict(self, product: DataProduct, machine: str) -> bool:
        """Drop one replica; returns whether it existed.

        Refuses (returns False) to drop the *last* replica of a product —
        persistent storage must not silently lose data.
        """
        replica = _Replica(product, machine)
        if replica not in self._replicas:
            return False
        if len(self.locations(product)) <= 1:
            return False
        self._replicas.discard(replica)
        self._used_mb[machine] -= self.ontology.volume_of(product.dtype)
        return True

    # -- queries ------------------------------------------------------------------

    def locations(self, product: DataProduct) -> List[str]:
        return sorted(r.machine for r in self._replicas if r.product == product)

    def holdings(self, machine: str) -> List[DataProduct]:
        return sorted(
            (r.product for r in self._replicas if r.machine == machine), key=repr
        )

    def nearest_replica(
        self, product: DataProduct, to_machine: str
    ) -> Optional[Tuple[str, float]]:
        """``(source machine, transfer seconds)`` of the cheapest replica.

        ``None`` when no replica exists or none is reachable.  A replica on
        the target machine itself costs 0.
        """
        volume = self.ontology.volume_of(product.dtype)
        best: Optional[Tuple[str, float]] = None
        for src in self.locations(product):
            if not self.ontology.topology.machines[src].up:
                continue
            t = self.ontology.topology.transfer_time(src, to_machine, volume)
            if t is None:
                continue
            if best is None or t < best[1]:
                best = (src, t)
        return best

    def placements(self) -> frozenset:
        """The full placement set, in the planning domain's format."""
        return frozenset((r.product, r.machine) for r in self._replicas)
