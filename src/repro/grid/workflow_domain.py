"""Grid-workflow planning domain: the paper's motivating application.

State: the set of ``(data product, machine)`` placements.  Operations:

- ``RunProgram(program, machine)`` — valid when the machine satisfies the
  program's hardware preconditions and every input spec matches a product
  present on that machine; postcondition: the outputs appear on the machine
  (with provenance).  Cost: estimated runtime, ``flops / effective_speed`` —
  *heterogeneous*: the same program costs different amounts on different
  machines, so the GA's cost fitness drives placement.
- ``Transfer(product, src, dst)`` — valid when the product is at ``src``,
  absent at ``dst``, both machines are up and connected; postcondition: the
  product is (also) at ``dst``.  Cost: estimated transfer time.

The goal is a set of ``(dtype, machine)`` requirements ("desired results at
the user's site").  Goal fitness gives full credit per requirement when the
typed product is at the required machine and half credit when it exists
anywhere — so producing the result and delivering it are separately visible
to the GA.

A plan in this domain *is* an activity-graph construction: see
:mod:`repro.grid.activity_graph` for the conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Sequence, Tuple

from repro.protocol import PlanningDomain
from repro.grid.data import DataProduct
from repro.grid.ontology import Ontology

__all__ = ["RunProgram", "Transfer", "Placement", "GridWorkflowDomain"]

Placement = Tuple[DataProduct, str]  # (product, machine name)


@dataclass(frozen=True)
class RunProgram:
    """Execute *program* on *machine*, consuming the matched inputs there."""

    program: str
    machine: str
    inputs: tuple  # matched DataProducts (for provenance and the activity graph)
    outputs: tuple  # produced DataProducts

    def __str__(self) -> str:
        return f"run({self.program} @ {self.machine})"


@dataclass(frozen=True)
class Transfer:
    """Copy *product* from *src* to *dst*."""

    product: DataProduct
    src: str
    dst: str

    def __str__(self) -> str:
        return f"xfer({self.product.dtype}: {self.src} -> {self.dst})"


class GridWorkflowDomain(PlanningDomain):
    """Planning over an :class:`Ontology` toward data-product goals.

    Parameters
    ----------
    ontology:
        Programs, data types and the topology.
    initial_placements:
        Where the raw input data starts.
    goal:
        Required ``(dtype, machine)`` pairs.
    max_transfers_per_product:
        Soft cap on fan-out: a product already present at this many machines
        stops generating transfer operations (keeps branching bounded).
    """

    def __init__(
        self,
        ontology: Ontology,
        initial_placements: Sequence[Placement],
        goal: Sequence[Tuple[str, str]],
        max_transfers_per_product: int = 4,
    ) -> None:
        self.ontology = ontology
        self.topology = ontology.topology
        self._initial: FrozenSet[Placement] = frozenset(initial_placements)
        if not goal:
            raise ValueError("goal must name at least one (dtype, machine) requirement")
        for dtype, machine in goal:
            if dtype not in ontology.data_types:
                raise ValueError(f"goal references unknown data type {dtype!r}")
            if machine not in self.topology.machines:
                raise ValueError(f"goal references unknown machine {machine!r}")
        self.goal: Tuple[Tuple[str, str], ...] = tuple(sorted(set(goal)))
        self.max_transfers_per_product = max_transfers_per_product
        self.name = "grid-workflow"
        self._machine_order = self.topology.machine_names()

    # -- PlanningDomain ----------------------------------------------------------

    @property
    def initial_state(self) -> FrozenSet[Placement]:
        return self._initial

    def valid_operations(self, state) -> Sequence[object]:
        ops: list = []
        by_machine: dict = {}
        locations: dict = {}
        for product, machine in state:
            by_machine.setdefault(machine, []).append(product)
            locations.setdefault(product, set()).add(machine)

        # Run operations: sorted program then machine order.
        for pname in self.ontology.program_names():
            program = self.ontology.programs[pname]
            for mname in self._machine_order:
                machine = self.topology.machines[mname]
                if not program.machine_ok(machine):
                    continue
                available = by_machine.get(mname, ())
                matched = program.match_inputs(available)
                if matched is None:
                    continue
                outputs = program.produce(matched)
                # Re-running a program whose outputs are already present is
                # a no-op plan step; prune it to keep branching useful.
                if all((o, mname) in state for o in outputs):
                    continue
                ops.append(
                    RunProgram(program=pname, machine=mname, inputs=matched, outputs=outputs)
                )

        # Transfer operations: every placed product to every other live,
        # reachable machine where it is absent.
        for product in sorted(locations, key=repr):
            at = locations[product]
            if len(at) >= self.max_transfers_per_product:
                continue
            for src in sorted(at):
                if not self.topology.machines[src].up:
                    continue
                for dst in self._machine_order:
                    if dst in at:
                        continue
                    if not self.topology.machines[dst].up:
                        continue
                    if self.topology.bandwidth(src, dst) is None:
                        continue
                    ops.append(Transfer(product=product, src=src, dst=dst))
        return ops

    def apply(self, state, op) -> FrozenSet[Placement]:
        if isinstance(op, RunProgram):
            additions = {(o, op.machine) for o in op.outputs}
            return frozenset(state) | additions
        if isinstance(op, Transfer):
            return frozenset(state) | {(op.product, op.dst)}
        raise TypeError(f"unknown operation type {type(op).__name__}")

    def operation_cost(self, op) -> float:
        if isinstance(op, RunProgram):
            return self.ontology.programs[op.program].runtime_on(
                self.topology.machines[op.machine]
            )
        if isinstance(op, Transfer):
            t = self.topology.transfer_time(
                op.src, op.dst, self.ontology.volume_of(op.product.dtype)
            )
            if t is None:
                raise ValueError(f"no route for {op}")
            return t
        raise TypeError(f"unknown operation type {type(op).__name__}")

    def goal_fitness(self, state) -> float:
        have_at: set = set()
        have_anywhere: set = set()
        for product, machine in state:
            have_at.add((product.dtype, machine))
            have_anywhere.add(product.dtype)
        score = 0.0
        for dtype, machine in self.goal:
            if (dtype, machine) in have_at:
                score += 1.0
            elif dtype in have_anywhere:
                score += 0.5
        return score / len(self.goal)

    def is_goal(self, state) -> bool:
        have_at = {(p.dtype, m) for p, m in state}
        return all(req in have_at for req in self.goal)

    def state_key(self, state) -> Hashable:
        return state

    def describe_operation(self, op) -> str:
        return str(op)
