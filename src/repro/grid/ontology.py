"""The ontology registry — the grid's "meta-information" store.

Collects the three ontologies the paper assumes (data, programs, hardware)
behind one lookup service used by the planner, the broker and the
coordination service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.grid.data import DataType
from repro.grid.programs import ProgramSpec
from repro.grid.resources import GridTopology, Machine

__all__ = ["Ontology"]


class Ontology:
    """Registry of data types and program specs over a grid topology."""

    def __init__(self, topology: GridTopology) -> None:
        self.topology = topology
        self.data_types: Dict[str, DataType] = {}
        self.programs: Dict[str, ProgramSpec] = {}

    # -- registration ----------------------------------------------------------

    def register_data_type(self, dtype: DataType) -> "Ontology":
        if dtype.name in self.data_types:
            raise ValueError(f"duplicate data type {dtype.name!r}")
        self.data_types[dtype.name] = dtype
        return self

    def register_program(self, program: ProgramSpec) -> "Ontology":
        if program.name in self.programs:
            raise ValueError(f"duplicate program {program.name!r}")
        for spec in program.inputs:
            if spec.dtype not in self.data_types:
                raise ValueError(
                    f"program {program.name!r} consumes unknown data type {spec.dtype!r}"
                )
        for spec in program.outputs:
            if spec.dtype not in self.data_types:
                raise ValueError(
                    f"program {program.name!r} produces unknown data type {spec.dtype!r}"
                )
        self.programs[program.name] = program
        return self

    # -- queries ----------------------------------------------------------------

    def program_names(self) -> List[str]:
        return sorted(self.programs)

    def volume_of(self, dtype: str) -> float:
        try:
            return self.data_types[dtype].volume_mb
        except KeyError:
            raise ValueError(f"unknown data type {dtype!r}") from None

    def hosts_for(self, program_name: str) -> List[Machine]:
        """Machines whose hardware satisfies the program's preconditions."""
        try:
            program = self.programs[program_name]
        except KeyError:
            raise ValueError(f"unknown program {program_name!r}") from None
        return [m for m in self.topology.up_machines() if program.machine_ok(m)]

    def producers_of(self, dtype: str) -> List[ProgramSpec]:
        """Programs that can produce *dtype* (multiple versions may exist)."""
        return [
            self.programs[name]
            for name in self.program_names()
            if any(o.dtype == dtype for o in self.programs[name].outputs)
        ]
