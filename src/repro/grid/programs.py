"""Program ontology: pre/postconditions and resource requirements.

A :class:`ProgramSpec` is the paper's "description of each program": input
data types with constraints (pre-conditions), produced outputs
(post-conditions), and the physical resources required to execute (memory,
disk, and a compute size in Mflop that heterogeneous machine speeds divide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.grid.data import DataProduct
from repro.grid.resources import Machine

__all__ = ["InputSpec", "OutputSpec", "ProgramSpec"]


@dataclass(frozen=True)
class InputSpec:
    """One required input.

    Attributes
    ----------
    dtype:
        Required data type name.
    min_attrs:
        Lower bounds on numeric attributes, e.g. ``(("resolution", 512),)``
        — "program A could require a resolution higher than x".
    requires_history / forbids_history:
        Program names that must / must not appear in the input's genealogy
        — "B could do a filtering in the Fourier domain that would cancel
        the effect of the histogram equalization".
    """

    dtype: str
    min_attrs: tuple = ()
    requires_history: tuple = ()
    forbids_history: tuple = ()

    def accepts(self, product: DataProduct) -> bool:
        if product.dtype != self.dtype:
            return False
        for key, minimum in self.min_attrs:
            value = product.attr(key)
            if value is None or value < minimum:
                return False
        for prog in self.requires_history:
            if not product.processed_by(prog):
                return False
        for prog in self.forbids_history:
            if product.processed_by(prog):
                return False
        return True


@dataclass(frozen=True)
class OutputSpec:
    """One produced output: type plus attribute overrides."""

    dtype: str
    attrs: tuple = ()


@dataclass(frozen=True)
class ProgramSpec:
    """A runnable program in the grid ontology.

    Attributes
    ----------
    name:
        Unique program name.
    inputs / outputs:
        Pre- and postconditions on data.
    flops:
        Compute size in Mflop; runtime on machine ``m`` is
        ``flops / m.effective_speed``.
    min_memory_gb / min_disk_tb:
        Physical resource preconditions.
    params:
        Fixed parameters recorded into output provenance.
    """

    name: str
    inputs: tuple
    outputs: tuple
    flops: float = 1000.0
    min_memory_gb: float = 0.0
    min_disk_tb: float = 0.0
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "params", tuple(self.params))
        if self.flops <= 0:
            raise ValueError(f"program {self.name!r}: flops must be positive")
        if not self.outputs:
            raise ValueError(f"program {self.name!r}: must produce at least one output")

    # -- preconditions --------------------------------------------------------

    def machine_ok(self, machine: Machine) -> bool:
        """Hardware precondition: the machine can host this program."""
        return (
            machine.up
            and machine.memory_gb >= self.min_memory_gb
            and machine.disk_tb >= self.min_disk_tb
        )

    def match_inputs(self, available: Sequence[DataProduct]) -> Optional[tuple]:
        """Greedy matching of available products to input specs.

        Returns one matched product per input (first acceptable, in sorted
        product order, each product used at most once), or ``None`` when
        some input cannot be satisfied.  Deterministic, so grounding the
        planning domain is stable.
        """
        pool = sorted(available, key=repr)
        chosen = []
        used: set = set()
        for spec in self.inputs:
            found = None
            for idx, product in enumerate(pool):
                if idx in used:
                    continue
                if spec.accepts(product):
                    found = idx
                    break
            if found is None:
                return None
            used.add(found)
            chosen.append(pool[found])
        return tuple(chosen)

    # -- postconditions --------------------------------------------------------

    def produce(self, matched_inputs: Sequence[DataProduct]) -> tuple:
        """The output products, with provenance derived from the inputs.

        Output attributes start from the first input's attributes (or empty
        when the program is a source) and apply each output's overrides.
        """
        base = matched_inputs[0] if matched_inputs else DataProduct(dtype="__void__")
        out = []
        for spec in self.outputs:
            product = base.derived(
                dtype=spec.dtype,
                program=self.name,
                params=dict(self.params),
                attrs=dict(base.attrs) | dict(spec.attrs) if matched_inputs else dict(spec.attrs),
            )
            out.append(product)
        return tuple(out)

    def runtime_on(self, machine: Machine) -> float:
        """Estimated execution seconds on *machine* (the ETC entry)."""
        return self.flops / machine.effective_speed
