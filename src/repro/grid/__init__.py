"""Simulated heterogeneous grid: ontologies, workflows, societal services."""

from repro.grid.activity_graph import Activity, ActivityGraph, plan_to_activity_graph, to_dot
from repro.grid.broker import (
    Offer,
    Placement,
    PlacementError,
    ResourceBroker,
    RetryPolicy,
)
from repro.grid.catalog import ReplicaCatalog, StorageFullError
from repro.grid.coordination import (
    Attempt,
    CoordinationReport,
    CoordinationService,
    ga_grid_planner,
    greedy_grid_planner,
)
from repro.grid.data import DataProduct, DataType, ProvenanceStep
from repro.grid.generators import random_grid, random_pipeline
from repro.grid.ontology import Ontology
from repro.grid.programs import InputSpec, OutputSpec, ProgramSpec
from repro.grid.resources import GridTopology, Link, Machine, Site
from repro.grid.scenarios import imaging_pipeline, small_heterogeneous_grid
from repro.grid.simulator import ExecutionResult, GridEvent, GridSimulator, TaskRecord
from repro.grid.workflow_domain import GridWorkflowDomain, RunProgram, Transfer

__all__ = [
    "Activity", "ActivityGraph", "Attempt", "CoordinationReport", "CoordinationService",
    "DataProduct", "DataType", "ExecutionResult", "GridEvent", "GridSimulator",
    "GridTopology", "GridWorkflowDomain", "InputSpec", "Link", "Machine", "Offer",
    "Ontology", "OutputSpec", "Placement", "PlacementError", "ProgramSpec",
    "ProvenanceStep", "ReplicaCatalog", "ResourceBroker", "RetryPolicy",
    "StorageFullError",
    "RunProgram", "Site", "TaskRecord", "Transfer", "ga_grid_planner",
    "greedy_grid_planner",
    "imaging_pipeline", "plan_to_activity_graph", "random_grid", "random_pipeline",
    "small_heterogeneous_grid", "to_dot",
]
