"""Discrete-event simulator for activity-graph execution on the grid.

This is the substitution for a real grid deployment (DESIGN.md §2): a
classic event-queue simulator with, per machine, one compute server and one
network interface, both FIFO.  Program runs occupy the compute server of
their machine for ``flops / effective_speed`` seconds (speed frozen at task
start); transfers occupy the *source* machine's NIC for the topology's
transfer time, concurrently with computation.

Dynamic events — machine failure, recovery, and load changes — are injected
on a schedule.  A failure kills the running and queued tasks of that machine
and marks it down; whether the simulation aborts (so a coordination service
can replan) or keeps driving the unaffected part of the DAG is the caller's
choice.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.grid.activity_graph import Activity, ActivityGraph
from repro.grid.ontology import Ontology
from repro.grid.resources import GridTopology
from repro.grid.workflow_domain import RunProgram, Transfer
from repro.obs.events import FaultInjected, SimulationComplete
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer

__all__ = [
    "GridEvent",
    "TaskRecord",
    "ExecutionResult",
    "GridSimulator",
    "MACHINE_EVENT_KINDS",
    "LINK_EVENT_KINDS",
]


#: Machine-level event kinds (``machine`` names a machine, ``peer`` unused).
MACHINE_EVENT_KINDS = ("fail", "restore", "load")
#: Link-level event kinds (``machine``/``peer`` name the two sites).
LINK_EVENT_KINDS = ("link-degrade", "partition", "link-restore")


@dataclass(frozen=True)
class GridEvent:
    """A scheduled change to the grid.

    Machine events: ``kind`` is ``"fail"``, ``"restore"`` or ``"load"``
    (``value`` is the new load factor for ``"load"``).  Link events:
    ``kind`` is ``"link-degrade"`` (``value`` is the bandwidth divisor),
    ``"partition"`` or ``"link-restore"``, with ``machine``/``peer``
    naming the two endpoint sites.
    """

    time: float
    kind: str
    machine: str
    value: float = 0.0
    peer: str = ""

    def __post_init__(self) -> None:
        if self.kind not in MACHINE_EVENT_KINDS + LINK_EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.kind in LINK_EVENT_KINDS and not self.peer:
            raise ValueError(f"{self.kind} events need a peer site")

    @property
    def target(self) -> str:
        """The machine, or ``"siteA--siteB"`` for link events."""
        return f"{self.machine}--{self.peer}" if self.peer else self.machine


@dataclass
class TaskRecord:
    """Execution record of one activity."""

    activity_id: int
    description: str
    machine: str
    start: float
    end: float
    status: str  # "done" | "failed" | "cancelled"


@dataclass
class ExecutionResult:
    """Outcome of simulating an activity graph.

    ``completed`` holds activity ids that finished; ``placements`` is the
    set of ``(product, machine)`` placements realised (initial ∪ produced by
    completed activities) — exactly the observed state replanning restarts
    from.
    """

    trace: List[TaskRecord]
    makespan: float
    completed: Set[int]
    failed: Set[int]
    placements: frozenset
    success: bool
    aborted_at: Optional[float] = None

    def records_for(self, machine: str) -> List[TaskRecord]:
        return [r for r in self.trace if r.machine == machine]


def _check_monotone(events: Sequence[GridEvent]) -> Tuple[GridEvent, ...]:
    """Validate that *events* arrive in non-decreasing time order.

    The simulator used to sort injected timelines silently, which masked
    caller bugs (a fault plan assembled out of order replays differently
    than the caller believes).  Out-of-order events now raise immediately,
    naming the offending pair.
    """
    out = tuple(events)
    for i in range(1, len(out)):
        if out[i].time < out[i - 1].time:
            raise ValueError(
                f"grid events must be in non-decreasing time order: event {i} "
                f"({out[i].kind} {out[i].target!r} at t={out[i].time:g}) precedes "
                f"event {i - 1} ({out[i - 1].kind} {out[i - 1].target!r} at "
                f"t={out[i - 1].time:g})"
            )
    return out


class GridSimulator:
    """Event-driven executor of activity graphs over a mutable topology.

    The simulator mutates its :class:`GridTopology` (loads, failures), so a
    fresh topology copy — or sequential reuse with care — is expected per
    experiment.

    Each :meth:`execute` call reports through the observability layer: a
    ``sim-complete`` event on *tracer* plus ``sim_execute`` timer and
    ``sim_tasks_done`` / ``sim_tasks_failed`` counters on *metrics* (both
    default to the ambient pair).
    """

    def __init__(
        self,
        ontology: Ontology,
        events: Sequence[GridEvent] = (),
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.ontology = ontology
        self.topology: GridTopology = ontology.topology
        self.events = _check_monotone(events)
        self.tracer = tracer if tracer is not None else default_tracer()
        self.metrics = metrics if metrics is not None else default_metrics()

    # -- durations ---------------------------------------------------------------

    def _duration(self, activity: Activity) -> float:
        op = activity.op
        if isinstance(op, RunProgram):
            machine = self.topology.machines[op.machine]
            return self.ontology.programs[op.program].runtime_on(machine)
        if isinstance(op, Transfer):
            t = self.topology.transfer_time(
                op.src, op.dst, self.ontology.volume_of(op.product.dtype)
            )
            if t is None:
                raise ValueError(f"no route for {op}")
            return t
        raise TypeError(f"cannot simulate operation {type(op).__name__}")

    @staticmethod
    def _server_of(activity: Activity) -> Tuple[str, str]:
        """(machine, server) the activity occupies: compute or NIC."""
        op = activity.op
        if isinstance(op, RunProgram):
            return op.machine, "cpu"
        if isinstance(op, Transfer):
            return op.src, "nic"
        raise TypeError(f"cannot simulate operation {type(op).__name__}")

    # -- main loop ---------------------------------------------------------------

    def execute(
        self,
        graph: ActivityGraph,
        initial_placements: frozenset,
        abort_on_failure: bool = False,
    ) -> ExecutionResult:
        """Simulate *graph*; see class docstring for the failure contract."""
        wall0 = time.perf_counter()
        remaining_deps: Dict[int, int] = {
            a.id: len(graph.predecessors(a.id)) for a in graph.activities()
        }
        queues: Dict[Tuple[str, str], List[int]] = {}
        busy: Dict[Tuple[str, str], Optional[int]] = {}
        started_at: Dict[int, float] = {}
        trace: List[TaskRecord] = []
        completed: Set[int] = set()
        failed: Set[int] = set()
        placements = set(initial_placements)

        heap: List[Tuple[float, int, str, object]] = []
        seq = itertools.count()

        def push(time: float, kind: str, payload: object) -> None:
            heapq.heappush(heap, (time, next(seq), kind, payload))

        for ev in self.events:
            push(ev.time, "grid-event", ev)

        def enqueue(activity: Activity, now: float) -> None:
            server = self._server_of(activity)
            machine = self.topology.machines[server[0]]
            if not machine.up:
                fail(activity.id, now, "machine down at dispatch")
                return
            queues.setdefault(server, []).append(activity.id)
            maybe_start(server, now)

        def maybe_start(server: Tuple[str, str], now: float) -> None:
            if busy.get(server) is not None:
                return
            queue = queues.get(server, [])
            while queue:
                aid = queue.pop(0)
                activity = graph.activity(aid)
                try:
                    duration = self._duration(activity)
                except ValueError:
                    # A partition can sever a transfer's route between
                    # enqueue and start; that's a task failure, not a
                    # simulator crash.
                    fail(aid, now, "no route at start")
                    continue
                busy[server] = aid
                started_at[aid] = now
                push(now + duration, "finish", aid)
                return

        faults_applied = 0

        def apply_topology_change(ev: GridEvent) -> None:
            if ev.kind == "fail":
                self.topology.fail_machine(ev.machine)
            elif ev.kind == "restore":
                self.topology.restore_machine(ev.machine)
            elif ev.kind == "load":
                self.topology.set_load(ev.machine, ev.value)
            elif ev.kind == "link-degrade":
                self.topology.degrade_link(ev.machine, ev.peer, ev.value)
            elif ev.kind == "partition":
                self.topology.partition_link(ev.machine, ev.peer)
            elif ev.kind == "link-restore":
                self.topology.restore_link(ev.machine, ev.peer)

        def note_fault(ev: GridEvent, t: float) -> None:
            nonlocal faults_applied
            faults_applied += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    FaultInjected(
                        scope="sim", at=t, fault=ev.kind, target=ev.target, value=ev.value
                    )
                )

        def fail(aid: int, now: float, reason: str) -> None:
            activity = graph.activity(aid)
            failed.add(aid)
            trace.append(
                TaskRecord(
                    activity_id=aid,
                    description=f"{activity.op} ({reason})",
                    machine=self._server_of(activity)[0],
                    start=started_at.get(aid, now),
                    end=now,
                    status="failed",
                )
            )

        # Seed: activities with no unfinished dependencies.
        for activity in graph.topological_order():
            if remaining_deps[activity.id] == 0:
                enqueue(activity, 0.0)

        now = 0.0
        aborted_at: Optional[float] = None
        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "finish":
                aid = payload
                if aid in failed:
                    continue  # killed by a failure event while "running"
                activity = graph.activity(aid)
                server = self._server_of(activity)
                busy[server] = None
                completed.add(aid)
                placements.update(activity.produces)
                trace.append(
                    TaskRecord(
                        activity_id=aid,
                        description=str(activity.op),
                        machine=server[0],
                        start=started_at[aid],
                        end=now,
                        status="done",
                    )
                )
                for succ in graph.graph.successors(aid):
                    remaining_deps[succ] -= 1
                    if remaining_deps[succ] == 0:
                        enqueue(graph.activity(succ), now)
                maybe_start(server, now)
            elif kind == "grid-event":
                ev = payload
                apply_topology_change(ev)
                note_fault(ev, now)
                if ev.kind == "fail":
                    # Kill running + queued work on every server of the machine.
                    for server in list(busy):
                        if server[0] != ev.machine:
                            continue
                        aid = busy[server]
                        if aid is not None:
                            fail(aid, now, f"machine {ev.machine} failed")
                            busy[server] = None
                        for queued in queues.get(server, []):
                            fail(queued, now, f"machine {ev.machine} failed")
                        queues[server] = []
                    if abort_on_failure:
                        aborted_at = now
                        # Apply every other grid event scheduled for this
                        # same instant before aborting: the caller filters
                        # replay events strictly after the abort time, so
                        # simultaneous events would otherwise be lost.
                        while heap and heap[0][0] <= now:
                            _t, _, k2, p2 = heapq.heappop(heap)
                            if k2 != "grid-event":
                                continue
                            apply_topology_change(p2)
                            note_fault(p2, now)
                        break

        success = len(completed) == len(graph)
        makespan = max((r.end for r in trace if r.status == "done"), default=0.0)
        seconds = time.perf_counter() - wall0
        if self.metrics is not None:
            self.metrics.timer("sim_execute").record(seconds)
            self.metrics.counter("sim_tasks_done").add(len(completed))
            self.metrics.counter("sim_tasks_failed").add(len(failed))
            if faults_applied:
                self.metrics.counter("faults_injected").add(faults_applied)
        if self.tracer.enabled:
            self.tracer.emit(
                SimulationComplete(
                    makespan=makespan,
                    tasks_done=len(completed),
                    tasks_failed=len(failed),
                    success=success,
                    seconds=seconds,
                )
            )
        return ExecutionResult(
            trace=trace,
            makespan=makespan,
            completed=completed,
            failed=failed,
            placements=frozenset(placements),
            success=success,
            aborted_at=aborted_at,
        )
