"""Random grid and workflow generators for tests and benchmarks.

Produce random — but *solvable by construction* — grid topologies and
pipeline ontologies: every generated stage is hostable by at least one live
machine, all sites are connected, and the raw input is placed somewhere
real.  Property-based tests sweep seeds through these generators and assert
the whole stack (plan → activity graph → simulation) holds up.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.data import DataProduct, DataType
from repro.grid.ontology import Ontology
from repro.grid.programs import InputSpec, OutputSpec, ProgramSpec
from repro.grid.resources import GridTopology, Link, Machine, Site
from repro.grid.workflow_domain import GridWorkflowDomain

__all__ = ["random_grid", "random_pipeline"]

# Memory tiers machines/programs draw from; programs only ever require a
# tier that some machine provides (solvability by construction).
_MEMORY_TIERS = (4.0, 8.0, 16.0, 32.0)


def random_grid(
    rng: np.random.Generator,
    n_sites: int = 3,
    machines_per_site: int = 2,
) -> GridTopology:
    """A connected random topology with heterogeneous speeds and links."""
    if n_sites < 1 or machines_per_site < 1:
        raise ValueError("need at least one site and one machine per site")
    topo = GridTopology()
    for s in range(n_sites):
        topo.add_site(Site(f"site{s}"))
        for m in range(machines_per_site):
            topo.add_machine(
                Machine(
                    name=f"m{s}-{m}",
                    site=f"site{s}",
                    speed=float(rng.uniform(500, 8000)),
                    memory_gb=float(rng.choice(_MEMORY_TIERS)),
                    disk_tb=float(rng.uniform(1, 32)),
                )
            )
    # Ring of links guarantees connectivity; extra chords at random.
    for s in range(n_sites - 1):
        topo.add_link(
            Link(
                f"site{s}",
                f"site{s + 1}",
                bandwidth_mbps=float(rng.uniform(100, 10_000)),
                latency_s=float(rng.uniform(0.0, 0.05)),
            )
        )
    if n_sites > 2 and rng.random() < 0.5:
        topo.add_link(
            Link(
                "site0",
                f"site{n_sites - 1}",
                bandwidth_mbps=float(rng.uniform(100, 10_000)),
            )
        )
    return topo


def random_pipeline(
    rng: np.random.Generator,
    n_stages: int = 4,
    n_sites: int = 3,
    machines_per_site: int = 2,
    alternative_versions: bool = True,
) -> Tuple[Ontology, GridWorkflowDomain]:
    """A random linear pipeline over a random grid, solvable by construction.

    ``dt0 --stage0--> dt1 --stage1--> ... --> dt[n]``; each stage may exist
    in two versions with different costs (the service-grid "multiple
    versions" scenario).  The raw input starts at a random machine; the
    goal is the final data type delivered to a random machine.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    topo = random_grid(rng, n_sites=n_sites, machines_per_site=machines_per_site)
    onto = Ontology(topo)

    # Memory requirements drawn only from tiers some machine actually has.
    available_tiers = sorted({m.memory_gb for m in topo.machines.values()})

    for i in range(n_stages + 1):
        onto.register_data_type(
            DataType(f"dt{i}", volume_mb=float(rng.uniform(10, 2000)))
        )
    for i in range(n_stages):
        n_versions = 2 if alternative_versions and rng.random() < 0.5 else 1
        for v in range(n_versions):
            name = f"stage{i}" if v == 0 else f"stage{i}-alt"
            onto.register_program(
                ProgramSpec(
                    name=name,
                    inputs=(InputSpec(dtype=f"dt{i}"),),
                    outputs=(OutputSpec(dtype=f"dt{i + 1}"),),
                    flops=float(rng.uniform(500, 20_000)),
                    min_memory_gb=float(
                        available_tiers[int(rng.integers(0, len(available_tiers)))]
                    ),
                )
            )

    machines = topo.machine_names()
    src = machines[int(rng.integers(0, len(machines)))]
    dst = machines[int(rng.integers(0, len(machines)))]
    raw = DataProduct.make(f"dt0", attrs={"seed": int(rng.integers(0, 1 << 30))})
    domain = GridWorkflowDomain(
        ontology=onto,
        initial_placements=[(raw, src)],
        goal=[(f"dt{n_stages}", dst)],
        max_transfers_per_product=3,
    )
    return onto, domain
