"""Coordination service with dynamic replanning — the paper's workflow story.

The coordination service takes a goal, obtains a plan (from any planner —
the GA planner or a classical baseline), compiles it to an activity graph,
and supervises execution on the simulator.  When the grid changes under it —
a machine fails or becomes overloaded mid-execution — it observes the
placements achieved so far, rebuilds the planning domain from that observed
state (over the *changed* topology), replans, and resumes.  "A static script
is incapable of taking advantage of the full range of alternatives to carry
out a computation, while planning does."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.grid.activity_graph import ActivityGraph, plan_to_activity_graph
from repro.grid.ontology import Ontology
from repro.grid.simulator import ExecutionResult, GridEvent, GridSimulator
from repro.grid.workflow_domain import GridWorkflowDomain
from repro.obs.events import ReplanTriggered
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer

__all__ = [
    "Attempt",
    "CoordinationReport",
    "CoordinationService",
    "greedy_grid_planner",
    "ga_grid_planner",
]

# A planner is any callable from domain to an operation sequence (or None).
Planner = Callable[[GridWorkflowDomain], Optional[Sequence[object]]]


@dataclass
class Attempt:
    """One plan-and-execute round."""

    plan: tuple
    graph: ActivityGraph
    result: ExecutionResult


@dataclass
class CoordinationReport:
    """End-to-end outcome across all replanning rounds."""

    attempts: List[Attempt]
    success: bool
    replans: int
    final_placements: frozenset
    total_makespan: float
    planning_seconds: float

    @property
    def total_activities_run(self) -> int:
        return sum(len(a.result.completed) for a in self.attempts)


def greedy_grid_planner(max_expansions: int = 200_000) -> Planner:
    """A fast deterministic planner: greedy best-first on the goal gap.

    Useful both as a baseline against the GA planner and as the quick
    replanner when re-planning time *is* a concern (the paper: "the time
    required by the planning algorithm is of concern and may limit the
    applicability").
    """

    def plan(domain: GridWorkflowDomain) -> Optional[Sequence[object]]:
        from repro.planning.search import goal_gap, greedy_best_first

        result = greedy_best_first(
            domain, goal_gap(domain, scale=100.0), max_expansions=max_expansions
        )
        return result.plan

    return plan


def ga_grid_planner(
    config=None,
    phases: int = 3,
    seed: int = 0,
) -> Planner:
    """The paper's planner as a replanner: multi-phase GA from the current state.

    Each invocation restarts the multi-phase GA on the domain the
    coordination service rebuilt from the *observed* placements over the
    *changed* topology — the phase mechanism doubles as the recovery
    primitive ("plans must be cheap to re-generate").  The seed is fixed,
    so a replanning sequence is deterministic given the fault timeline.
    """

    def plan(domain: GridWorkflowDomain) -> Optional[Sequence[object]]:
        from repro.core import GAConfig, GAPlanner

        cfg = config or GAConfig(
            population_size=100, generations=60, max_len=20, init_length=8
        )
        outcome = GAPlanner(domain, cfg, multiphase=phases, seed=seed).solve()
        return outcome.plan if outcome.solved else None

    return plan


class CoordinationService:
    """Supervises plan execution and replans on grid changes."""

    def __init__(
        self,
        ontology: Ontology,
        planner: Planner,
        max_replans: int = 3,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_replans < 0:
            raise ValueError("max_replans must be non-negative")
        self.ontology = ontology
        self.planner = planner
        self.max_replans = max_replans
        self.tracer = tracer if tracer is not None else default_tracer()
        self.metrics = metrics if metrics is not None else default_metrics()

    def run(
        self,
        domain: GridWorkflowDomain,
        events: Sequence[GridEvent] = (),
    ) -> CoordinationReport:
        """Plan, execute, and replan until the goal is met or budget exhausted."""
        placements = domain.initial_state
        pending_events = sorted(events, key=lambda e: e.time)
        attempts: List[Attempt] = []
        clock = 0.0
        planning_s = 0.0

        for round_index in range(self.max_replans + 1):
            # Rebuild the domain from the observed state over the (possibly
            # mutated) topology, then plan.
            current = GridWorkflowDomain(
                ontology=self.ontology,
                initial_placements=placements,
                goal=domain.goal,
                max_transfers_per_product=domain.max_transfers_per_product,
            )
            if current.is_goal(placements):
                break
            t0 = time.perf_counter()
            plan = self.planner(current)
            planning_s += time.perf_counter() - t0
            if plan is None:
                break  # no plan exists from here; give up
            graph = plan_to_activity_graph(current, plan)
            # Events are absolute; shift them into this round's local clock.
            # Strictly after the clock: an event *at* the abort instant was
            # already applied to the (shared, mutated) topology last round.
            local_events = [
                GridEvent(e.time - clock, e.kind, e.machine, e.value, e.peer)
                for e in pending_events
                if e.time > clock
            ]
            sim = GridSimulator(
                self.ontology, events=local_events, tracer=self.tracer, metrics=self.metrics
            )
            result = sim.execute(graph, placements, abort_on_failure=True)
            attempts.append(Attempt(plan=tuple(plan), graph=graph, result=result))
            placements = result.placements
            if result.aborted_at is not None:
                clock += result.aborted_at
                # Grid changed under us: replan from the observed state.
                if self.metrics is not None:
                    self.metrics.counter("replans").add(1)
                if self.tracer.enabled:
                    self.tracer.emit(
                        ReplanTriggered(
                            scope="coordination",
                            round_index=round_index,
                            at=clock,
                            completed=len(result.completed),
                            reason="grid event aborted execution",
                        )
                    )
                continue
            clock += result.makespan
            break

        success = domain.is_goal(placements)
        return CoordinationReport(
            attempts=attempts,
            success=success,
            replans=max(0, len(attempts) - 1),
            final_placements=placements,
            total_makespan=clock,
            planning_seconds=planning_s,
        )
