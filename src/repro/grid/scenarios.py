"""Ready-made grid scenarios for examples, tests and benchmarks.

The flagship scenario is the paper's own footnote: a 2D imaging pipeline
(camera data → histogram equalisation → filtering → Fourier transform →
analysis) whose stage preconditions inspect data attributes and genealogy,
deployed over a small heterogeneous grid of three sites.
"""

from __future__ import annotations

from typing import Tuple

from repro.grid.data import DataProduct, DataType
from repro.grid.ontology import Ontology
from repro.grid.programs import InputSpec, OutputSpec, ProgramSpec
from repro.grid.resources import GridTopology, Link, Machine, Site
from repro.grid.workflow_domain import GridWorkflowDomain

__all__ = ["imaging_pipeline", "small_heterogeneous_grid"]


def small_heterogeneous_grid() -> GridTopology:
    """Three sites, five machines, heterogeneous speeds and links."""
    topo = GridTopology()
    topo.add_site(Site("lab", "the user's laboratory"))
    topo.add_site(Site("campus", "campus cluster"))
    topo.add_site(Site("hpc", "remote HPC centre"))
    topo.add_machine(Machine("lab-ws", site="lab", speed=500, memory_gb=8, disk_tb=1))
    topo.add_machine(Machine("campus-a", site="campus", speed=2000, memory_gb=16, disk_tb=4))
    topo.add_machine(Machine("campus-b", site="campus", speed=2000, memory_gb=16, disk_tb=4))
    topo.add_machine(Machine("hpc-1", site="hpc", speed=8000, memory_gb=64, disk_tb=32))
    topo.add_machine(Machine("hpc-2", site="hpc", speed=8000, memory_gb=64, disk_tb=32))
    topo.add_link(Link("lab", "campus", bandwidth_mbps=1000, latency_s=0.01))
    topo.add_link(Link("campus", "hpc", bandwidth_mbps=10000, latency_s=0.02))
    topo.add_link(Link("lab", "hpc", bandwidth_mbps=100, latency_s=0.05))
    return topo


def imaging_pipeline() -> Tuple[Ontology, GridWorkflowDomain]:
    """The footnote pipeline as an ontology + planning domain.

    Raw camera frames live on the lab workstation; the desired analysis
    report must end up back at the lab.  The analysis stage requires
    Fourier-transformed data that was histogram-equalised and *never*
    low-pass filtered — exercising genealogy preconditions.
    """
    topo = small_heterogeneous_grid()
    onto = Ontology(topo)
    onto.register_data_type(DataType("raw-frames", format="tiff", volume_mb=2000))
    onto.register_data_type(DataType("equalized", format="tiff", volume_mb=2000))
    onto.register_data_type(DataType("filtered", format="tiff", volume_mb=1500))
    onto.register_data_type(DataType("spectrum", format="hdf5", volume_mb=800))
    onto.register_data_type(DataType("report", format="pdf", volume_mb=5))

    onto.register_program(
        ProgramSpec(
            name="histeq",
            inputs=(InputSpec(dtype="raw-frames", min_attrs=(("resolution", 512),)),),
            outputs=(OutputSpec(dtype="equalized"),),
            flops=4_000,
            min_memory_gb=4,
        )
    )
    # Two versions of filtering exist (service grids offer "multiple
    # versions of services"); the low-pass one poisons the genealogy.
    onto.register_program(
        ProgramSpec(
            name="highpass",
            inputs=(InputSpec(dtype="equalized"),),
            outputs=(OutputSpec(dtype="filtered"),),
            flops=6_000,
            min_memory_gb=8,
        )
    )
    onto.register_program(
        ProgramSpec(
            name="lowpass",
            inputs=(InputSpec(dtype="equalized"),),
            outputs=(OutputSpec(dtype="filtered"),),
            flops=3_000,
            min_memory_gb=8,
        )
    )
    onto.register_program(
        ProgramSpec(
            name="fft",
            inputs=(InputSpec(dtype="filtered", requires_history=("histeq",)),),
            outputs=(OutputSpec(dtype="spectrum"),),
            flops=20_000,
            min_memory_gb=16,
        )
    )
    onto.register_program(
        ProgramSpec(
            name="analyze",
            inputs=(
                InputSpec(
                    dtype="spectrum",
                    requires_history=("histeq", "fft"),
                    forbids_history=("lowpass",),
                ),
            ),
            outputs=(OutputSpec(dtype="report"),),
            flops=10_000,
            min_memory_gb=16,
        )
    )

    raw = DataProduct.make("raw-frames", attrs={"resolution": 1024})
    domain = GridWorkflowDomain(
        ontology=onto,
        initial_placements=[(raw, "lab-ws")],
        goal=[("report", "lab-ws")],
        max_transfers_per_product=3,
    )
    return onto, domain
