"""Configuration for the GA planner.

Defaults follow the paper's Tables 1 and 3: population 200, 500 generations,
crossover rate 0.9, per-gene mutation rate 0.01, tournament selection of
size 2, goal-fitness weight 0.9 and cost-fitness weight 0.1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "GAConfig",
    "MultiPhaseConfig",
    "PortfolioSpec",
    "StrategySpec",
    "CROSSOVER_KINDS",
    "STRATEGY_KINDS",
]

CROSSOVER_KINDS = ("random", "state-aware", "mixed")

STRATEGY_KINDS = ("ga", "search")


@dataclass(frozen=True)
class GAConfig:
    """Parameters of a single-phase GA run.

    Attributes
    ----------
    population_size:
        Number of individuals per generation.
    generations:
        Maximum generations for the run (one phase, in multi-phase mode).
    crossover_rate:
        Probability that a selected pair undergoes crossover; otherwise the
        parents are copied unchanged into the next generation.
    mutation_rate:
        Per-gene probability of replacing the gene with a fresh uniform
        float (paper, Section 3.4.3).
    crossover:
        One of ``"random"``, ``"state-aware"``, ``"mixed"`` (Section 3.4.2).
    tournament_size:
        Individuals drawn per tournament; the paper uses 2.
    goal_weight / cost_weight:
        Weights of the goal and cost fitness components (equation 4).  Must
        sum to 1.
    max_len:
        MaxLen, the hard cap on genome length.  ``None`` means the domain
        driver must supply it.
    init_length:
        Initial genome length: an int, or an inclusive ``(lo, hi)`` range
        sampled uniformly per individual.
    truncate_at_goal:
        Stop decoding a genome once the goal state is reached, so trailing
        genes cannot undo a solution.  See DESIGN.md §1 for the rationale.
    stop_on_goal:
        End the run as soon as some evaluated individual solves the problem
        (used for single-phase runs; phases of the multi-phase GA run their
        full generation budget by default, matching the paper's generation
        accounting).
    elitism:
        Number of best individuals copied unchanged into the next
        generation.  The paper uses none (0); exposed for ablations.
    decode_engine:
        Evaluate through the incremental decode engine (transition
        memoisation, dirty-prefix re-decode, phenotype dedup — DESIGN.md
        §9).  Bit-identical results either way; the naive path exists so
        ablations can measure the engine itself.
    batched:
        Run the generation step on the structure-of-arrays population
        engine (DESIGN.md §11): genomes packed into one contiguous arena,
        batched selection/mutation/crossover, and (with the process-pool
        evaluator) zero-copy shared-memory dispatch.  The RNG draws are
        replayed exactly, so trajectories are bit-identical to the
        list-of-individuals path either way; the object path exists for
        ablations and as the reference implementation.
    vector_decode:
        Decode whole populations in numpy against the domain's array
        kernel (DESIGN.md §12).  ``None`` (the default) auto-enables the
        vector path when the domain exposes a kernel
        (``domain.kernel() is not None``) and falls back to the object
        decode engine otherwise; ``True`` demands it (evaluation raises if
        the domain has no kernel); ``False`` forces the object path.
        Results are bit-identical either way.  Requires ``decode_engine``
        and ``batched`` (the vector path rides the buffer pipeline and
        replaces the engine, not the naive decoder).
    decode_backend:
        Which walk implementation the vector path uses (DESIGN.md §16).
        ``None`` (the default) auto-probes numba and runs the fused
        compiled per-row backend when it is importable, the numpy
        :class:`~repro.core.vector_decode.VectorDecoder` otherwise;
        ``"numpy"`` forces the numpy walk; ``"fused"`` demands the
        compiled backend (decoder construction raises when numba is
        missing).  Results are bit-identical across backends.  Only
        meaningful on the vector path, so it must stay ``None`` when
        ``vector_decode=False``.
    """

    population_size: int = 200
    generations: int = 500
    crossover_rate: float = 0.9
    mutation_rate: float = 0.01
    crossover: str = "random"
    tournament_size: int = 2
    goal_weight: float = 0.9
    cost_weight: float = 0.1
    max_len: Optional[int] = None
    init_length: Union[int, Tuple[int, int]] = 32
    truncate_at_goal: bool = True
    stop_on_goal: bool = True
    elitism: int = 0
    decode_engine: bool = True
    batched: bool = True
    vector_decode: Optional[bool] = None
    decode_backend: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate field ranges and cross-field invariants."""
        if self.population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {self.population_size}")
        if self.generations < 1:
            raise ValueError(f"generations must be >= 1, got {self.generations}")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError(f"crossover_rate must be in [0, 1], got {self.crossover_rate}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {self.mutation_rate}")
        if self.crossover not in CROSSOVER_KINDS:
            raise ValueError(
                f"crossover must be one of {CROSSOVER_KINDS}, got {self.crossover!r}"
            )
        if self.tournament_size < 1:
            raise ValueError(f"tournament_size must be >= 1, got {self.tournament_size}")
        if abs(self.goal_weight + self.cost_weight - 1.0) > 1e-9:
            raise ValueError(
                f"goal_weight + cost_weight must equal 1, got "
                f"{self.goal_weight} + {self.cost_weight}"
            )
        if min(self.goal_weight, self.cost_weight) < 0:
            raise ValueError("fitness weights must be non-negative")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {self.max_len}")
        if isinstance(self.init_length, tuple):
            lo, hi = self.init_length
            if not (1 <= lo <= hi):
                raise ValueError(f"init_length range must satisfy 1 <= lo <= hi, got {self.init_length}")
        elif self.init_length < 1:
            raise ValueError(f"init_length must be >= 1, got {self.init_length}")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError(
                f"elitism must be in [0, population_size), got {self.elitism}"
            )
        if self.max_len is not None:
            init_hi = self.init_length[1] if isinstance(self.init_length, tuple) else self.init_length
            if init_hi > self.max_len:
                raise ValueError(
                    f"init_length {self.init_length} exceeds max_len {self.max_len}"
                )
        if self.vector_decode:
            if not self.decode_engine:
                raise ValueError(
                    "vector_decode=True requires decode_engine=True: the vector "
                    "path replaces the decode engine, not the naive decoder "
                    "(set vector_decode=False for a naive-path ablation)"
                )
            if not self.batched:
                raise ValueError(
                    "vector_decode=True requires batched=True: whole-population "
                    "decoding runs on the structure-of-arrays buffer pipeline"
                )
        if self.decode_backend not in (None, "numpy", "fused"):
            raise ValueError(
                f"decode_backend must be None, 'numpy' or 'fused', got "
                f"{self.decode_backend!r}"
            )
        if self.decode_backend is not None and self.vector_decode is False:
            raise ValueError(
                "decode_backend selects the vector path's walk implementation; "
                "it must stay None when vector_decode=False"
            )

    def replace(self, **changes) -> "GAConfig":
        """A copy of this config with some fields changed."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MultiPhaseConfig:
    """Parameters of the multi-phase GA (paper, Section 3.5).

    Attributes
    ----------
    max_phases:
        Upper bound on the number of phases (paper: 5).
    phase:
        The per-phase single-run configuration; its ``generations`` field is
        the phase length (paper: 100).
    early_stop_in_phase:
        If True, a phase may end before its generation budget once a valid
        solution is found.  The paper runs full phases; scaled-down benches
        may enable this to save time.
    """

    max_phases: int = 5
    phase: GAConfig = dataclasses.field(default_factory=lambda: GAConfig(generations=100, stop_on_goal=False))
    early_stop_in_phase: bool = False

    def __post_init__(self) -> None:
        """Validate the phase budget."""
        if self.max_phases < 1:
            raise ValueError(f"max_phases must be >= 1, got {self.max_phases}")

    def replace(self, **changes) -> "MultiPhaseConfig":
        """Copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class StrategySpec:
    """One island of a portfolio: a GA configuration or a heuristic search.

    Attributes
    ----------
    kind:
        ``"ga"`` — the island runs a :class:`~repro.core.ga.GARun` with the
        config in ``ga`` (one tick = one generation); or ``"search"`` — the
        island runs a resumable best-first search
        (:mod:`repro.planning.search.resumable`; one tick =
        ``expansions_per_tick`` node expansions).
    name:
        Display label for events and results; defaulted from the kind when
        empty (``"ga:random"``, ``"search:gbfs"``, …).
    ga:
        The GA configuration (required when ``kind == "ga"``).
    algorithm:
        Search algorithm name — one of ``("astar", "wastar", "gbfs",
        "ucs")`` (``kind == "search"`` only).
    weight:
        Heuristic weight for ``"wastar"``.
    heuristic_scale:
        Scale applied to the ``goal_gap`` heuristic.
    expansions_per_tick:
        Node expansions a search island performs per portfolio tick; sets
        how often it yields to the driver's cancellation/migration checks.
    max_expansions:
        Hard expansion budget for a search island.
    """

    kind: str = "ga"
    name: str = ""
    ga: Optional[GAConfig] = None
    algorithm: str = "gbfs"
    weight: float = 2.0
    heuristic_scale: float = 1.0
    expansions_per_tick: int = 256
    max_expansions: int = 1_000_000

    def __post_init__(self) -> None:
        """Validate the strategy shape for its kind."""
        if self.kind not in STRATEGY_KINDS:
            raise ValueError(f"kind must be one of {STRATEGY_KINDS}, got {self.kind!r}")
        if self.kind == "ga" and self.ga is None:
            raise ValueError("a 'ga' strategy requires a GAConfig in .ga")
        if self.kind == "search":
            # Algorithm names are validated again by make_resumable_search;
            # checking here keeps bad specs from failing mid-run.
            if self.algorithm not in ("astar", "wastar", "gbfs", "ucs"):
                raise ValueError(f"unknown search algorithm {self.algorithm!r}")
            if self.expansions_per_tick < 1:
                raise ValueError("expansions_per_tick must be >= 1")
            if self.max_expansions < 1:
                raise ValueError("max_expansions must be >= 1")
            if self.weight < 1.0:
                raise ValueError(f"weight must be >= 1, got {self.weight}")

    @property
    def label(self) -> str:
        """The display name: ``name`` or a derived ``kind:detail`` slug."""
        if self.name:
            return self.name
        if self.kind == "ga":
            return f"ga:{self.ga.crossover}"
        return f"search:{self.algorithm}"

    def replace(self, **changes) -> "StrategySpec":
        """Copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class PortfolioSpec:
    """Parameters of a heterogeneous island portfolio (DESIGN.md §14).

    Attributes
    ----------
    strategies:
        The islands.  At least one; racing only makes sense with two or
        more.  GA islands migrate among themselves; search islands never
        exchange individuals (they have none) but race on equal terms.
    interval:
        Ticks per round.  The driver joins all islands every ``interval``
        ticks to check for a first solution, steer migration, and stream
        incumbents — it is both the migration interval and the cancellation
        granularity.
    migration_size:
        Base migrants per island per round.  Must be smaller than the
        smallest GA island population (the adaptive controller may raise an
        island's intake above the base, but it is always clamped below the
        destination's population size).
    adaptive:
        Steer migration by per-island improvement velocity: stagnant
        islands pull extra migrants from the current leader on top of the
        ring, improving islands export more.  ``False`` keeps the plain
        ring at the base rate.
    grace_ms:
        After the first island solves, let the *other* islands keep
        improving the incumbent for this many wall-clock milliseconds
        before cancelling them.  ``0`` cancels at the next round boundary
        — the deterministic setting used by ``--portfolio-serial``
        verification.
    max_ticks:
        Overall tick budget per island; ``None`` derives it from the GA
        generation budgets (or the search budgets when no GA island
        exists).
    """

    strategies: Tuple[StrategySpec, ...] = ()
    interval: int = 5
    migration_size: int = 2
    adaptive: bool = True
    grace_ms: float = 0.0
    max_ticks: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate the portfolio shape and the migration bound."""
        if not isinstance(self.strategies, tuple):
            object.__setattr__(self, "strategies", tuple(self.strategies))
        if len(self.strategies) < 1:
            raise ValueError("a portfolio needs at least one strategy")
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.migration_size < 1:
            raise ValueError("migration_size must be >= 1")
        if self.grace_ms < 0:
            raise ValueError("grace_ms must be >= 0")
        if self.max_ticks is not None and self.max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")
        pops = [s.ga.population_size for s in self.strategies if s.kind == "ga"]
        if len(pops) >= 2 and self.migration_size >= min(pops):
            raise ValueError(
                "migration_size must be smaller than the smallest GA island "
                f"population ({min(pops)}), got {self.migration_size}"
            )

    @property
    def ga_indices(self) -> Tuple[int, ...]:
        """Indices of the GA strategies, in portfolio order."""
        return tuple(i for i, s in enumerate(self.strategies) if s.kind == "ga")

    def tick_budget(self) -> int:
        """The per-island tick budget implied by ``max_ticks`` or the specs."""
        if self.max_ticks is not None:
            return self.max_ticks
        budgets = [s.ga.generations for s in self.strategies if s.kind == "ga"]
        if not budgets:
            budgets = [
                -(-s.max_expansions // s.expansions_per_tick)
                for s in self.strategies
            ]
        return max(budgets)

    def replace(self, **changes) -> "PortfolioSpec":
        """Copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)
