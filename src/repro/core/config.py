"""Configuration for the GA planner.

Defaults follow the paper's Tables 1 and 3: population 200, 500 generations,
crossover rate 0.9, per-gene mutation rate 0.01, tournament selection of
size 2, goal-fitness weight 0.9 and cost-fitness weight 0.1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = ["GAConfig", "MultiPhaseConfig", "CROSSOVER_KINDS"]

CROSSOVER_KINDS = ("random", "state-aware", "mixed")


@dataclass(frozen=True)
class GAConfig:
    """Parameters of a single-phase GA run.

    Attributes
    ----------
    population_size:
        Number of individuals per generation.
    generations:
        Maximum generations for the run (one phase, in multi-phase mode).
    crossover_rate:
        Probability that a selected pair undergoes crossover; otherwise the
        parents are copied unchanged into the next generation.
    mutation_rate:
        Per-gene probability of replacing the gene with a fresh uniform
        float (paper, Section 3.4.3).
    crossover:
        One of ``"random"``, ``"state-aware"``, ``"mixed"`` (Section 3.4.2).
    tournament_size:
        Individuals drawn per tournament; the paper uses 2.
    goal_weight / cost_weight:
        Weights of the goal and cost fitness components (equation 4).  Must
        sum to 1.
    max_len:
        MaxLen, the hard cap on genome length.  ``None`` means the domain
        driver must supply it.
    init_length:
        Initial genome length: an int, or an inclusive ``(lo, hi)`` range
        sampled uniformly per individual.
    truncate_at_goal:
        Stop decoding a genome once the goal state is reached, so trailing
        genes cannot undo a solution.  See DESIGN.md §1 for the rationale.
    stop_on_goal:
        End the run as soon as some evaluated individual solves the problem
        (used for single-phase runs; phases of the multi-phase GA run their
        full generation budget by default, matching the paper's generation
        accounting).
    elitism:
        Number of best individuals copied unchanged into the next
        generation.  The paper uses none (0); exposed for ablations.
    decode_engine:
        Evaluate through the incremental decode engine (transition
        memoisation, dirty-prefix re-decode, phenotype dedup — DESIGN.md
        §9).  Bit-identical results either way; the naive path exists so
        ablations can measure the engine itself.
    batched:
        Run the generation step on the structure-of-arrays population
        engine (DESIGN.md §11): genomes packed into one contiguous arena,
        batched selection/mutation/crossover, and (with the process-pool
        evaluator) zero-copy shared-memory dispatch.  The RNG draws are
        replayed exactly, so trajectories are bit-identical to the
        list-of-individuals path either way; the object path exists for
        ablations and as the reference implementation.
    vector_decode:
        Decode whole populations in numpy against the domain's array
        kernel (DESIGN.md §12).  ``None`` (the default) auto-enables the
        vector path when the domain exposes a kernel
        (``domain.kernel() is not None``) and falls back to the object
        decode engine otherwise; ``True`` demands it (evaluation raises if
        the domain has no kernel); ``False`` forces the object path.
        Results are bit-identical either way.  Requires ``decode_engine``
        and ``batched`` (the vector path rides the buffer pipeline and
        replaces the engine, not the naive decoder).
    """

    population_size: int = 200
    generations: int = 500
    crossover_rate: float = 0.9
    mutation_rate: float = 0.01
    crossover: str = "random"
    tournament_size: int = 2
    goal_weight: float = 0.9
    cost_weight: float = 0.1
    max_len: Optional[int] = None
    init_length: Union[int, Tuple[int, int]] = 32
    truncate_at_goal: bool = True
    stop_on_goal: bool = True
    elitism: int = 0
    decode_engine: bool = True
    batched: bool = True
    vector_decode: Optional[bool] = None

    def __post_init__(self) -> None:
        """Validate field ranges and cross-field invariants."""
        if self.population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {self.population_size}")
        if self.generations < 1:
            raise ValueError(f"generations must be >= 1, got {self.generations}")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError(f"crossover_rate must be in [0, 1], got {self.crossover_rate}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {self.mutation_rate}")
        if self.crossover not in CROSSOVER_KINDS:
            raise ValueError(
                f"crossover must be one of {CROSSOVER_KINDS}, got {self.crossover!r}"
            )
        if self.tournament_size < 1:
            raise ValueError(f"tournament_size must be >= 1, got {self.tournament_size}")
        if abs(self.goal_weight + self.cost_weight - 1.0) > 1e-9:
            raise ValueError(
                f"goal_weight + cost_weight must equal 1, got "
                f"{self.goal_weight} + {self.cost_weight}"
            )
        if min(self.goal_weight, self.cost_weight) < 0:
            raise ValueError("fitness weights must be non-negative")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {self.max_len}")
        if isinstance(self.init_length, tuple):
            lo, hi = self.init_length
            if not (1 <= lo <= hi):
                raise ValueError(f"init_length range must satisfy 1 <= lo <= hi, got {self.init_length}")
        elif self.init_length < 1:
            raise ValueError(f"init_length must be >= 1, got {self.init_length}")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError(
                f"elitism must be in [0, population_size), got {self.elitism}"
            )
        if self.max_len is not None:
            init_hi = self.init_length[1] if isinstance(self.init_length, tuple) else self.init_length
            if init_hi > self.max_len:
                raise ValueError(
                    f"init_length {self.init_length} exceeds max_len {self.max_len}"
                )
        if self.vector_decode:
            if not self.decode_engine:
                raise ValueError(
                    "vector_decode=True requires decode_engine=True: the vector "
                    "path replaces the decode engine, not the naive decoder "
                    "(set vector_decode=False for a naive-path ablation)"
                )
            if not self.batched:
                raise ValueError(
                    "vector_decode=True requires batched=True: whole-population "
                    "decoding runs on the structure-of-arrays buffer pipeline"
                )

    def replace(self, **changes) -> "GAConfig":
        """A copy of this config with some fields changed."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MultiPhaseConfig:
    """Parameters of the multi-phase GA (paper, Section 3.5).

    Attributes
    ----------
    max_phases:
        Upper bound on the number of phases (paper: 5).
    phase:
        The per-phase single-run configuration; its ``generations`` field is
        the phase length (paper: 100).
    early_stop_in_phase:
        If True, a phase may end before its generation budget once a valid
        solution is found.  The paper runs full phases; scaled-down benches
        may enable this to save time.
    """

    max_phases: int = 5
    phase: GAConfig = dataclasses.field(default_factory=lambda: GAConfig(generations=100, stop_on_goal=False))
    early_stop_in_phase: bool = False

    def __post_init__(self) -> None:
        """Validate the phase budget."""
        if self.max_phases < 1:
            raise ValueError(f"max_phases must be >= 1, got {self.max_phases}")

    def replace(self, **changes) -> "MultiPhaseConfig":
        """Copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)
