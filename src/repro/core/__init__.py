"""GA planning core: the paper's primary contribution.

Public surface:

- :class:`GAConfig` / :class:`MultiPhaseConfig` — run parameters
- :class:`GAPlanner` — one-call facade
- :class:`GARun` / :func:`run_ga` — single-phase engine
- :func:`run_multiphase` — the multi-phase algorithm
- :func:`decode` / :func:`encode_operations` — the indirect encoding
- crossover / mutation / selection operators
"""

from repro.core.config import GAConfig, MultiPhaseConfig, CROSSOVER_KINDS
from repro.core.crossover import (
    CROSSOVER_OPERATORS,
    mixed_crossover,
    random_crossover,
    state_aware_crossover,
)
from repro.core.decode_engine import DecodeEngine, TransitionCache
from repro.core.encoding import DecodeCache, DecodedPlan, decode, encode_operations, gene_to_index
from repro.core.fitness import FitnessFunction, FitnessResult, cost_fitness
from repro.core.ga import GAResult, GARun, initial_population, run_ga
from repro.core.individual import Individual
from repro.core.multiphase import MultiPhaseResult, PhaseRecord, run_multiphase
from repro.core.mutation import deletion_mutation, insertion_mutation, uniform_reset_mutation
from repro.core.parallel import (
    EvaluationContext,
    Evaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
    WorkerPoolError,
)
from repro.core.popbuffer import PopulationBuffer
from repro.core.resilient import ResiliencePolicy, ResilientEvaluator
from repro.core.planner import GAPlanner, PLANNING_MODES, PlanningOutcome
from repro.core.rng import make_rng, spawn, spawn_many
from repro.core.selection import (
    SELECTION_SCHEMES,
    rank_selection,
    roulette_selection,
    tournament_selection,
)
from repro.core.stats import GenerationStats, RunHistory

__all__ = [
    "CROSSOVER_KINDS",
    "CROSSOVER_OPERATORS",
    "DecodeCache",
    "DecodeEngine",
    "DecodedPlan",
    "EvaluationContext",
    "Evaluator",
    "FitnessFunction",
    "FitnessResult",
    "GAConfig",
    "GAPlanner",
    "GAResult",
    "GARun",
    "GenerationStats",
    "Individual",
    "MultiPhaseConfig",
    "MultiPhaseResult",
    "PLANNING_MODES",
    "PhaseRecord",
    "PlanningOutcome",
    "PopulationBuffer",
    "ProcessPoolEvaluator",
    "ResiliencePolicy",
    "ResilientEvaluator",
    "RunHistory",
    "SELECTION_SCHEMES",
    "SerialEvaluator",
    "TransitionCache",
    "WorkerPoolError",
    "cost_fitness",
    "decode",
    "deletion_mutation",
    "encode_operations",
    "gene_to_index",
    "initial_population",
    "insertion_mutation",
    "make_rng",
    "mixed_crossover",
    "random_crossover",
    "rank_selection",
    "roulette_selection",
    "run_ga",
    "run_multiphase",
    "spawn",
    "spawn_many",
    "state_aware_crossover",
    "tournament_selection",
    "uniform_reset_mutation",
]

from repro.core.termination import (  # noqa: E402
    Deadline,
    FitnessTarget,
    GenerationLimit,
    Stagnation,
    all_of,
    any_of,
)

__all__ += ["Deadline", "FitnessTarget", "GenerationLimit", "Stagnation", "all_of", "any_of"]

from repro.core.islands import IslandConfig, IslandResult, run_islands  # noqa: E402

__all__ += ["IslandConfig", "IslandResult", "run_islands"]

from repro.core.config import PortfolioSpec, StrategySpec, STRATEGY_KINDS  # noqa: E402
from repro.core.parallel import build_evaluators  # noqa: E402
from repro.core.planner import IncumbentStream  # noqa: E402
from repro.core.portfolio import (  # noqa: E402
    Incumbent,
    PortfolioResult,
    canonical_events,
    default_portfolio,
    parse_portfolio,
    run_portfolio,
)

__all__ += [
    "Incumbent",
    "IncumbentStream",
    "PortfolioResult",
    "PortfolioSpec",
    "STRATEGY_KINDS",
    "StrategySpec",
    "build_evaluators",
    "canonical_events",
    "default_portfolio",
    "parse_portfolio",
    "run_portfolio",
]

from repro.core.checkpoint import (  # noqa: E402
    Checkpoint,
    CheckpointError,
    checkpoint_path,
    load_checkpoint,
    load_latest_checkpoint,
    restore_run,
    save_checkpoint,
)

__all__ += [
    "Checkpoint",
    "CheckpointError",
    "checkpoint_path",
    "load_checkpoint",
    "load_latest_checkpoint",
    "restore_run",
    "save_checkpoint",
]
