"""Fused per-row decode: compiled scalar loops over the kernel tables.

The numpy :class:`~repro.core.vector_decode.VectorDecoder` advances the
whole population one gene per iteration with ~10 array dispatches per
step; for short active sets that dispatch overhead — not arithmetic — is
the bound (BENCH_popbuffer's tile4 section).  This module flips the loop
nesting: :class:`FusedDecoder` walks **each row to completion** in one
tight scalar loop over the flat kernel tables (``valid_count`` /
``succ`` / ``goal_mask`` / ``op_cost`` plus the gene arena and
offsets/lengths), compiled with numba when it is installed
(``@njit(nogil=True, cache=True)``) and executed as the *identical*
pure-Python function otherwise.

Because lazily-filled kernels mark unexpanded transitions with ``-1`` and
expansion needs the object API, the compiled loop cannot intern states
itself.  Instead it runs a **stall-resume protocol**: a row that hits an
unfilled ``succ`` entry parks (its ``cur``/``pos``/``cost`` frozen at the
stall point) and reports the missing ``(state id, slot)`` pair; the
Python driver materialises all stalled transitions in one
:meth:`~repro.protocol.DomainKernel.fill_transitions` call, re-exports
the (possibly reallocated) tables via
:meth:`~repro.protocol.DomainKernel.tables`, and re-enters the loop with
only the stalled rows.  Dense kernels (Hanoi) never stall; lazy kernels
stall at most once per distinct new transition.

Exactness contract: :class:`FusedDecoder` overrides only
:meth:`~repro.core.vector_decode.VectorDecoder._walk` — hint processing,
fitness combination and plan reconstruction are inherited — and the
scalar loop reproduces the numpy walk step-for-step: ``int(gene * k)``
truncation, clamp to ``k - 1``, goal-mask stop *before* consuming a gene,
dead-end stop on ``valid_count == 0``, and left-to-right cost
accumulation (``acc += 1.0`` per step, or the gathered ``op_cost`` entry)
in gene order.  IEEE float64 arithmetic is identical scalar-by-scalar or
array-wise, so results are bit-identical across backends — enforced by
``tests/core/test_fused_decode.py``.

The jitted loop releases the GIL, so threads sharing one process (the
service layer's :class:`~repro.service.scheduler.ServicePool`) decode
concurrently on real cores; see DESIGN.md §16.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.core.vector_decode import VectorDecoder
from repro.protocol import DomainKernel

__all__ = [
    "FusedDecoder",
    "fused_walk_rows",
    "make_decoder",
    "numba_available",
    "resolve_backend",
]

#: Valid ``decode_backend`` settings (``None`` = auto-probe numba).
BACKEND_CHOICES = (None, "numpy", "fused")

#: Memoised result of the numba import probe (None = not yet probed).
_NUMBA_OK: Optional[bool] = None

#: Placeholder trace/cost arrays so the compiled signature never sees
#: ``None`` (numba needs concrete array types for every argument).
_NO_TRACE = np.empty((0, 0), dtype=np.int32)
_NO_COST = np.empty((0, 0), dtype=np.float64)


def numba_available() -> bool:
    """Whether numba can be imported (probed once, result memoised)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _NUMBA_OK = False
        else:
            _NUMBA_OK = True
    return _NUMBA_OK


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a tri-state ``decode_backend`` setting to a concrete one.

    ``None`` auto-probes numba ("fused" when importable, "numpy"
    otherwise); ``"numpy"`` always resolves to itself; ``"fused"`` demands
    numba and raises a :class:`RuntimeError` naming the ``[speed]`` extra
    when it is missing.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"decode_backend must be one of {BACKEND_CHOICES}, got {backend!r}"
        )
    if backend == "numpy":
        return "numpy"
    if backend == "fused" and not numba_available():
        raise RuntimeError(
            "decode_backend='fused' requires numba, which is not installed "
            "(pip install 'repro[speed]'); use decode_backend=None to "
            "auto-select or 'numpy' for the vectorised fallback"
        )
    if backend == "fused":
        return "fused"
    return "fused" if numba_available() else "numpy"


def make_decoder(
    kernel: DomainKernel, backend: Optional[str] = None
) -> VectorDecoder:
    """Build the decoder for *kernel* under a ``decode_backend`` setting.

    Returns a warmed :class:`FusedDecoder` (JIT compiled up front, the
    compile time recorded on ``jit_compile_ms`` and so excluded from
    decode timings) when the setting resolves to "fused", else a plain
    numpy :class:`~repro.core.vector_decode.VectorDecoder`.
    """
    if resolve_backend(backend) == "fused":
        decoder = FusedDecoder(kernel)
        decoder.warmup()
        return decoder
    return VectorDecoder(kernel)


def fused_walk_rows(
    arena,
    offsets,
    lengths,
    vc,
    succ,
    gmask,
    opcost,
    unit,
    truncate,
    trace,
    cur,
    pos,
    cost,
    rows,
    slot_tr,
    id_tr,
    stall_rows,
    stall_sids,
    stall_slots,
):
    """Walk each row in *rows* to its stop or first unfilled transition.

    The compiled core (and its own pure-Python fallback — this very
    function runs under numba and CPython unchanged).  Updates ``cur`` /
    ``pos`` / ``cost`` in place, fills the ``slot_tr`` / ``id_tr`` trace
    matrices when *trace* is set, and records rows parked on a ``-1``
    ``succ`` entry into the ``stall_*`` buffers.  Returns
    ``(n_stalled, genes_stepped)``.
    """
    n_stall = 0
    genes = 0
    for r in range(rows.shape[0]):
        i = rows[r]
        c = cur[i]
        p = pos[i]
        acc = cost[i]
        off = offsets[i]
        length = lengths[i]
        while p < length:
            if truncate and gmask[c]:
                break
            k = vc[c]
            if k == 0:
                break
            idx = int(arena[off + p] * k)
            if idx > k - 1:
                idx = k - 1
            nxt = succ[c, idx]
            if nxt < 0:
                stall_rows[n_stall] = i
                stall_sids[n_stall] = c
                stall_slots[n_stall] = idx
                n_stall += 1
                break
            if trace:
                slot_tr[i, p] = idx
                id_tr[i, p] = nxt
            if unit:
                acc += 1.0
            else:
                acc += opcost[c, idx]
            p += 1
            c = nxt
            genes += 1
        cur[i] = c
        pos[i] = p
        cost[i] = acc
    return n_stall, genes


#: The jit-compiled twin of :func:`fused_walk_rows`, built on first use.
_JIT_WALK: Optional[Callable] = None


def _jit_walk() -> Callable:
    """Compile (once) and return the jitted :func:`fused_walk_rows`."""
    global _JIT_WALK
    if _JIT_WALK is None:
        from numba import njit

        _JIT_WALK = njit(nogil=True, cache=True)(fused_walk_rows)
    return _JIT_WALK


class FusedDecoder(VectorDecoder):
    """:class:`VectorDecoder` whose walk runs as fused per-row loops.

    ``jit=None`` (the default) compiles with numba when available and
    falls back to the pure-Python loop otherwise; ``jit=True`` demands
    numba; ``jit=False`` forces the Python loop (the equivalence suites
    use this to test the fused algorithm without numba installed).
    """

    def __init__(self, kernel: DomainKernel, jit: Optional[bool] = None) -> None:
        super().__init__(kernel)
        if jit is None:
            jit = numba_available()
        elif jit and not numba_available():
            raise RuntimeError(
                "FusedDecoder(jit=True) requires numba, which is not "
                "installed (pip install 'repro[speed]')"
            )
        self.jit = bool(jit)
        self.backend_name = "fused-jit" if self.jit else "fused-python"
        self._step = _jit_walk() if self.jit else fused_walk_rows
        # Counters on top of the VectorDecoder set.
        self.fused_rows = 0
        self.jit_compile_ms = 0.0
        self._warm = not self.jit  # the Python loop needs no warmup

    def warmup(self) -> float:
        """Force JIT specialisation now; returns (and records) the ms spent.

        Called at construction sites (serial evaluator, pool worker
        initialiser, service lease) so compile time lands *outside* every
        decode/eval timer — it is reported separately through the
        ``jit_compile_ms`` counter.  A disk-cached compile makes this
        nearly free.  No-op for the Python fallback and on repeat calls.
        """
        if self._warm:
            return 0.0
        t0 = time.perf_counter()
        one_i64 = np.zeros(1, dtype=np.int64)
        self._step(
            np.zeros(1, dtype=np.float64),
            one_i64,
            one_i64,
            np.zeros(1, dtype=np.int32),
            np.full((1, 1), -1, dtype=np.int32),
            np.zeros(1, dtype=bool),
            _NO_COST,
            True,
            True,
            False,
            one_i64.copy(),
            one_i64.copy(),
            np.zeros(1, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            _NO_TRACE,
            _NO_TRACE,
            one_i64.copy(),
            one_i64.copy(),
            one_i64.copy(),
        )
        ms = (time.perf_counter() - t0) * 1000.0
        self._warm = True
        self.jit_compile_ms += ms
        return ms

    def _walk(self, arena, offsets, lengths, cur, pos, cost, active, slot_tr, id_tr):
        """Stall-resume driver around the compiled per-row loop."""
        kernel = self.kernel
        trace = slot_tr is not None
        if not trace:
            slot_tr = id_tr = _NO_TRACE
        unit = bool(kernel.unit_cost)
        truncate = bool(self._truncate)
        step = self._step
        arena = np.ascontiguousarray(arena, dtype=np.float64)
        self.fused_rows += int(active.size)
        rows = active
        while rows.size:
            tables = kernel.tables()
            opcost = tables["op_cost"]
            n = int(rows.size)
            stall_rows = np.empty(n, dtype=np.int64)
            stall_sids = np.empty(n, dtype=np.int64)
            stall_slots = np.empty(n, dtype=np.int64)
            n_stall, genes = step(
                arena,
                offsets,
                lengths,
                tables["valid_count"],
                tables["succ"],
                tables["goal_mask"],
                _NO_COST if opcost is None else opcost,
                unit,
                truncate,
                trace,
                cur,
                pos,
                cost,
                rows,
                slot_tr,
                id_tr,
                stall_rows,
                stall_sids,
                stall_slots,
            )
            self.vector_genes += int(genes)
            if not n_stall:
                break
            # Materialise every stalled transition in one bulk call, then
            # re-enter with only the parked rows (tables re-exported: the
            # interning side of fill_transitions may have reallocated them).
            kernel.fill_transitions(stall_sids[:n_stall], stall_slots[:n_stall])
            rows = stall_rows[:n_stall]

    def counters(self) -> dict:
        """VectorDecoder counters plus the fused/jit additions."""
        flat = super().counters()
        flat["fused_rows_decoded"] = self.fused_rows
        flat["jit_compile_ms"] = self.jit_compile_ms
        return flat
