"""Fault-tolerant population evaluation: retry, rebuild, degrade.

The paper argues GA planners suit unreliable environments because they are
restartable; this module makes the *evaluation* layer live up to that.
:class:`ResilientEvaluator` wraps an inner :class:`~repro.core.parallel.
ProcessPoolEvaluator` (or any evaluator) with the recovery ladder:

1. **retry** — a batch that fails with :class:`~repro.core.parallel.
   WorkerPoolError` (workers crashed) or ``TimeoutError`` (a worker hung
   past the per-batch timeout) is retried up to ``retry_max`` times, with
   capped exponential backoff and a pool rebuild between attempts;
2. **per-batch serial fallback** — a batch that exhausts its retries is
   evaluated by the serial fallback, which always produces correct results
   (the population is never mutated by a failed parallel attempt, so the
   fallback re-evaluates exactly the pending individuals);
3. **permanent degradation** — after ``degrade_after`` consecutive batches
   fell back, the pool is abandoned for good and every later batch goes
   straight to serial (an ``evaluator-degraded`` event + ``degradations``
   counter mark the transition).

Fault *injection* hooks (``worker_crashes`` / ``worker_hangs``) let the
:mod:`repro.faults` plans kill or wedge real pool workers mid-run, so the
ladder above is exercised by actual ``SIGKILL``-grade failures in tests,
not by mocks alone.

Wall-clock note: backoff sleeps go through ``policy.sleep`` so tests can
pass a no-op; production keeps ``time.sleep``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.core.parallel import (
    EvaluationContext,
    Evaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
    WorkerPoolError,
)
from repro.core.individual import Individual
from repro.obs.events import EvaluatorDegraded, RetryAttempt
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["ResiliencePolicy", "ResilientEvaluator"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the retry/degradation ladder.

    ``retry_max`` counts *retries* per batch (so a batch gets
    ``retry_max + 1`` pool attempts); ``degrade_after`` counts consecutive
    batches that exhausted their retries before the pool is abandoned;
    ``eval_timeout_s`` bounds one whole-batch evaluation (``None`` = wait
    forever).
    """

    retry_max: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    degrade_after: int = 2
    eval_timeout_s: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.retry_max < 0:
            raise ValueError("retry_max must be non-negative")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")

    def backoff_s(self, failure_index: int) -> float:
        """Delay before the retry following the ``failure_index``-th failure."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** failure_index))


def _injected_worker_crash(code: int = 32) -> None:  # pragma: no cover - dies
    """Fault-injection payload: kill the hosting worker process outright."""
    os._exit(code)


def _injected_worker_hang(seconds: float) -> None:
    """Fault-injection payload: wedge the hosting worker for *seconds*."""
    time.sleep(seconds)


class ResilientEvaluator(Evaluator):
    """Policy wrapper that survives worker crashes, hangs and bad domains.

    Parameters
    ----------
    inner:
        The evaluator to protect; defaults to a fresh
        :class:`ProcessPoolEvaluator`.  The wrapper owns its lifetime.
    policy:
        The :class:`ResiliencePolicy`; its ``eval_timeout_s`` is pushed
        onto the inner pool when the pool has no timeout of its own.
    worker_crashes / worker_hangs / hang_seconds:
        Deterministic fault injection (normally sourced from a
        :class:`repro.faults.FaultPlan`): before each of the first
        ``worker_crashes`` batches one pool worker is killed with
        ``os._exit``; before each of the next ``worker_hangs`` batches one
        worker is wedged for ``hang_seconds`` (pair with a small
        ``eval_timeout_s`` to exercise the timeout path).
    """

    def __init__(
        self,
        inner: Optional[Evaluator] = None,
        policy: Optional[ResiliencePolicy] = None,
        *,
        worker_crashes: int = 0,
        worker_hangs: int = 0,
        hang_seconds: float = 30.0,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.inner = inner if inner is not None else ProcessPoolEvaluator()
        if (
            isinstance(self.inner, ProcessPoolEvaluator)
            and self.inner.timeout_s is None
            and self.policy.eval_timeout_s is not None
        ):
            self.inner.timeout_s = self.policy.eval_timeout_s
        self.fallback = SerialEvaluator()
        self._pending_crashes = int(worker_crashes)
        self._pending_hangs = int(worker_hangs)
        self._hang_seconds = hang_seconds
        self._degraded = False
        self._failed_batches = 0  # consecutive batches that needed the fallback

    # -- observability plumbing ---------------------------------------------

    def bind_observability(
        self, tracer: Tracer, metrics: Optional[MetricsRegistry], scope: str = ""
    ) -> None:
        super().bind_observability(tracer, metrics, scope)
        self.inner.bind_observability(tracer, metrics, scope)
        self.fallback.bind_observability(tracer, metrics, scope)

    def cache_info(self) -> Optional[Tuple[int, int]]:
        """Combined decode-cache traffic of the pool and the serial fallback.

        Both sides can contribute within one run (per-batch fallbacks before
        degradation), so the totals are summed rather than switched.  Pool
        restarts rebuild worker caches through the pool initializer; the
        inner evaluator's parent-side aggregates (and its fitness memo)
        survive the restart.
        """
        infos = [info for info in (self.inner.cache_info(), self.fallback.cache_info()) if info]
        if not infos:
            return None
        return sum(h for h, _ in infos), sum(m for _, m in infos)

    @property
    def degraded(self) -> bool:
        """True once the pool has been permanently abandoned for serial."""
        return self._degraded

    def close(self) -> None:
        self.inner.close()
        self.fallback.close()

    # -- fault injection -----------------------------------------------------

    def _maybe_inject(self, context: EvaluationContext) -> None:
        if self._pending_crashes <= 0 and self._pending_hangs <= 0:
            return
        pool = self.inner
        if not isinstance(pool, ProcessPoolEvaluator):
            return  # nothing to kill — injection is a no-op on serial inners
        pool.ensure_started(context)
        if self._pending_crashes > 0:
            self._pending_crashes -= 1
            pool.submit(_injected_worker_crash)
        elif self._pending_hangs > 0:
            self._pending_hangs -= 1
            pool.submit(_injected_worker_hang, self._hang_seconds)

    # -- the recovery ladder -------------------------------------------------

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        self._evaluate_with_ladder(
            context,
            lambda: self.inner.evaluate(population, context),
            lambda: self.fallback.evaluate(population, context),
        )

    def evaluate_buffer(self, buffer, context: EvaluationContext) -> None:
        """The same recovery ladder over the buffer API.

        Safe for the same reason as :meth:`evaluate`: a failed parallel
        attempt never writes partial results into the buffer, so the serial
        fallback re-evaluates exactly the pending rows.
        """
        self._evaluate_with_ladder(
            context,
            lambda: self.inner.evaluate_buffer(buffer, context),
            lambda: self.fallback.evaluate_buffer(buffer, context),
        )

    def _evaluate_with_ladder(
        self,
        context: EvaluationContext,
        attempt_fn: Callable[[], None],
        fallback_fn: Callable[[], None],
    ) -> None:
        if self._degraded:
            fallback_fn()
            return
        policy = self.policy
        for attempt in range(policy.retry_max + 1):
            try:
                self._maybe_inject(context)
                attempt_fn()
                self._failed_batches = 0
                return
            except (WorkerPoolError, TimeoutError) as exc:
                reason = f"{type(exc).__name__}: {exc}"
                backoff = policy.backoff_s(attempt)
                if self._metrics is not None:
                    self._metrics.counter("retries").add(1)
                if self._tracer.enabled:
                    self._tracer.emit(
                        RetryAttempt(
                            scope=self._scope,
                            component="evaluator",
                            attempt=attempt + 1,
                            backoff_s=backoff,
                            reason=reason,
                        )
                    )
                if attempt < policy.retry_max:
                    policy.sleep(backoff)
                restart = getattr(self.inner, "restart", None)
                if restart is not None:
                    try:
                        restart()
                    except Exception:
                        # The pool cannot even be rebuilt (e.g. unpicklable
                        # domain) — further attempts are pointless.
                        self._degrade(reason)
                        break
        else:
            self._failed_batches += 1
            if self._failed_batches >= policy.degrade_after:
                self._degrade(f"{self._failed_batches} consecutive batches failed")
        # Retries exhausted (or pool unbuildable): the serial fallback is
        # always correct — a failed parallel attempt never mutates the
        # population, so exactly the pending individuals get re-evaluated.
        fallback_fn()

    def _degrade(self, reason: str) -> None:
        if self._degraded:
            return
        self._degraded = True
        if self._metrics is not None:
            self._metrics.counter("degradations").add(1)
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluatorDegraded(
                    scope=self._scope, failures=max(1, self._failed_batches), reason=reason
                )
            )
        self.inner.close()
