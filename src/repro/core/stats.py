"""Per-generation statistics and run histories."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.individual import Individual

__all__ = ["GenerationStats", "RunHistory"]


@dataclass(frozen=True)
class GenerationStats:
    """Summary of one evaluated generation."""

    generation: int
    best_total: float
    mean_total: float
    best_goal: float
    mean_goal: float
    mean_length: float
    max_length: int
    min_length: int
    solved_count: int

    @staticmethod
    def from_population(generation: int, population: Sequence[Individual]) -> "GenerationStats":
        totals = np.array([ind.total_fitness for ind in population])
        goals = np.array([ind.goal_fitness for ind in population])
        lengths = np.array([len(ind) for ind in population])
        solved = sum(
            1 for ind in population if ind.fitness is not None and ind.fitness.goal_reached
        )
        return GenerationStats(
            generation=generation,
            best_total=float(totals.max()),
            mean_total=float(totals.mean()),
            best_goal=float(goals.max()),
            mean_goal=float(goals.mean()),
            mean_length=float(lengths.mean()),
            max_length=int(lengths.max()),
            min_length=int(lengths.min()),
            solved_count=solved,
        )

    @staticmethod
    def from_buffer(generation: int, buffer) -> "GenerationStats":
        """Same summary computed from a :class:`~repro.core.popbuffer.
        PopulationBuffer`'s arrays.

        Bit-identical to :meth:`from_population` on the materialised
        population: the arrays hold the very same float64 values the
        object path would collect.
        """
        totals = buffer.total
        goals = buffer.goal
        lengths = buffer.lengths
        return GenerationStats(
            generation=generation,
            best_total=float(totals.max()),
            mean_total=float(totals.mean()),
            best_goal=float(goals.max()),
            mean_goal=float(goals.mean()),
            mean_length=float(lengths.mean()),
            max_length=int(lengths.max()),
            min_length=int(lengths.min()),
            solved_count=int(np.count_nonzero(buffer.goal_reached)),
        )


@dataclass
class RunHistory:
    """The full per-generation trace of one GA run."""

    generations: List[GenerationStats] = field(default_factory=list)

    def record(self, stats: GenerationStats) -> None:
        self.generations.append(stats)

    def __len__(self) -> int:
        return len(self.generations)

    @property
    def best_goal_trace(self) -> np.ndarray:
        return np.array([g.best_goal for g in self.generations])

    @property
    def best_total_trace(self) -> np.ndarray:
        return np.array([g.best_total for g in self.generations])

    @property
    def first_solved_generation(self) -> Optional[int]:
        """Generation index at which some individual first solved the problem."""
        for g in self.generations:
            if g.solved_count > 0:
                return g.generation
        return None
