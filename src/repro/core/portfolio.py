"""Heterogeneous island portfolio: racing strategies with cancellation.

The island model in :mod:`repro.core.islands` runs one homogeneous GA
config generation-by-generation in a single thread.  This module rebuilds
it as a *portfolio engine* (DESIGN.md §14): each island is a
:class:`~repro.core.config.StrategySpec` — a GA with its own
crossover/mutation/engine settings, or a pure heuristic search built on
:mod:`repro.planning.search.resumable` — and islands race concurrently on
the same problem.  The first island to reach the goal wins and cancels the
rest (optionally after an "improve-for-N-ms" grace window), and the driver
streams an anytime best-so-far incumbent sequence while the race runs.

Determinism is the design constraint everything else bends around.  The
race is decided in *logical time*, not wall-clock time: islands advance in
fork-join rounds of ``spec.interval`` ticks (one GA generation or one
search slice per tick), each island consumes only its own
SeedSequence-spawned RNG stream, and all cross-island decisions — winner
selection, adaptive migration, incumbent updates — happen single-threaded
at round boundaries.  The winner is the island with the smallest
``(first-solution tick, island index)`` pair, so a run with
``serial=True`` (the CLI's ``--portfolio-serial`` verification mode)
replays the exact same race the thread pool ran, producing the same
winner, the same plans, and the same event log (modulo wall-clock
``seconds`` payloads — see :func:`canonical_events`).

Each island gets its own evaluator, decode engine, metrics registry and
buffering tracer, plus a ``copy.deepcopy`` of the domain so the vectorised
decode path's per-domain kernel caches are never shared across threads.
Per-island events are re-emitted on the shared tracer in island order at
every round boundary; per-island metrics merge into the run registry at
the end (:meth:`~repro.obs.metrics.MetricsRegistry.merge`).
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core import rng as rng_mod
from repro.core.config import GAConfig, PortfolioSpec, StrategySpec
from repro.core.decode_engine import DecodeEngine
from repro.core.fitness import cost_fitness
from repro.core.ga import GARun
from repro.core.parallel import Evaluator, SerialEvaluator, build_evaluators
from repro.core.stats import RunHistory
from repro.obs.events import (
    IncumbentImproved,
    IslandVelocity,
    PortfolioCancelled,
    PortfolioMigration,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemoryRecorder
from repro.obs.tracer import NULL_TRACER, Tracer, default_metrics, default_tracer
from repro.planning.search.resumable import ResumableSearch, make_resumable_search
from repro.protocol import PlanningDomain

__all__ = [
    "Incumbent",
    "PortfolioResult",
    "run_portfolio",
    "default_portfolio",
    "parse_portfolio",
    "canonical_events",
]

#: Event payload keys holding wall-clock measurements, masked by
#: :func:`canonical_events` when comparing serial vs concurrent traces.
_WALL_CLOCK_KEYS = ("seconds",)


@dataclass(frozen=True)
class Incumbent:
    """One best-so-far improvement in the portfolio race (anytime API).

    ``tick`` is logical time on the discovering island; ``wall_s`` is
    wall-clock seconds since the race started and is the one
    non-deterministic field (excluded from replay comparisons).
    """

    island: int
    strategy: str
    tick: int
    plan: tuple
    goal_fitness: float
    cost_fitness: float
    plan_cost: float
    solved: bool
    wall_s: float

    def sort_key(self) -> tuple:
        """Ranking key mirroring :meth:`Individual.sort_key`: goal, then cost."""
        return (self.goal_fitness, self.cost_fitness)

    def to_dict(self) -> dict:
        """JSON-friendly record (plan rendered via ``str`` per operation)."""
        return {
            "island": self.island,
            "strategy": self.strategy,
            "tick": self.tick,
            "plan_length": len(self.plan),
            "goal_fitness": self.goal_fitness,
            "cost_fitness": self.cost_fitness,
            "plan_cost": self.plan_cost,
            "solved": self.solved,
            "wall_s": self.wall_s,
        }


@dataclass
class PortfolioResult:
    """Outcome of a portfolio race.

    ``histories`` aligns with the spec's strategies (``None`` for search
    islands); ``winner`` is ``None`` when no island solved within its
    budget, in which case ``best`` is the best unsolved incumbent (or
    ``None`` when no island produced any evaluated candidate — possible
    for search-only portfolios).
    """

    best: Optional[Incumbent]
    winner: Optional[int]
    first_solution_tick: Optional[int]
    first_solution_wall_s: Optional[float]
    incumbents: List[Incumbent]
    strategies: Tuple[str, ...]
    histories: List[Optional[RunHistory]]
    ticks_run: List[int]
    rounds: int
    migrations: int
    cancelled: int
    elapsed_seconds: float

    @property
    def solved(self) -> bool:
        """True when some island reached the goal."""
        return self.winner is not None

    @property
    def plan(self) -> tuple:
        """The best plan found (empty when nothing was evaluated)."""
        return self.best.plan if self.best is not None else ()


class _StopToken:
    """Shared cancellation flag checked by every island between ticks.

    The deterministic race is decided at round boundaries by the driver;
    this token exists for *hard* stops — cancelling islands mid-round once
    a winner is final (no grace budget left) so threads do not burn a full
    round of work that cannot change the outcome.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = Event()

    @property
    def stop_requested(self) -> bool:
        return self._event.is_set()

    def request_stop(self) -> None:
        self._event.set()


class _IslandWorker:
    """Base island: owns its RNG stream, tracer buffer and metrics.

    ``run_round`` is the only method executed off the driver thread; it
    touches exclusively worker-local state, which is what makes the
    serial and concurrent schedules produce identical trajectories.
    """

    def __init__(self, index: int, strategy: StrategySpec, buffered: bool) -> None:
        self.index = index
        self.strategy = strategy
        self.label = strategy.label
        self.scope = f"island-{index}"
        self.metrics = MetricsRegistry()
        self.recorder = MemoryRecorder() if buffered else None
        self.tracer = Tracer([self.recorder]) if buffered else NULL_TRACER
        self.ticks = 0
        self.budget = 0
        self.active = True
        self.claim_tick: Optional[int] = None
        self.candidates: List[Incumbent] = []
        self._best_key: Optional[tuple] = None

    def run_round(self, n_ticks: int, token: _StopToken, t0: float) -> None:
        """Advance up to *n_ticks* ticks (or until solved/stopped)."""
        raise NotImplementedError

    def best_total(self) -> float:
        """Current best combined fitness (velocity signal; GA islands only)."""
        return -np.inf

    def flush_events(self, tracer: Tracer) -> None:
        """Re-emit this round's buffered events on the shared tracer."""
        if self.recorder is None:
            return
        for event in self.recorder.events:
            tracer.emit(event)
        self.recorder.clear()

    def drain_candidates(self) -> List[Incumbent]:
        """This round's own-best improvements, oldest first."""
        out, self.candidates = self.candidates, []
        return out

    def _offer(self, incumbent: Incumbent) -> None:
        key = incumbent.sort_key()
        if self._best_key is None or key > self._best_key:
            self._best_key = key
            self.candidates.append(incumbent)

    def close(self) -> None:
        """Release per-island resources (evaluators)."""


class _GAIsland(_IslandWorker):
    """A GA strategy island: one tick = one generation.

    Breeding is deferred to the *start* of the next tick so the population
    is always fully evaluated at round boundaries — the same
    evaluate → migrate → breed ordering the classic island model uses.
    """

    def __init__(
        self,
        index: int,
        strategy: StrategySpec,
        domain: PlanningDomain,
        rng: np.random.Generator,
        start_state: Optional[object],
        evaluator: Evaluator,
        buffered: bool,
        budget: int,
    ) -> None:
        super().__init__(index, strategy, buffered)
        self.run = GARun(
            domain,
            strategy.ga,
            rng,
            start_state=start_state,
            evaluator=evaluator,
            tracer=self.tracer,
            metrics=self.metrics,
            scope=self.scope,
        )
        self.evaluator = evaluator
        self.budget = min(strategy.ga.generations, budget)
        self._needs_breed = False

    def run_round(self, n_ticks: int, token: _StopToken, t0: float) -> None:
        for _ in range(n_ticks):
            if not self.active or token.stop_requested:
                return
            if self._needs_breed:
                self.run._next_generation()
            self.run._evaluate_and_record()
            self._needs_breed = True
            self.ticks += 1
            best = self.run.best
            if best is not None:
                fit = best.fitness
                self._offer(
                    Incumbent(
                        island=self.index,
                        strategy=self.label,
                        tick=self.ticks,
                        plan=best.decoded.operations if best.decoded else (),
                        goal_fitness=fit.goal,
                        cost_fitness=fit.cost,
                        plan_cost=float(
                            self.run.domain.plan_cost(
                                best.decoded.operations if best.decoded else ()
                            )
                        ),
                        solved=fit.goal_reached,
                        wall_s=time.perf_counter() - t0,
                    )
                )
            if self.run.solved_at is not None:
                # A solved island rests: its claim is registered and any
                # further polishing comes from the others' grace rounds.
                if self.claim_tick is None:
                    self.claim_tick = self.ticks
                self.active = False
                return
            if self.ticks >= self.budget:
                self.active = False
                return

    def best_total(self) -> float:
        best = self.run.best
        return best.total_fitness if best is not None else -np.inf

    def close(self) -> None:
        self.evaluator.close()


class _SearchIsland(_IslandWorker):
    """A heuristic-search island: one tick = one bounded expansion slice."""

    def __init__(
        self,
        index: int,
        strategy: StrategySpec,
        domain: PlanningDomain,
        start_state: Optional[object],
        buffered: bool,
        budget: int,
    ) -> None:
        super().__init__(index, strategy, buffered)
        self.domain = domain
        self.search: ResumableSearch = make_resumable_search(
            domain,
            strategy.algorithm,
            weight=strategy.weight,
            heuristic_scale=strategy.heuristic_scale,
            start_state=start_state,
            max_expansions=strategy.max_expansions,
        )
        own = -(-strategy.max_expansions // strategy.expansions_per_tick)
        self.budget = min(own, budget)

    def run_round(self, n_ticks: int, token: _StopToken, t0: float) -> None:
        for _ in range(n_ticks):
            if not self.active or token.stop_requested:
                return
            plan = self.search.step(self.strategy.expansions_per_tick)
            self.ticks += 1
            if plan is not None:
                self._offer(
                    Incumbent(
                        island=self.index,
                        strategy=self.label,
                        tick=self.ticks,
                        plan=plan,
                        goal_fitness=1.0,
                        cost_fitness=cost_fitness(self.search.cost),
                        plan_cost=float(self.search.cost),
                        solved=True,
                        wall_s=time.perf_counter() - t0,
                    )
                )
                self.claim_tick = self.ticks
                self.active = False
                return
            if self.search.done or self.ticks >= self.budget:
                self.active = False
                return


class _MigrationController:
    """Velocity-steered migration among the portfolio's GA islands.

    Every round each GA island's improvement velocity (best-total delta
    over the round) feeds the ``island_velocity`` histogram and an
    :class:`IslandVelocity` event.  Islands always trade along the ring of
    *active* GA islands at the base rate; with ``spec.adaptive`` a
    stagnant island's intake grows with its stagnation streak and, from
    two stagnant rounds on, it pulls an extra "boost" edge from the
    current leader — stagnant islands import more, improving islands
    (the leader first among them) export more.  All decisions are pure
    functions of island state, so serial replay reproduces them exactly.
    """

    _EPS = 1e-12

    def __init__(self, spec: PortfolioSpec) -> None:
        self.spec = spec
        self._last_best: dict = {}
        self.stagnation: dict = {}

    def observe(self, workers: List[_IslandWorker]) -> dict:
        """Update velocities after a round; returns ``{island: velocity}``."""
        velocities = {}
        for w in workers:
            if not isinstance(w, _GAIsland):
                continue
            now = w.best_total()
            last = self._last_best.get(w.index)
            v = 0.0 if last is None else float(now - last)
            self._last_best[w.index] = now
            velocities[w.index] = v
            if last is not None and v <= self._EPS:
                self.stagnation[w.index] = self.stagnation.get(w.index, 0) + 1
            else:
                self.stagnation[w.index] = 0
        return velocities

    def plan(self, workers: List[_IslandWorker]) -> List[tuple]:
        """Migration edges ``(src, dst, k, reason)`` for this round."""
        ga = [w for w in workers if isinstance(w, _GAIsland) and w.active]
        if len(ga) < 2:
            return []
        base = self.spec.migration_size
        edges = []
        for i, dst in enumerate(ga):
            src = ga[(i - 1) % len(ga)]
            k = base
            if self.spec.adaptive:
                k = base + self.stagnation.get(dst.index, 0)
            edges.append((src, dst, k, "ring"))
        if self.spec.adaptive:
            leader = max(ga, key=lambda w: (w.best_total(), -w.index))
            for dst in ga:
                if dst is leader:
                    continue
                if self.stagnation.get(dst.index, 0) >= 2:
                    edges.append((leader, dst, base, "boost"))
        return edges


def _apply_migration(edges: List[tuple]) -> int:
    """Execute migration edges on evaluated populations; returns migrants moved.

    Emigrants are snapshotted from every source before any import, so the
    order edges are applied in cannot feed an island its own fresh
    immigrants.  Immigrant genomes longer than the destination's
    ``max_len`` are skipped (their fitness would be invalid if truncated);
    intake is clamped to leave the destination at least one native
    survivor.
    """
    exports = {}
    for src, dst, k, _reason in edges:
        if src.index not in exports:
            ranked = sorted(
                src.run.population, key=lambda ind: ind.total_fitness, reverse=True
            )
            exports[src.index] = ranked
    imports: dict = {}
    for src, dst, k, _reason in edges:
        pool = exports[src.index]
        dst_cap = dst.strategy.ga.max_len
        fitting = [ind for ind in pool if dst_cap is None or len(ind) <= dst_cap]
        take = min(k, len(fitting))
        imports.setdefault(dst.index, (dst, []))[1].extend(
            ind.copy() for ind in fitting[:take]
        )
    moved = 0
    for dst, immigrants in imports.values():
        if not immigrants:
            continue
        population = dst.run.population
        room = len(population) - 1  # keep at least one native survivor
        immigrants = immigrants[:room]
        ranked = sorted(population, key=lambda ind: ind.total_fitness)
        worst = {id(ind) for ind in ranked[: len(immigrants)]}
        survivors = [ind for ind in population if id(ind) not in worst]
        dst.run.population = survivors + immigrants
        moved += len(immigrants)
    return moved


def _build_workers(
    spec: PortfolioSpec,
    domain: PlanningDomain,
    rng: np.random.Generator,
    start_state: Optional[object],
    evaluator_factory: Optional[Callable[[], Evaluator]],
    buffered: bool,
) -> List[_IslandWorker]:
    """Construct one worker per strategy, leak-free on factory failure."""
    rngs = rng_mod.spawn_many(rng, len(spec.strategies))
    ga_indices = spec.ga_indices
    if evaluator_factory is not None:
        evaluators = build_evaluators(evaluator_factory, len(ga_indices))
    else:
        # Unlike the serial island model, engines are NOT shared across
        # islands: each worker runs on its own thread.
        evaluators = [SerialEvaluator(engine=DecodeEngine()) for _ in ga_indices]
    by_island = dict(zip(ga_indices, evaluators))
    budget = spec.tick_budget()
    workers: List[_IslandWorker] = []
    try:
        for i, strategy in enumerate(spec.strategies):
            # Per-island domain copies keep kernel/transition caches
            # thread-local; domains are plain picklable data, so deepcopy
            # is cheap and yields an identical search space.
            try:
                dom = copy.deepcopy(domain)
            except Exception:
                dom = domain
            if strategy.kind == "ga":
                workers.append(
                    _GAIsland(
                        i, strategy, dom, rngs[i], start_state,
                        by_island[i], buffered, budget,
                    )
                )
            else:
                workers.append(
                    _SearchIsland(i, strategy, dom, start_state, buffered, budget)
                )
    except BaseException:
        for evaluator in evaluators:
            try:
                evaluator.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        raise
    return workers


def _run_round(
    workers: List[_IslandWorker],
    executor: Optional[ThreadPoolExecutor],
    interval: int,
    token: _StopToken,
    t0: float,
) -> None:
    """Advance every active worker by one round, serially or on threads."""
    active = []
    for w in workers:
        if not w.active:
            continue
        if w.budget - w.ticks <= 0:
            w.active = False
            continue
        active.append(w)
    if executor is None:
        for w in active:
            w.run_round(min(interval, w.budget - w.ticks), token, t0)
    else:
        futures = [
            executor.submit(w.run_round, min(interval, w.budget - w.ticks), token, t0)
            for w in active
        ]
        for future in futures:
            future.result()


def run_portfolio(
    domain: PlanningDomain,
    spec: PortfolioSpec,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    evaluator_factory: Optional[Callable[[], Evaluator]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    serial: bool = False,
    on_incumbent: Optional[Callable[[Incumbent], None]] = None,
) -> PortfolioResult:
    """Race the spec's strategies on *domain*; first solution wins.

    ``serial=True`` runs the islands one after another on the driver
    thread instead of a thread pool — the ``--portfolio-serial``
    verification mode.  Because all cross-island decisions happen at round
    boundaries in logical time, the serial schedule reproduces the
    concurrent run's winner, plans, migrations and event log exactly
    (wall-clock payloads aside; see :func:`canonical_events`).

    ``on_incumbent`` is invoked from the driver thread, in deterministic
    order, each time the portfolio-wide best-so-far improves.
    """
    t0 = time.perf_counter()
    tracer = tracer if tracer is not None else default_tracer()
    metrics = metrics if metrics is not None else default_metrics()
    # The ambient registry may be absent; driver instruments still record
    # into a throwaway so the code path stays unconditional.
    metrics = metrics if metrics is not None else MetricsRegistry()
    buffered = tracer.enabled
    workers = _build_workers(
        spec, domain, rng, start_state, evaluator_factory, buffered
    )
    token = _StopToken()
    controller = _MigrationController(spec)
    incumbents: List[Incumbent] = []
    best: Optional[Incumbent] = None
    winner: Optional[_IslandWorker] = None
    rounds = 0
    migrations = 0
    executor = None
    try:
        if not serial:
            executor = ThreadPoolExecutor(
                max_workers=len(workers), thread_name_prefix="portfolio"
            )

        def drain() -> None:
            nonlocal best
            for w in workers:
                w.flush_events(tracer)
            for w in workers:
                for cand in w.drain_candidates():
                    if best is None or cand.sort_key() > best.sort_key():
                        best = cand
                        incumbents.append(cand)
                        metrics.counter("incumbent_improvements").add()
                        if tracer.enabled:
                            tracer.emit(
                                IncumbentImproved(
                                    island=cand.island,
                                    strategy=cand.strategy,
                                    tick=cand.tick,
                                    goal_fitness=cand.goal_fitness,
                                    cost_fitness=cand.cost_fitness,
                                    plan_length=len(cand.plan),
                                    solved=cand.solved,
                                )
                            )
                        if on_incumbent is not None:
                            on_incumbent(cand)

        while any(w.active for w in workers):
            _run_round(workers, executor, spec.interval, token, t0)
            rounds += 1
            metrics.counter("portfolio_rounds").add()
            drain()
            claims = [
                (w.claim_tick, w.index, w) for w in workers if w.claim_tick is not None
            ]
            if claims:
                _, _, winner = min(claims, key=lambda c: (c[0], c[1]))
                break
            velocities = controller.observe(workers)
            if tracer.enabled:
                for island, velocity in sorted(velocities.items()):
                    w = workers[island]
                    tracer.emit(
                        IslandVelocity(
                            round_index=rounds,
                            island=island,
                            strategy=w.label,
                            velocity=velocity,
                            best_total=float(w.best_total()),
                            stagnation=controller.stagnation.get(island, 0),
                        )
                    )
            for velocity in velocities.values():
                metrics.histogram("island_velocity").observe(velocity)
            edges = controller.plan(workers)
            if edges:
                moved = _apply_migration(edges)
                migrations += 1
                metrics.counter("portfolio_migrants").add(moved)
                for src, dst, k, reason in edges:
                    if reason == "boost":
                        metrics.counter("portfolio_boost_edges").add()
                    if tracer.enabled:
                        tracer.emit(
                            PortfolioMigration(
                                round_index=rounds,
                                source=src.index,
                                dest=dst.index,
                                migrants=k,
                                reason=reason,
                            )
                        )

        cancelled = 0
        if winner is not None:
            if spec.grace_ms > 0:
                # Grace window: the losers may polish the incumbent for a
                # wall-clock budget.  The winner is already final, so this
                # cannot change the race outcome — only improve `best`.
                deadline = time.perf_counter() + spec.grace_ms / 1000.0
                while (
                    time.perf_counter() < deadline
                    and any(w.active for w in workers)
                ):
                    _run_round(workers, executor, spec.interval, token, t0)
                    rounds += 1
                    drain()
            token.request_stop()
            for w in workers:
                if w.active:
                    w.active = False
                    cancelled += 1
            metrics.counter("islands_cancelled").add(cancelled)
            if tracer.enabled:
                tracer.emit(
                    PortfolioCancelled(
                        winner=winner.index,
                        strategy=winner.label,
                        tick=winner.claim_tick,
                        cancelled=cancelled,
                    )
                )
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        for w in workers:
            w.close()
    for w in workers:
        metrics.merge(w.metrics)

    first_wall = None
    if winner is not None:
        for inc in incumbents:
            if inc.solved:
                first_wall = inc.wall_s
                break
    return PortfolioResult(
        best=best,
        winner=winner.index if winner is not None else None,
        first_solution_tick=winner.claim_tick if winner is not None else None,
        first_solution_wall_s=first_wall,
        incumbents=incumbents,
        strategies=tuple(w.label for w in workers),
        histories=[
            w.run.history if isinstance(w, _GAIsland) else None for w in workers
        ],
        ticks_run=[w.ticks for w in workers],
        rounds=rounds,
        migrations=migrations,
        cancelled=cancelled if winner is not None else 0,
        elapsed_seconds=time.perf_counter() - t0,
    )


def default_portfolio(
    base: GAConfig,
    n_ga: int = 2,
    search: Tuple[str, ...] = ("gbfs",),
    **spec_kwargs,
) -> PortfolioSpec:
    """A sensible racing portfolio around one base GA config.

    GA islands cycle through the crossover kinds starting from the base
    config's own; search islands are appended after them.
    """
    kinds = ("random", "state-aware", "mixed")
    start = kinds.index(base.crossover)
    strategies = [
        StrategySpec(kind="ga", ga=base.replace(crossover=kinds[(start + i) % 3]))
        for i in range(n_ga)
    ]
    strategies += [StrategySpec(kind="search", algorithm=a) for a in search]
    return PortfolioSpec(strategies=tuple(strategies), **spec_kwargs)


def parse_portfolio(text: str, base: GAConfig, **spec_kwargs) -> PortfolioSpec:
    """Build a :class:`PortfolioSpec` from a CLI strategy list.

    *text* is comma-separated items: ``ga`` (base config), ``ga:<crossover>``
    (base with that crossover), or ``search:<algorithm>``; e.g.
    ``"ga,ga:state-aware,search:gbfs"``.
    """
    strategies = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        kind, _, detail = item.partition(":")
        if kind == "ga":
            cfg = base.replace(crossover=detail) if detail else base
            strategies.append(StrategySpec(kind="ga", ga=cfg))
        elif kind == "search":
            strategies.append(
                StrategySpec(kind="search", algorithm=detail or "gbfs")
            )
        else:
            raise ValueError(f"unknown strategy {item!r} (expected ga[...]/search[...])")
    return PortfolioSpec(strategies=tuple(strategies), **spec_kwargs)


def canonical_events(events) -> List[dict]:
    """Event dicts with wall-clock payloads masked, for replay comparison.

    Serial replay reproduces every deterministic payload of the concurrent
    run's event log; fields that measure wall time (``seconds`` on
    evaluation batches) necessarily differ and are zeroed here — the same
    convention the soak determinism suite uses for ``replan-latency``.
    """
    out = []
    for event in events:
        record = event.to_dict()
        for key in _WALL_CLOCK_KEYS:
            if key in record:
                record[key] = 0.0
        out.append(record)
    return out
