"""Island-model GA: multiple populations with periodic migration.

A coarse-grained parallel GA in the classic SPMD shape: ``n_islands``
independent populations evolve the same planning problem; every
``migration_interval`` generations each island sends copies of its
``migration_size`` best individuals to the next island on a ring, replacing
that island's worst.  Islands preserve diversity that a single panmictic
population loses — a useful lever on deceptive landscapes like the
weighted-disk Hanoi fitness — and each island's generation step is an
independent work unit, so the model decomposes naturally across processes
(one evaluator per island) on a real parallel machine.

This is an extension beyond the paper (its future-work list includes richer
search structures); the ablation bench compares it against the single
population and the multi-phase GA at equal total evaluation budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core import rng as rng_mod
from repro.core.config import GAConfig
from repro.core.ga import GAResult, GARun
from repro.core.individual import Individual
from repro.core.decode_engine import DecodeEngine
from repro.core.parallel import Evaluator, SerialEvaluator, build_evaluators
from repro.core.popbuffer import PopulationBuffer
from repro.core.stats import RunHistory
from repro.obs.events import IslandMigration
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.protocol import PlanningDomain

__all__ = ["IslandConfig", "IslandResult", "run_islands"]


@dataclass(frozen=True)
class IslandConfig:
    """Parameters of an island-model run.

    ``island`` is the per-island GA config; its ``population_size`` is the
    per-island size (total budget = n_islands × population_size ×
    generations).  ``per_island`` optionally overrides the config island by
    island (length must equal ``n_islands``); heterogeneous population
    sizes are allowed, and ``migration_size`` is then validated against the
    *smallest* island — migration replaces a destination's worst k, so k
    must leave every island at least one survivor.
    """

    n_islands: int = 4
    migration_interval: int = 10
    migration_size: int = 2
    island: GAConfig = None  # type: ignore[assignment]
    per_island: Optional[Tuple[GAConfig, ...]] = None

    def __post_init__(self) -> None:
        if self.n_islands < 2:
            raise ValueError(f"need at least 2 islands, got {self.n_islands}")
        if self.migration_interval < 1:
            raise ValueError("migration_interval must be >= 1")
        if self.migration_size < 1:
            raise ValueError("migration_size must be >= 1")
        if self.island is None:
            raise ValueError("island config is required")
        if self.per_island is not None:
            if not isinstance(self.per_island, tuple):
                object.__setattr__(self, "per_island", tuple(self.per_island))
            if len(self.per_island) != self.n_islands:
                raise ValueError(
                    f"per_island must list {self.n_islands} configs, "
                    f"got {len(self.per_island)}"
                )
        smallest = min(cfg.population_size for cfg in self.island_configs)
        if self.migration_size >= smallest:
            raise ValueError(
                "migration_size must be smaller than the smallest island "
                f"population ({smallest}), got {self.migration_size}"
            )

    @property
    def island_configs(self) -> Tuple[GAConfig, ...]:
        """The effective per-island configs (``per_island`` or the shared one)."""
        if self.per_island is not None:
            return self.per_island
        return (self.island,) * self.n_islands


@dataclass
class IslandResult:
    """Outcome of an island-model run."""

    best: Individual
    best_island: int
    histories: List[RunHistory]
    generations_run: int
    solved_at_generation: Optional[int]
    migrations: int
    elapsed_seconds: float

    @property
    def solved(self) -> bool:
        return self.best.fitness is not None and self.best.fitness.goal_reached


def _migrate(islands: List[GARun], k: int) -> None:
    """Ring migration: island i's k best replace island i+1's k worst.

    Populations are already evaluated when this is called (migration runs
    right after a step's evaluation), so fitness-based ranking is safe.
    Batched islands migrate buffer rows directly (stable argsorts pick the
    same emigrants/victims as the object path's stable sorts; survivors
    keep their order with the migrants appended); mixed or object-path
    islands go through the Individual lists.
    """
    if all(run.buffer is not None for run in islands):
        emigrants = []
        for run in islands:
            order = np.argsort(-run.buffer.total, kind="stable")
            emigrants.append(run.buffer.take(order[:k]))
        for i, run in enumerate(islands):
            source = emigrants[(i - 1) % len(islands)]
            buf = run.buffer
            worst = np.argsort(buf.total, kind="stable")[:k]
            keep = np.setdiff1d(np.arange(buf.n, dtype=np.int64), worst)
            run.population = PopulationBuffer.concatenate([buf.take(keep), source])
        return
    emigrants = []
    for run in islands:
        ranked = sorted(run.population, key=lambda ind: ind.total_fitness, reverse=True)
        emigrants.append([ind.copy() for ind in ranked[:k]])
    for i, run in enumerate(islands):
        source = emigrants[(i - 1) % len(islands)]
        ranked = sorted(run.population, key=lambda ind: ind.total_fitness)
        worst = {id(ind) for ind in ranked[:k]}
        survivors = [ind for ind in run.population if id(ind) not in worst]
        run.population = survivors + source


def run_islands(
    domain: PlanningDomain,
    config: IslandConfig,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    evaluator_factory: Optional[Callable[[], Evaluator]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> IslandResult:
    """Run the island-model GA to the per-island generation budget.

    Stops early when ``config.island.stop_on_goal`` is set and any island
    produces a solving individual.  Per-island evaluators built by
    *evaluator_factory* are closed before returning (also on early stop or
    error).  Island *i*'s events carry the ``island-i`` scope; migrations
    emit ``island-migration`` events on the shared tracer.
    """
    t0 = time.perf_counter()
    tracer = tracer if tracer is not None else default_tracer()
    metrics = metrics if metrics is not None else default_metrics()
    configs = config.island_configs
    rngs = rng_mod.spawn_many(rng, config.n_islands)
    if evaluator_factory is not None:
        evaluators: List[Evaluator] = build_evaluators(
            evaluator_factory, config.n_islands
        )
    else:
        # Serial islands keep per-island evaluators (events stay scoped per
        # island) but share one decode engine: all islands search the same
        # domain from the same start state, so transition tables and the
        # fitness memo are valid — and much hotter — when shared.
        engine = DecodeEngine()
        evaluators = [SerialEvaluator(engine=engine) for _ in range(config.n_islands)]
    try:
        islands = [
            GARun(
                domain,
                configs[i],
                rngs[i],
                start_state=start_state,
                evaluator=evaluators[i],
                tracer=tracer,
                metrics=metrics,
                scope=f"island-{i}",
            )
            for i in range(config.n_islands)
        ]
        solved_at: Optional[int] = None
        migrations = 0
        generations = 0
        # Heterogeneous islands march in lockstep, so the run length is the
        # tightest per-island budget.
        budget = min(cfg.generations for cfg in configs)
        for gen in range(budget):
            for run in islands:
                # Evaluate and record, but breed only after possible migration.
                run._evaluate_and_record()
            generations = gen + 1
            if solved_at is None and any(r.solved_at is not None for r in islands):
                solved_at = gen
                if config.island.stop_on_goal:
                    break
            if (gen + 1) % config.migration_interval == 0:
                _migrate(islands, config.migration_size)
                migrations += 1
                if tracer.enabled:
                    tracer.emit(
                        IslandMigration(
                            generation=gen,
                            migration=migrations,
                            n_islands=config.n_islands,
                            migrants_per_island=config.migration_size,
                        )
                    )
            for run in islands:
                run._next_generation()
    finally:
        for evaluator in evaluators:
            evaluator.close()

    best_island = 0
    best: Optional[Individual] = None
    for i, run in enumerate(islands):
        if run.best is not None and (best is None or run.best.sort_key() > best.sort_key()):
            best = run.best
            best_island = i
    assert best is not None
    return IslandResult(
        best=best,
        best_island=best_island,
        histories=[run.history for run in islands],
        generations_run=generations,
        solved_at_generation=solved_at,
        migrations=migrations,
        elapsed_seconds=time.perf_counter() - t0,
    )
