"""Fitness evaluation (paper, Section 3.3).

The paper's fitness has three components: match fitness ``f_m`` (how well
operations match their states), goal fitness ``f_g`` (how close the final
state is to the goal), and cost fitness ``f_c`` (how cheap the plan is).
Because the indirect encoding only ever decodes valid operations, ``f_m`` is
identically 1 and is dropped; the evaluated fitness is equation 4:

    f = w_g * f_g + w_c * f_c,      w_g + w_c = 1.

Cost fitness follows the unit-cost form of equation 2, generalised to
arbitrary non-negative costs:

    f_c = 1 / (1 + cost)

which is 1 for an empty plan and decays toward 0, so cheaper plans always
score higher.  (The paper's equation 2 is typeset illegibly in the source
scan; this is the standard normalisation consistent with "a solution with
low cost has a high cost fitness" — recorded as an assumption in
EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding import DecodedPlan
from repro.protocol import PlanningDomain

__all__ = ["FitnessResult", "FitnessFunction", "cost_fitness"]


def cost_fitness(cost: float) -> float:
    """``1 / (1 + cost)`` — monotone decreasing in cost, in (0, 1]."""
    if cost < 0:
        raise ValueError(f"plan cost must be non-negative, got {cost}")
    return 1.0 / (1.0 + cost)


@dataclass(frozen=True)
class FitnessResult:
    """The three figures of merit plus their weighted combination.

    ``match`` is retained for fidelity with the paper's formulation; it is
    always 1.0 under the indirect encoding.
    """

    goal: float
    cost: float
    total: float
    match: float = 1.0
    goal_reached: bool = False


class FitnessFunction:
    """Weighted goal + cost fitness over decoded plans."""

    def __init__(self, domain: PlanningDomain, goal_weight: float = 0.9, cost_weight: float = 0.1) -> None:
        if abs(goal_weight + cost_weight - 1.0) > 1e-9:
            raise ValueError(
                f"weights must sum to 1, got {goal_weight} + {cost_weight}"
            )
        if min(goal_weight, cost_weight) < 0:
            raise ValueError("weights must be non-negative")
        self.domain = domain
        self.goal_weight = goal_weight
        self.cost_weight = cost_weight

    def __call__(self, decoded: DecodedPlan) -> FitnessResult:
        goal = float(self.domain.goal_fitness(decoded.final_state))
        if not 0.0 <= goal <= 1.0 + 1e-12:
            raise ValueError(
                f"domain {self.domain.name!r} returned goal fitness {goal} outside [0, 1]"
            )
        goal = min(goal, 1.0)
        fc = cost_fitness(decoded.cost)
        total = self.goal_weight * goal + self.cost_weight * fc
        return FitnessResult(
            goal=goal,
            cost=fc,
            total=total,
            match=1.0,
            goal_reached=decoded.goal_reached,
        )
