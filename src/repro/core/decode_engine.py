"""The incremental decode engine: memoised, prefix-resuming evaluation.

Decoding dominates GA runtime (the paper: "the fitness evaluation time has
a significant impact on the overall execution time of a GA"), and most of
that work is redundant — the whole population re-walks heavily overlapping
state trajectories from one start state every generation.  This module
makes evaluation cost proportional to *what changed*, via four composable
layers (DESIGN.md §9):

1. **Transition memoisation** (:class:`TransitionCache`) — extends the
   per-state valid-operation memo of :class:`~repro.core.encoding.
   DecodeCache` with a ``(state, op_index) → (next_state, decode_key,
   op_cost, is_goal)`` table over GC-untrackable entries and interned
   integer state ids, so a warm cache decodes a gene with one int-keyed
   dict lookup instead of ``apply`` + ``state_key`` + ``is_goal`` +
   ``operation_cost`` calls.
2. **Dirty-prefix re-decode** — offspring carry ``dirty_from`` (the first
   gene that may decode differently than in the parent) plus the parent's
   :class:`~repro.core.encoding.DecodedPlan`; decoding resumes from the
   retained prefix instead of the start state.  ``dirty_from`` is
   *conservative*: genes before it are byte-identical to the parent's, so
   the resumed walk is exact, never approximate.
3. **Phenotype dedup + fitness memo** — a ``genes.tobytes()``-fingerprint
   memo scores each distinct genome once; clones, elites and within-batch
   duplicates are served from the memo.  Admission is adaptive: when a
   probe window shows (almost) no duplicates, the memo is dropped and
   paused so non-duplicating workloads don't pay its time and heap cost.
   Dedup is *exact* because decoding
   and fitness are deterministic functions of the genome bytes (given a
   fixed domain, start state, weights and truncation flag — all part of
   the memo signature).
4. **Cache lifetime** — one :class:`DecodeEngine` persists across
   generations, phases and islands; only the fitness memo is invalidated
   when the start state or fitness signature changes, while the transition
   tables (keyed by state identity) survive.

Every layer is individually switchable (``transitions`` / ``prefix`` /
``dedup``) so ``benchmarks/bench_decode_engine.py`` can ablate them, and
the whole engine is bypassed when ``GAConfig.decode_engine`` is False.

Exactness contract: with all layers on, decoded plans, fitness values and
whole GA trajectories are *bit-identical* to the naive path.  This relies
on (a) ``state_key`` being injective (see :class:`~repro.protocol.
PlanningDomain.state_key`), (b) operation objects being reused from the
cached valid tuples (identity-stable), and (c) plan cost being accumulated
left-to-right in gene order, exactly as the naive decoder does.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

import numpy as np

from repro.core.encoding import DecodedPlan
from repro.protocol import PlanningDomain

__all__ = ["TransitionCache", "DecodeEngine"]


class _NeedsFullWalk(Exception):
    """A cached walk lost its concrete state (evicted); redo uncached."""


class TransitionCache:
    """Bounded per-state and per-transition memo tables for decoding.

    State keys are *interned* to small integer ids on first sight, and every
    table is keyed by id — the warm decode loop therefore performs one
    int-keyed dict lookup per gene and never hashes a (potentially large,
    nested) ``state_key`` value at all.  Per id the cache holds:

    - one cell list ``[valid_ops_tuple, entry_0, ..., entry_k-1]`` holding
      the valid-operation tuple (the old ``DecodeCache`` payload) and one
      transition entry per operation index; a filled entry ``(next_id,
      next_key, next_decode_key, op_cost, next_is_goal)`` skips
      ``apply``/``state_key``/``decode_key``/``operation_cost``/``is_goal``
      entirely and lands directly on the successor's id (the operation
      itself is recovered as ``valid[idx]``, so entries contain only
      atomic-ish values and CPython's cyclic GC can untrack them — the
      tables would otherwise make every full collection scan the cache);
    - a representative concrete state, needed to recover a full state after
      a run of transition hits (for ``final_state`` and for misses that
      must call back into the domain).

    Tables are bounded to ``max_entries`` distinct states (and as many
    filled transition entries) with pinned-preserving wholesale reset — an
    LRU would cost more bookkeeping than the recompute.  Ids are allocated
    monotonically and never reused, so an id that survives a reset in local
    variables simply misses.  Start keys are pinned via :meth:`pin` so the
    hottest entries survive resets.  When a needed representative state has
    been evicted, decoding transparently falls back to an uncached concrete
    walk (``fallbacks`` counts these).
    """

    def __init__(self, domain: PlanningDomain, max_entries: int = 200_000) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.domain = domain
        self.max_entries = max_entries
        self._ids: dict = {}  # state_key -> interned id
        self._next_id = 0
        self._tbl: dict = {}  # id -> [valid ops tuple, entry_0, ..., entry_k-1]
        self._states: dict = {}  # id -> representative concrete state
        self._pinned: dict = {}  # state_key -> pinned concrete state
        self._n_trans = 0
        self._has_dkey = type(domain).decode_key is not PlanningDomain.decode_key
        self._unit_cost = type(domain).operation_cost is PlanningDomain.operation_cost
        self.valid_hits = 0
        self.valid_misses = 0
        self.valid_evictions = 0
        self.trans_hits = 0
        self.trans_misses = 0
        self.trans_evictions = 0
        self.fallbacks = 0

    # -- table maintenance ---------------------------------------------------

    def pin(self, key: Hashable, state: object) -> None:
        """Protect *key* (and its representative state) from resets."""
        self._pinned[key] = state
        self._states[self._id_for(key)] = state

    def state_for(self, key: Hashable):
        """The retained representative state for *key*, or ``None``."""
        sid = self._ids.get(key)
        return self._states.get(sid) if sid is not None else None

    def clear(self) -> None:
        self._ids.clear()
        self._tbl.clear()
        self._states.clear()
        self._n_trans = 0

    def _id_for(self, key: Hashable) -> int:
        sid = self._ids.get(key)
        if sid is None:
            if len(self._ids) >= self.max_entries or self._n_trans >= self.max_entries:
                self._reset()
            sid = self._next_id
            self._next_id += 1
            self._ids[key] = sid
        return sid

    def _reset(self) -> None:
        """Wholesale eviction, keeping pinned keys (and their valid lists)."""
        keep = []  # (key, state, valid-ops tuple or None)
        for key, state in self._pinned.items():
            sid = self._ids.get(key)
            cell = self._tbl.get(sid) if sid is not None else None
            keep.append((key, state, cell[0] if cell is not None else None))
        self.valid_evictions += len(self._tbl) - sum(1 for _, _, v in keep if v is not None)
        self.trans_evictions += self._n_trans
        self._ids.clear()
        self._tbl.clear()
        self._states.clear()
        self._n_trans = 0
        for key, state, valid in keep:
            sid = self._next_id
            self._next_id += 1
            self._ids[key] = sid
            self._states[sid] = state
            if valid is not None:
                self._tbl[sid] = [valid] + [None] * len(valid)

    # -- decoding -------------------------------------------------------------

    def decode(
        self,
        genes: np.ndarray,
        start_state: object,
        truncate_at_goal: bool = True,
        prefix_plan: Optional[DecodedPlan] = None,
        dirty_from: Optional[int] = None,
        start_key: Optional[Hashable] = None,
        start_goal: Optional[bool] = None,
        use_transitions: bool = True,
    ) -> Tuple[DecodedPlan, int]:
        """Decode *genes*, reusing tables and an optional retained prefix.

        Returns ``(plan, genes_reused)`` where ``genes_reused`` counts the
        prefix genes whose decode was taken from *prefix_plan* instead of
        being re-walked.  The result is bit-identical to
        :func:`repro.core.encoding.decode`.
        """
        domain = self.domain
        if start_key is None:
            start_key = domain.state_key(start_state)
        gene_list = genes.tolist() if hasattr(genes, "tolist") else list(genes)
        n = len(gene_list)
        if (
            prefix_plan is not None
            and dirty_from is not None
            and dirty_from > 0
            and prefix_plan.state_keys[0] == start_key
        ):
            dirty = dirty_from if dirty_from <= n else n
            used_p = prefix_plan.used_genes
            if used_p < dirty:
                # The parent's decode already stopped (goal or dead end)
                # strictly inside the shared prefix, so the child decodes to
                # the very same plan; the trailing genes are inert.
                return prefix_plan, used_p
            try:
                return self._resume(
                    gene_list, prefix_plan, dirty, truncate_at_goal, use_transitions
                )
            except _NeedsFullWalk:
                self.fallbacks += 1
        if start_goal is None:
            start_goal = domain.is_goal(start_state)
        start_dkey = domain.decode_key(start_state) if self._has_dkey else None

        def fresh_args():
            return (gene_list, 0, start_state, self._id_for(start_key), [],
                    [start_key], [start_dkey] if self._has_dkey else None, 0.0,
                    start_goal, truncate_at_goal)

        if use_transitions:
            try:
                return self._walk(*fresh_args(), use_transitions=True), 0
            except _NeedsFullWalk:
                self.fallbacks += 1
        return self._walk(*fresh_args(), use_transitions=False), 0

    def _resume(
        self,
        gene_list: list,
        prefix_plan: DecodedPlan,
        p: int,
        truncate: bool,
        use_transitions: bool,
    ) -> Tuple[DecodedPlan, int]:
        """Re-decode from gene *p*, keeping the parent's prefix intact."""
        domain = self.domain
        used_p = prefix_plan.used_genes
        key_p = prefix_plan.state_keys[p]
        if p == used_p:
            state = prefix_plan.final_state
            goal = prefix_plan.goal_reached
        else:
            state = self.state_for(key_p)
            if state is None:
                raise _NeedsFullWalk
            # Under truncation the parent consumed gene p, so state p cannot
            # be a goal state (the parent's walk would have stopped there).
            goal = False if truncate else domain.is_goal(state)
        ops = list(prefix_plan.operations[:p])
        keys = list(prefix_plan.state_keys[: p + 1])
        dkeys = list(prefix_plan.match_keys[: p + 1]) if self._has_dkey else None
        if self._unit_cost:
            # The naive decoder sums 1.0 p times; that is exactly float(p).
            cost = float(p)
        else:
            # Re-accumulate left-to-right so the float additions happen in
            # the same order (and therefore round identically) as a full
            # decode would.
            cost = 0.0
            opcost = domain.operation_cost
            for op in ops:
                cost += opcost(op)
        plan = self._walk(gene_list, p, state, self._id_for(key_p), ops, keys, dkeys,
                          cost, goal, truncate, use_transitions=use_transitions)
        return plan, p

    def _walk(
        self,
        gene_list: list,
        start_pos: int,
        state: object,
        sid: int,
        ops: list,
        keys: list,
        dkeys: Optional[list],
        cost: float,
        goal: bool,
        truncate: bool,
        use_transitions: bool,
    ) -> DecodedPlan:
        domain = self.domain
        tbl = self._tbl
        states = self._states
        has_dkey = self._has_dkey
        # Locals for the hot loop: counter flushes happen on every exit path
        # (including _NeedsFullWalk) so the per-gene traffic accounting stays
        # exact without per-iteration attribute writes.
        v_hits = v_misses = t_hits = t_misses = 0
        ops_append = ops.append
        keys_append = keys.append
        dkeys_append = dkeys.append if has_dkey else None
        used = start_pos
        try:
            if not (truncate and goal):
                for i in range(start_pos, len(gene_list)):
                    cell = tbl.get(sid)
                    if cell is None:
                        v_misses += 1
                        if state is None:
                            state = states.get(sid)
                            if state is None:
                                raise _NeedsFullWalk
                        valid = tuple(domain.valid_operations(state))
                        cell = [valid] + [None] * len(valid)
                        tbl[sid] = cell
                    else:
                        v_hits += 1
                        valid = cell[0]
                    k = len(valid)
                    if k == 0:
                        break  # dead end: remaining genes are inert
                    idx = int(gene_list[i] * k)
                    if idx >= k:
                        idx = k - 1
                    entry = cell[idx + 1] if use_transitions else None
                    if entry is None:
                        if use_transitions:
                            t_misses += 1
                        if state is None:
                            state = states.get(sid)
                            if state is None:
                                raise _NeedsFullWalk
                        op = valid[idx]
                        nstate = domain.apply(state, op)
                        nkey = domain.state_key(nstate)
                        ndkey = domain.decode_key(nstate) if has_dkey else None
                        ncost = domain.operation_cost(op)
                        ngoal = domain.is_goal(nstate)
                        if use_transitions:
                            # _id_for can trigger a wholesale reset; writing
                            # into the captured (possibly orphaned) cell stays
                            # harmless because ids are never reused.
                            nid = self._id_for(nkey)
                            cell[idx + 1] = (nid, nkey, ndkey, ncost, ngoal)
                            self._n_trans += 1
                            if nid not in states:
                                states[nid] = nstate
                        else:
                            nid = self._id_for(nkey)
                        state = nstate
                    else:
                        t_hits += 1
                        op = valid[idx]
                        nid, nkey, ndkey, ncost, ngoal = entry
                        state = None  # concrete state recovered lazily if needed
                    sid = nid
                    ops_append(op)
                    keys_append(nkey)
                    if has_dkey:
                        dkeys_append(ndkey)
                    cost += ncost
                    goal = ngoal
                    used = i + 1
                    if truncate and goal:
                        break
            if state is None:
                state = states.get(sid)
                if state is None:
                    raise _NeedsFullWalk
        finally:
            self.valid_hits += v_hits
            self.valid_misses += v_misses
            self.trans_hits += t_hits
            self.trans_misses += t_misses
        keys_t = tuple(keys)
        return DecodedPlan(
            operations=tuple(ops),
            state_keys=keys_t,
            match_keys=tuple(dkeys) if has_dkey else keys_t,
            final_state=state,
            used_genes=used,
            goal_reached=goal,
            cost=cost,
        )


class DecodeEngine:
    """The four memoisation layers behind one evaluator-facing object.

    An engine outlives any single evaluation batch: :meth:`bind` is called
    once per batch with the current :class:`~repro.core.parallel.
    EvaluationContext` and rebuilds the transition tables only when the
    *domain* changes, while the fitness memo is additionally invalidated
    when the start state, truncation flag or fitness weights change (the
    memo's results depend on all of them; the transition tables do not).

    Layers can be disabled individually (``transitions`` / ``prefix`` /
    ``dedup``) for ablation benchmarks; a fully-disabled engine still
    memoises valid-operation lists, matching the legacy ``DecodeCache``
    behaviour.

    ``adaptive_memo=False`` turns off the memo's low-hit-rate pause below:
    within one run duplicate genomes are rare early, so the probe window
    rightly drops the memo — but an engine shared *across* runs (the
    planning service's warm cross-request cache) sees repeated requests
    replay whole genome populations, and pausing would discard exactly the
    state that makes those repeats cheap.
    """

    def __init__(
        self,
        transitions: bool = True,
        prefix: bool = True,
        dedup: bool = True,
        max_entries: int = 200_000,
        memo_entries: int = 100_000,
        adaptive_memo: bool = True,
    ) -> None:
        if memo_entries < 1:
            raise ValueError(f"memo_entries must be >= 1, got {memo_entries}")
        self.transitions = transitions
        self.prefix = prefix
        self.dedup = dedup
        self.max_entries = max_entries
        self.memo_entries = memo_entries
        self.adaptive_memo = adaptive_memo
        # Memo admission control: every `memo_probe_interval` stores the
        # window hit rate is probed; under ~1% the memo is dropped and paused
        # until the next signature change.  A memo that never hits only costs
        # time and retained heap — every stored plan is container-heavy and
        # gets scanned by full GC passes.
        self.memo_probe_interval = 512
        self._memo_paused = False
        self._memo_window_hits = 0
        self._memo_window_stores = 0
        self._cache: Optional[TransitionCache] = None
        self._domain: Optional[PlanningDomain] = None
        self._sig: Optional[tuple] = None
        self._memo: dict = {}
        self._start_state: object = None
        self._start_key: Optional[Hashable] = None
        self._start_goal: bool = False
        self._truncate: bool = True
        self.evals_skipped = 0
        self.genes_reused = 0
        self.memo_evictions = 0

    @property
    def active(self) -> bool:
        """Whether the engine has been bound to a context at least once."""
        return self._cache is not None

    def bind(self, context) -> None:
        """(Re)target the engine at *context*, invalidating what must be."""
        domain = context.domain
        if self._cache is None or self._domain is not domain:
            self._cache = TransitionCache(domain, self.max_entries)
            self._domain = domain
            self._sig = None
        start = context.start_state
        start_key = domain.state_key(start)
        fit = context.fitness
        sig = (start_key, context.truncate_at_goal, fit.goal_weight, fit.cost_weight)
        if sig != self._sig:
            self._memo.clear()
            self._memo_paused = False
            self._memo_window_hits = 0
            self._memo_window_stores = 0
            self._sig = sig
            self._start_state = start
            self._start_key = start_key
            self._start_goal = bool(domain.is_goal(start))
            self._truncate = context.truncate_at_goal
            self._cache.pin(start_key, start)

    # -- the layers -----------------------------------------------------------

    def lookup(self, fingerprint: bytes):
        """Layer 3: memoised ``(decoded, fitness)`` for a genome, or None."""
        if not self.dedup or self._memo_paused:
            return None
        hit = self._memo.get(fingerprint)
        if hit is not None:
            self.evals_skipped += 1
            self._memo_window_hits += 1
        return hit

    def store(self, fingerprint: bytes, decoded: DecodedPlan, fitness) -> None:
        if not self.dedup or self._memo_paused:
            return
        memo = self._memo
        if len(memo) >= self.memo_entries:
            self.memo_evictions += len(memo)
            memo.clear()
        memo[fingerprint] = (decoded, fitness)
        self._memo_window_stores += 1
        if self._memo_window_stores >= self.memo_probe_interval:
            if self.adaptive_memo and self._memo_window_hits * 100 < self._memo_window_stores:
                # Workload with (almost) no duplicate genomes: drop the memo
                # and stop admitting until the next bind() signature change.
                self._memo_paused = True
                self.memo_evictions += len(memo)
                memo.clear()
            self._memo_window_hits = 0
            self._memo_window_stores = 0

    def decode(
        self,
        genes: np.ndarray,
        prefix_plan: Optional[DecodedPlan] = None,
        dirty_from: Optional[int] = None,
    ) -> DecodedPlan:
        """Layers 1+2: decode through the tables, resuming a prefix if given."""
        assert self._cache is not None, "DecodeEngine.bind() must run first"
        if not self.prefix:
            prefix_plan = None
            dirty_from = None
        plan, reused = self._cache.decode(
            genes,
            self._start_state,
            truncate_at_goal=self._truncate,
            prefix_plan=prefix_plan,
            dirty_from=dirty_from,
            start_key=self._start_key,
            start_goal=self._start_goal,
            use_transitions=self.transitions,
        )
        self.genes_reused += reused
        return plan

    def evaluate_genes(self, genes: np.ndarray, fitness_fn, prefix_plan=None, dirty_from=None):
        """Full pipeline for one genome: memo → decode → score → store."""
        fp = genes.tobytes()
        hit = self.lookup(fp)
        if hit is not None:
            return hit
        decoded = self.decode(genes, prefix_plan, dirty_from)
        fitness = fitness_fn(decoded)
        self.store(fp, decoded, fitness)
        return decoded, fitness

    # -- introspection ---------------------------------------------------------

    def cache_info(self) -> Optional[Tuple[int, int]]:
        """Valid-table ``(hits, misses)`` — the legacy decode-cache stats."""
        if self._cache is None:
            return None
        return self._cache.valid_hits, self._cache.valid_misses

    def counters(self) -> dict:
        """All engine counters, flat, using the canonical metric names."""
        c = self._cache
        return {
            "decode_cache_hits": c.valid_hits if c else 0,
            "decode_cache_misses": c.valid_misses if c else 0,
            "decode_cache_evictions": c.valid_evictions if c else 0,
            "transition_cache_hits": c.trans_hits if c else 0,
            "transition_cache_misses": c.trans_misses if c else 0,
            "transition_cache_evictions": c.trans_evictions if c else 0,
            "decode_fallbacks": c.fallbacks if c else 0,
            "evals_skipped": self.evals_skipped,
            "genes_reused": self.genes_reused,
            "memo_evictions": self.memo_evictions,
        }
