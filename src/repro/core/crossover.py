"""The three crossover mechanisms (paper, Section 3.4.2).

*Random* crossover is one-point crossover with independently chosen cut
points on each parent (lengths may differ, so the cuts are independent and
children change length).  Under the indirect encoding the genes inherited to
the right of the cut are re-interpreted against whatever state the new left
context produces, which usually changes their meaning.

*State-aware* crossover fixes that: the first parent's cut is random, and
the second parent's cut is constrained to positions whose decode-state
matches the first cut's decode-state — "two states match if the same genetic
code will be mapped to the same sequence of operations from these two
states"; identical state keys satisfy this exactly.  When no matching cut
exists, no crossover is performed and both parents survive unchanged.

*Mixed* crossover tries state-aware first and falls back to random.

All operators cap children at ``max_len`` genes (MaxLen) by truncation.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.individual import Individual

__all__ = [
    "random_crossover",
    "state_aware_crossover",
    "mixed_crossover",
    "CROSSOVER_OPERATORS",
]


def _clip(genes: np.ndarray, max_len: Optional[int]) -> np.ndarray:
    if max_len is not None and genes.size > max_len:
        return genes[:max_len]
    return genes


def _one_point_children(
    p1: Individual, p2: Individual, cut1: int, cut2: int, max_len: Optional[int]
) -> Tuple[Individual, Individual]:
    g1 = np.concatenate([p1.genes[:cut1], p2.genes[cut2:]])
    g2 = np.concatenate([p2.genes[:cut2], p1.genes[cut1:]])
    children = []
    for g, fallback, cut in ((g1, p1, cut1), (g2, p2, cut2)):
        g = _clip(g, max_len)
        # A cut at an extreme end of both parents can yield an empty child;
        # genomes must be non-empty, so fall back to the parent copy.
        if g.size == 0:
            children.append(fallback.copy())
            continue
        # The child's first ``cut`` genes are the parent's own prefix, so
        # the decode engine can resume from the parent's retained walk.
        prefix = fallback.decoded
        if prefix is not None and cut > 0:
            children.append(
                Individual(genes=g, dirty_from=min(cut, int(g.size)), prefix_plan=prefix)
            )
        else:
            children.append(Individual(genes=g))
    return children[0], children[1]


def _random_cut(length: int, rng: np.random.Generator) -> int:
    """A cut position in ``[1, length - 1]``; 0/length would just swap parents.

    Length-1 genomes only admit the degenerate cut after position 0 (treated
    as position 1 would be a full copy), so we allow cut range [0, length]
    clamped to produce mixing whenever possible.
    """
    if length >= 2:
        return int(rng.integers(1, length))
    return int(rng.integers(0, length + 1))


def random_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """One-point crossover with independent cut points on each parent."""
    cut1 = _random_cut(len(p1), rng)
    cut2 = _random_cut(len(p2), rng)
    return _one_point_children(p1, p2, cut1, cut2, max_len)


def _cut_state_key(ind: Individual, cut: int):
    """Decode-behaviour key at position *cut*, or ``None`` past the decode.

    ``match_keys[i]`` is the decode-equivalence key of the state before
    gene ``i``; a cut at position ``cut`` splices in new genes starting at
    index ``cut``, so the relevant key is ``match_keys[cut]``.  Positions
    beyond ``used_genes`` have no defined state (the decoder stopped
    earlier).
    """
    if ind.decoded is None:
        raise ValueError("state-aware crossover requires evaluated (decoded) parents")
    keys = ind.decoded.match_keys
    if cut < len(keys):
        return keys[cut]
    return None


def state_aware_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """State-aware crossover; copies the parents when no matching cut exists."""
    cut1 = _random_cut(len(p1), rng)
    key = _cut_state_key(p1, cut1)
    if key is None:
        return p1.copy(), p2.copy()
    if p2.decoded is None:
        raise ValueError("state-aware crossover requires evaluated (decoded) parents")
    # Candidate cuts on parent 2: positions with a defined decode state that
    # matches, excluding the degenerate full-copy extremes when avoidable.
    keys2 = p2.decoded.match_keys
    hi = min(len(p2), len(keys2) - 1)
    candidates = [j for j in range(0, hi + 1) if keys2[j] == key]
    if len(p2) >= 2:
        trimmed = [j for j in candidates if 1 <= j <= len(p2) - 1]
        if trimmed:
            candidates = trimmed
    if not candidates:
        return p1.copy(), p2.copy()
    cut2 = int(candidates[int(rng.integers(0, len(candidates)))])
    return _one_point_children(p1, p2, cut1, cut2, max_len)


def mixed_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """State-aware when a matching cut exists, otherwise random.

    Implemented exactly as the paper describes: pick the first cut, look for
    a state match; if found do state-aware splicing, else pick the second
    cut at random.
    """
    cut1 = _random_cut(len(p1), rng)
    key = _cut_state_key(p1, cut1)
    if key is not None and p2.decoded is not None:
        keys2 = p2.decoded.match_keys
        hi = min(len(p2), len(keys2) - 1)
        candidates = [j for j in range(0, hi + 1) if keys2[j] == key]
        if len(p2) >= 2:
            trimmed = [j for j in candidates if 1 <= j <= len(p2) - 1]
            if trimmed:
                candidates = trimmed
        if candidates:
            cut2 = int(candidates[int(rng.integers(0, len(candidates)))])
            return _one_point_children(p1, p2, cut1, cut2, max_len)
    cut2 = _random_cut(len(p2), rng)
    return _one_point_children(p1, p2, cut1, cut2, max_len)


CROSSOVER_OPERATORS: dict = {
    "random": random_crossover,
    "state-aware": state_aware_crossover,
    "mixed": mixed_crossover,
}
