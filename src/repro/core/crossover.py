"""The three crossover mechanisms (paper, Section 3.4.2).

*Random* crossover is one-point crossover with independently chosen cut
points on each parent (lengths may differ, so the cuts are independent and
children change length).  Under the indirect encoding the genes inherited to
the right of the cut are re-interpreted against whatever state the new left
context produces, which usually changes their meaning.

*State-aware* crossover fixes that: the first parent's cut is random, and
the second parent's cut is constrained to positions whose decode-state
matches the first cut's decode-state — "two states match if the same genetic
code will be mapped to the same sequence of operations from these two
states"; identical state keys satisfy this exactly.  When no matching cut
exists, no crossover is performed and both parents survive unchanged.

*Mixed* crossover tries state-aware first and falls back to random.

All operators cap children at ``max_len`` genes (MaxLen) by truncation.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.individual import Individual

__all__ = [
    "random_crossover",
    "state_aware_crossover",
    "mixed_crossover",
    "sample_cut",
    "sample_crossover_cuts",
    "CROSSOVER_OPERATORS",
]


def _clip(genes: np.ndarray, max_len: Optional[int]) -> np.ndarray:
    if max_len is not None and genes.size > max_len:
        return genes[:max_len]
    return genes


def _one_point_children(
    p1: Individual, p2: Individual, cut1: int, cut2: int, max_len: Optional[int]
) -> Tuple[Individual, Individual]:
    g1 = np.concatenate([p1.genes[:cut1], p2.genes[cut2:]])
    g2 = np.concatenate([p2.genes[:cut2], p1.genes[cut1:]])
    children = []
    for g, fallback, cut in ((g1, p1, cut1), (g2, p2, cut2)):
        g = _clip(g, max_len)
        # A cut at an extreme end of both parents can yield an empty child;
        # genomes must be non-empty, so fall back to the parent copy.
        if g.size == 0:
            children.append(fallback.copy())
            continue
        # The child's first ``cut`` genes are the parent's own prefix, so
        # the decode engine can resume from the parent's retained walk.
        prefix = fallback.decoded
        if prefix is not None and cut > 0:
            children.append(
                Individual(genes=g, dirty_from=min(cut, int(g.size)), prefix_plan=prefix)
            )
        else:
            children.append(Individual(genes=g))
    return children[0], children[1]


def sample_cut(length: int, rng: np.random.Generator) -> int:
    """A cut position in ``[1, length - 1]``; 0/length would just swap parents.

    Length-1 genomes only admit the degenerate cut after position 0 (treated
    as position 1 would be a full copy), so we allow cut range [0, length]
    clamped to produce mixing whenever possible.
    """
    if length >= 2:
        return int(rng.integers(1, length))
    return int(rng.integers(0, length + 1))


def _key_at(plan, cut: int):
    """Decode-behaviour key at position *cut*, or ``None`` past the decode.

    ``match_keys[i]`` is the decode-equivalence key of the state before
    gene ``i``; a cut at position ``cut`` splices in new genes starting at
    index ``cut``, so the relevant key is ``match_keys[cut]``.  Positions
    beyond ``used_genes`` have no defined state (the decoder stopped
    earlier).
    """
    if plan is None:
        raise ValueError("state-aware crossover requires evaluated (decoded) parents")
    keys = plan.match_keys
    if cut < len(keys):
        return keys[cut]
    return None


def _matching_cuts(plan2, length2: int, key) -> list:
    """Candidate cuts on parent 2: defined decode states matching *key*.

    The degenerate full-copy extremes (0 and ``length2``) are excluded
    whenever an interior match exists.
    """
    keys2 = plan2.match_keys
    hi = min(length2, len(keys2) - 1)
    candidates = [j for j in range(0, hi + 1) if keys2[j] == key]
    if length2 >= 2:
        trimmed = [j for j in candidates if 1 <= j <= length2 - 1]
        if trimmed:
            candidates = trimmed
    return candidates


def sample_crossover_cuts(
    kind: str,
    length1: int,
    length2: int,
    plan1,
    plan2,
    rng: np.random.Generator,
) -> Optional[Tuple[int, int]]:
    """Draw the cut pair for one crossover, or ``None`` for "copy parents".

    This is the single source of the operators' randomness — the Individual
    operators below and the batched population engine (:mod:`repro.core.
    popbuffer`) both call it, so their RNG streams are identical by
    construction.  *plan1*/*plan2* are the parents' decoded plans (only
    consulted by the state-matching kinds).
    """
    cut1 = sample_cut(length1, rng)
    if kind == "random":
        return cut1, sample_cut(length2, rng)
    if kind == "state-aware":
        key = _key_at(plan1, cut1)
        if key is None:
            return None
        if plan2 is None:
            raise ValueError("state-aware crossover requires evaluated (decoded) parents")
        candidates = _matching_cuts(plan2, length2, key)
        if not candidates:
            return None
        return cut1, int(candidates[int(rng.integers(0, len(candidates)))])
    if kind == "mixed":
        key = _key_at(plan1, cut1)
        if key is not None and plan2 is not None:
            candidates = _matching_cuts(plan2, length2, key)
            if candidates:
                return cut1, int(candidates[int(rng.integers(0, len(candidates)))])
        return cut1, sample_cut(length2, rng)
    raise ValueError(f"unknown crossover kind {kind!r}")


def random_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """One-point crossover with independent cut points on each parent."""
    cut1, cut2 = sample_crossover_cuts("random", len(p1), len(p2), None, None, rng)
    return _one_point_children(p1, p2, cut1, cut2, max_len)


def state_aware_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """State-aware crossover; copies the parents when no matching cut exists."""
    cuts = sample_crossover_cuts(
        "state-aware", len(p1), len(p2), p1.decoded, p2.decoded, rng
    )
    if cuts is None:
        return p1.copy(), p2.copy()
    return _one_point_children(p1, p2, cuts[0], cuts[1], max_len)


def mixed_crossover(
    p1: Individual,
    p2: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Tuple[Individual, Individual]:
    """State-aware when a matching cut exists, otherwise random.

    Implemented exactly as the paper describes: pick the first cut, look for
    a state match; if found do state-aware splicing, else pick the second
    cut at random.
    """
    cuts = sample_crossover_cuts("mixed", len(p1), len(p2), p1.decoded, p2.decoded, rng)
    assert cuts is not None  # mixed always falls back to a random second cut
    return _one_point_children(p1, p2, cuts[0], cuts[1], max_len)


CROSSOVER_OPERATORS: dict = {
    "random": random_crossover,
    "state-aware": state_aware_crossover,
    "mixed": mixed_crossover,
}
