"""Structured run logging: JSONL traces of GA evolution.

Long experiments need post-hoc inspection without re-running; a
:class:`GenerationLogger` plugs into :meth:`GARun.run`'s ``on_generation``
callback (or the multi-phase driver's ``on_phase``) and appends one JSON
object per generation — cheap, append-only, and safe to ``tail -f``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Optional, Union

from repro.core.stats import GenerationStats

__all__ = ["GenerationLogger", "read_log"]


class GenerationLogger:
    """Append per-generation stats to a JSONL file (or any text stream).

    Usable directly as the ``on_generation`` callback; always returns
    ``None`` so it never terminates the run.  Use together with termination
    criteria via a small lambda when both are wanted::

        logger = GenerationLogger(path)
        stop = Stagnation(50)
        run.run(on_generation=lambda s: (logger(s), stop(s))[1])
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        run_id: str = "run",
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.run_id = run_id
        self.flush_every = flush_every
        self._count = 0
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh: IO[str] = open(path, "a")
            self._owned = True
        else:
            self._fh = target
            self._owned = False
        self._t0 = time.perf_counter()

    def __call__(self, stats: GenerationStats) -> None:
        record = {
            "run": self.run_id,
            "generation": stats.generation,
            "best_total": stats.best_total,
            "mean_total": stats.mean_total,
            "best_goal": stats.best_goal,
            "mean_goal": stats.mean_goal,
            "mean_length": stats.mean_length,
            "solved": stats.solved_count,
            "elapsed_s": round(time.perf_counter() - self._t0, 4),
        }
        self._fh.write(json.dumps(record) + "\n")
        self._count += 1
        if self._count % self.flush_every == 0:
            self._fh.flush()
        return None

    def close(self) -> None:
        self._fh.flush()
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "GenerationLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_log(path: Union[str, Path], run_id: Optional[str] = None) -> list:
    """Load a JSONL trace back, optionally filtered to one run id."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if run_id is None or record.get("run") == run_id:
                records.append(record)
    return records
