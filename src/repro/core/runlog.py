"""Deprecated location of the legacy JSONL run logger.

.. deprecated::
    :class:`GenerationLogger` and :func:`read_log` live in
    :mod:`repro.obs.runlog` now (import them from :mod:`repro.obs`).  This
    stub re-exports them for one release and will then be removed; see the
    deprecation note in docs/architecture.md.
"""

from __future__ import annotations

import warnings

from repro.obs.runlog import GenerationLogger, read_log

__all__ = ["GenerationLogger", "read_log"]

warnings.warn(
    "repro.core.runlog is deprecated; import GenerationLogger and read_log "
    "from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
