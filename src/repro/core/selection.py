"""Selection schemes (paper, Section 3.4.1: tournament of size 2).

All schemes operate on evaluated populations and return a *parent pool* of
the requested size; individuals may (and generally do) appear more than
once.  Returned entries are copies so that downstream mutation of offspring
can never alias a surviving parent.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.individual import Individual

__all__ = [
    "tournament_selection",
    "tournament_winner_indices",
    "roulette_selection",
    "rank_selection",
    "SELECTION_SCHEMES",
]


def _require_evaluated(population: Sequence[Individual]) -> None:
    if not population:
        raise ValueError("population is empty")
    for ind in population:
        # Selection ranks on fitness only; the decoded phenotype is not needed.
        if ind.fitness is None:
            raise ValueError("selection requires an evaluated population")


def tournament_winner_indices(
    fitness: np.ndarray,
    n: int,
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> np.ndarray:
    """Indices of *n* tournament winners over a total-fitness vector.

    One batched ``rng.integers`` draw samples every tournament at once; the
    winner of each row is a vectorized argmax over the gathered fitness
    matrix.  ``np.argmax`` keeps the first maximum, exactly like the old
    per-row loop's strict-greater comparison, so the winners (and the RNG
    stream) are bit-identical to the scalar implementation.  This is the
    index core shared by :func:`tournament_selection` and the batched
    population engine (:mod:`repro.core.popbuffer`).
    """
    if tournament_size < 1:
        raise ValueError(f"tournament size must be >= 1, got {tournament_size}")
    size = int(fitness.shape[0])
    draws = rng.integers(0, size, size=(n, tournament_size))
    winners = np.argmax(fitness[draws], axis=1)
    return draws[np.arange(n), winners]


def tournament_selection(
    population: Sequence[Individual],
    n: int,
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> list:
    """Pick *n* parents by size-``k`` tournaments on total fitness.

    Each tournament draws ``k`` individuals uniformly with replacement and
    keeps the fittest (paper: k=2, "the individual with the higher fitness
    value wins and remains in the population").
    """
    _require_evaluated(population)
    fits = np.array([ind.total_fitness for ind in population], dtype=np.float64)
    picks = tournament_winner_indices(fits, n, rng, tournament_size)
    return [population[i].copy() for i in picks]


def roulette_selection(
    population: Sequence[Individual], n: int, rng: np.random.Generator
) -> list:
    """Fitness-proportionate selection (classic GA baseline, for ablations)."""
    _require_evaluated(population)
    fits = np.array([ind.total_fitness for ind in population], dtype=np.float64)
    fits = fits - min(0.0, float(fits.min()))  # shift to non-negative
    total = float(fits.sum())
    if total <= 0.0:
        probs = np.full(len(population), 1.0 / len(population))
    else:
        probs = fits / total
    picks = rng.choice(len(population), size=n, p=probs)
    return [population[i].copy() for i in picks]


def rank_selection(
    population: Sequence[Individual], n: int, rng: np.random.Generator
) -> list:
    """Linear rank-proportionate selection (for ablations)."""
    _require_evaluated(population)
    fits = np.array([ind.total_fitness for ind in population], dtype=np.float64)
    # Stable argsort assigns ranks exactly like the old sorted()-based loop
    # (ties keep their population order), without per-row Python.
    order = np.argsort(fits, kind="stable")
    ranks = np.empty(len(population), dtype=np.float64)
    ranks[order] = np.arange(1, len(population) + 1, dtype=np.float64)
    probs = ranks / ranks.sum()
    picks = rng.choice(len(population), size=n, p=probs)
    return [population[i].copy() for i in picks]


SELECTION_SCHEMES: dict = {
    "tournament": tournament_selection,
    "roulette": roulette_selection,
    "rank": rank_selection,
}
