"""Selection schemes (paper, Section 3.4.1: tournament of size 2).

All schemes operate on evaluated populations and return a *parent pool* of
the requested size; individuals may (and generally do) appear more than
once.  Returned entries are copies so that downstream mutation of offspring
can never alias a surviving parent.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.individual import Individual

__all__ = ["tournament_selection", "roulette_selection", "rank_selection", "SELECTION_SCHEMES"]


def _require_evaluated(population: Sequence[Individual]) -> None:
    if not population:
        raise ValueError("population is empty")
    for ind in population:
        # Selection ranks on fitness only; the decoded phenotype is not needed.
        if ind.fitness is None:
            raise ValueError("selection requires an evaluated population")


def tournament_selection(
    population: Sequence[Individual],
    n: int,
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> list:
    """Pick *n* parents by size-``k`` tournaments on total fitness.

    Each tournament draws ``k`` individuals uniformly with replacement and
    keeps the fittest (paper: k=2, "the individual with the higher fitness
    value wins and remains in the population").
    """
    _require_evaluated(population)
    if tournament_size < 1:
        raise ValueError(f"tournament size must be >= 1, got {tournament_size}")
    size = len(population)
    draws = rng.integers(0, size, size=(n, tournament_size))
    out = []
    for row in draws:
        best = population[row[0]]
        for idx in row[1:]:
            cand = population[idx]
            if cand.total_fitness > best.total_fitness:
                best = cand
        out.append(best.copy())
    return out


def roulette_selection(
    population: Sequence[Individual], n: int, rng: np.random.Generator
) -> list:
    """Fitness-proportionate selection (classic GA baseline, for ablations)."""
    _require_evaluated(population)
    fits = np.array([ind.total_fitness for ind in population], dtype=np.float64)
    fits = fits - min(0.0, float(fits.min()))  # shift to non-negative
    total = float(fits.sum())
    if total <= 0.0:
        probs = np.full(len(population), 1.0 / len(population))
    else:
        probs = fits / total
    picks = rng.choice(len(population), size=n, p=probs)
    return [population[i].copy() for i in picks]


def rank_selection(
    population: Sequence[Individual], n: int, rng: np.random.Generator
) -> list:
    """Linear rank-proportionate selection (for ablations)."""
    _require_evaluated(population)
    order = sorted(range(len(population)), key=lambda i: population[i].total_fitness)
    ranks = np.empty(len(population), dtype=np.float64)
    for rank, idx in enumerate(order, start=1):
        ranks[idx] = rank
    probs = ranks / ranks.sum()
    picks = rng.choice(len(population), size=n, p=probs)
    return [population[i].copy() for i in picks]


SELECTION_SCHEMES: dict = {
    "tournament": tournament_selection,
    "roulette": roulette_selection,
    "rank": rank_selection,
}
