"""Mutation operators.

The paper's mutation (Section 3.4.3) is uniform per-gene reset: every gene
is independently replaced with a fresh uniform float with probability
``mutation_rate``.  Two structural operators — gene insertion and deletion —
are provided for the variable-length ablations; they are off by default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.individual import Individual

__all__ = ["uniform_reset_mutation", "insertion_mutation", "deletion_mutation"]


def uniform_reset_mutation(
    ind: Individual, rate: float, rng: np.random.Generator
) -> Individual:
    """Replace each gene with a new uniform float with probability *rate*.

    Returns the same object when nothing mutates (genomes are immutable, so
    sharing is safe), avoiding a copy for the common case at rate 0.01.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return ind
    mask = rng.random(len(ind)) < rate
    if not mask.any():
        return ind
    genes = ind.genes.copy()
    genes[mask] = rng.random(int(mask.sum()))
    return Individual(genes=genes)


def insertion_mutation(
    ind: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Individual:
    """Insert one fresh gene at a random position (length +1).

    No-op when the genome is already at ``max_len``.
    """
    if max_len is not None and len(ind) >= max_len:
        return ind
    pos = int(rng.integers(0, len(ind) + 1))
    genes = np.insert(ind.genes, pos, rng.random())
    return Individual(genes=genes)


def deletion_mutation(ind: Individual, rng: np.random.Generator) -> Individual:
    """Delete one gene at a random position (length -1); no-op at length 1."""
    if len(ind) <= 1:
        return ind
    pos = int(rng.integers(0, len(ind)))
    genes = np.delete(ind.genes, pos)
    return Individual(genes=genes)
