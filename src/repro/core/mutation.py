"""Mutation operators.

The paper's mutation (Section 3.4.3) is uniform per-gene reset: every gene
is independently replaced with a fresh uniform float with probability
``mutation_rate``.  Two structural operators — gene insertion and deletion —
are provided for the variable-length ablations; they are off by default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.individual import Individual

__all__ = [
    "sample_uniform_reset",
    "uniform_reset_mutation",
    "insertion_mutation",
    "deletion_mutation",
]


def sample_uniform_reset(
    length: int, rate: float, rng: np.random.Generator
) -> Optional[tuple]:
    """Draw one genome's uniform-reset mutation: ``(indices, values)`` or None.

    This is the single source of the operator's randomness — the mask draw
    (``length`` uniforms) followed, only when the mask hit, by one
    replacement value per hit.  Both the per-individual path below and the
    arena-wide batched path (:mod:`repro.core.popbuffer`) call it, so their
    RNG streams are identical by construction.
    """
    mask = rng.random(length) < rate
    if not mask.any():
        return None
    idx = np.flatnonzero(mask)
    return idx, rng.random(int(idx.size))


def _mutated_child(ind: Individual, genes: np.ndarray, first_changed: int) -> Individual:
    """Build the post-mutation child, carrying incremental-decode lineage.

    Genes before *first_changed* are untouched, so the child keeps the best
    prefix it can: the input's own pending prefix (tightened to the first
    change) when it was an unevaluated offspring, or the input's decoded
    plan when it was an evaluated parent copy.
    """
    if ind.prefix_plan is not None and ind.dirty_from is not None:
        prefix, dirty = ind.prefix_plan, min(ind.dirty_from, first_changed)
    elif ind.decoded is not None:
        prefix, dirty = ind.decoded, first_changed
    else:
        prefix, dirty = None, 0
    if prefix is None or dirty <= 0:
        return Individual(genes=genes)
    return Individual(genes=genes, dirty_from=min(dirty, int(genes.size)), prefix_plan=prefix)


def uniform_reset_mutation(
    ind: Individual, rate: float, rng: np.random.Generator
) -> Individual:
    """Replace each gene with a new uniform float with probability *rate*.

    Returns the same object when nothing mutates (genomes are immutable, so
    sharing is safe), avoiding a copy for the common case at rate 0.01.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return ind
    drawn = sample_uniform_reset(len(ind), rate, rng)
    if drawn is None:
        return ind
    idx, values = drawn
    genes = ind.genes.copy()
    genes[idx] = values
    return _mutated_child(ind, genes, int(idx[0]))


def insertion_mutation(
    ind: Individual,
    rng: np.random.Generator,
    max_len: Optional[int] = None,
) -> Individual:
    """Insert one fresh gene at a random position (length +1).

    No-op when the genome is already at ``max_len``.
    """
    if max_len is not None and len(ind) >= max_len:
        return ind
    pos = int(rng.integers(0, len(ind) + 1))
    genes = np.insert(ind.genes, pos, rng.random())
    return _mutated_child(ind, genes, pos)


def deletion_mutation(ind: Individual, rng: np.random.Generator) -> Individual:
    """Delete one gene at a random position (length -1); no-op at length 1."""
    if len(ind) <= 1:
        return ind
    pos = int(rng.integers(0, len(ind)))
    genes = np.delete(ind.genes, pos)
    return _mutated_child(ind, genes, pos)
