"""Indirect encoding: floating-point genes decoded against the system state.

This is the paper's key representation idea (Section 3.1).  A genome is a
sequence of floats in ``[0, 1)``.  Decoding walks the genome left to right,
maintaining the simulated system state; a gene ``x`` in a state with ``k``
valid operations selects operation ``floor(x * k)`` from the domain's
deterministic valid-operation ordering.  Every decoded plan therefore
consists solely of valid operations — the match fitness of Section 3.3 is
identically 1 and drops out of the fitness function (equation 4).

Decoding stops early when a dead end (no valid operations) is hit, or — when
``truncate_at_goal`` is enabled — as soon as the goal state is reached, so
that trailing genes cannot undo a solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.protocol import PlanningDomain

__all__ = ["DecodedPlan", "DecodeCache", "decode", "gene_to_index"]


def gene_to_index(gene: float, n_valid: int) -> int:
    """Map one gene to an operation index among ``n_valid`` choices.

    [0, 1) is divided into ``n_valid`` equal bins: ``x`` selects
    ``floor(x * n_valid)``.  Genes equal to 1.0 (possible only through
    hand-built genomes; the RNG never produces it) clamp to the last bin.
    """
    if n_valid <= 0:
        raise ValueError(f"no valid operations to select from (n_valid={n_valid})")
    idx = int(gene * n_valid)
    return min(idx, n_valid - 1)


@dataclass(frozen=True)
class DecodedPlan:
    """The phenotype of a genome decoded from a given start state.

    Attributes
    ----------
    operations:
        The decoded valid operation sequence.
    state_keys:
        ``len(operations) + 1`` hashable state identities; ``state_keys[i]``
        is the state *before* gene ``i`` is decoded (so ``state_keys[0]`` is
        the start state and ``state_keys[-1]`` the final state).
    match_keys:
        Same positions, but holding ``domain.decode_key`` values — the
        decode-behaviour equivalence keys that state-aware crossover
        matches on (equal to ``state_keys`` for domains that do not
        override ``decode_key``).
    final_state:
        The full final state object (not just its key).
    used_genes:
        Number of genes actually consumed; less than the genome length when
        decoding stopped at a dead end or at the goal.
    goal_reached:
        Whether the final state satisfies the goal.
    cost:
        Total operation cost of the decoded plan.
    """

    operations: tuple
    state_keys: tuple
    match_keys: tuple
    final_state: object
    used_genes: int
    goal_reached: bool
    cost: float

    def __len__(self) -> int:
        return len(self.operations)


class DecodeCache:
    """Memoises per-state valid-operation lists.

    Decoding re-visits the same states constantly (the whole population
    starts from one state every generation), and ``valid_operations`` can be
    expensive for grounded STRIPS problems; a plain dict keyed on
    ``domain.state_key`` removes that cost.  Bounded to ``max_entries`` with
    wholesale reset — an LRU would cost more bookkeeping than the recompute.
    Keys registered via :meth:`pin` (the start state, the hottest key of
    all) survive resets, and ``evictions`` counts the entries each reset
    actually dropped, so a thrashing cache is visible in the metrics instead
    of silently zeroing its working set mid-run.
    """

    def __init__(self, domain: PlanningDomain, max_entries: int = 200_000) -> None:
        self.domain = domain
        self.max_entries = max_entries
        self._valid: dict = {}
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def pin(self, key: Hashable) -> None:
        """Protect *key*'s entry from wholesale resets."""
        self._pinned.add(key)

    def valid_operations(self, state, key: Hashable) -> Sequence:
        ops = self._valid.get(key)
        if ops is None:
            self.misses += 1
            ops = tuple(self.domain.valid_operations(state))
            if len(self._valid) >= self.max_entries:
                keep = {k: self._valid[k] for k in self._pinned if k in self._valid}
                self.evictions += len(self._valid) - len(keep)
                self._valid.clear()
                self._valid.update(keep)
            self._valid[key] = ops
        else:
            self.hits += 1
        return ops

    def clear(self) -> None:
        self._valid.clear()


def decode(
    genes: np.ndarray,
    domain: PlanningDomain,
    start_state: object,
    truncate_at_goal: bool = True,
    cache: Optional[DecodeCache] = None,
) -> DecodedPlan:
    """Decode *genes* into a valid operation sequence from *start_state*."""
    if cache is None:
        cache = DecodeCache(domain)
    state = start_state
    key = domain.state_key(state)
    cache.pin(key)
    # Domains that don't override decode_key get their match_keys as an
    # alias of state_keys — no duplicate list, no per-gene decode_key call.
    has_dkey = type(domain).decode_key is not PlanningDomain.decode_key
    keys = [key]
    match_keys = [domain.decode_key(state)] if has_dkey else None
    ops = []
    cost = 0.0
    goal = domain.is_goal(state)
    used = 0
    if not (truncate_at_goal and goal):
        # tolist() hoists the whole genome to Python floats in one C call,
        # instead of boxing one np.float64 per gene in the loop.
        gene_list = genes.tolist() if hasattr(genes, "tolist") else list(genes)
        for gene in gene_list:
            valid = cache.valid_operations(state, key)
            k = len(valid)
            if not k:
                break  # dead end: remaining genes are inert
            idx = int(gene * k)
            op = valid[idx if idx < k else k - 1]
            state = domain.apply(state, op)
            key = domain.state_key(state)
            ops.append(op)
            keys.append(key)
            if has_dkey:
                match_keys.append(domain.decode_key(state))
            cost += domain.operation_cost(op)
            used += 1
            goal = domain.is_goal(state)
            if truncate_at_goal and goal:
                break
    keys_t = tuple(keys)
    return DecodedPlan(
        operations=tuple(ops),
        state_keys=keys_t,
        match_keys=tuple(match_keys) if has_dkey else keys_t,
        final_state=state,
        used_genes=used,
        goal_reached=goal,
        cost=cost,
    )


def encode_operations(
    domain: PlanningDomain,
    start_state: object,
    operations: Sequence,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Inverse of :func:`decode`: genes that decode to *operations*.

    Each gene is placed at the centre of its operation's bin (or uniformly
    within the bin when *rng* is given, preserving genetic diversity when
    seeding populations from known plans — the GenPlan-style seeding
    ablation uses this).

    Raises ``ValueError`` if an operation is not valid where it appears.
    """
    state = start_state
    genes = []
    for i, op in enumerate(operations):
        valid = list(domain.valid_operations(state))
        try:
            idx = valid.index(op)
        except ValueError:
            raise ValueError(
                f"operation {domain.describe_operation(op)!r} at index {i} "
                f"is not valid in its state"
            ) from None
        k = len(valid)
        if rng is None:
            gene = (idx + 0.5) / k
        else:
            gene = (idx + float(rng.random())) / k
            gene = min(gene, np.nextafter((idx + 1) / k, 0.0))
        genes.append(gene)
        state = domain.apply(state, op)
    return np.asarray(genes, dtype=np.float64)
