"""Population evaluation strategies: serial and process-parallel.

Fitness evaluation dominates GA runtime (the paper calls it out: "The
fitness evaluation time has a significant impact on the overall execution
time of a GA"), and individuals are independent, so the population is an
embarrassingly parallel workload.  The :class:`ProcessPoolEvaluator`
decomposes it SPMD-style across worker processes — each worker holds its own
copy of the (picklable) domain, receives chunks of genomes, and returns
decoded plans plus fitness values; only small arrays and dataclasses cross
the process boundary.

On a single-core box (or for small populations, where pickling dominates)
use the default :class:`SerialEvaluator`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.core.encoding import DecodeCache, decode
from repro.core.fitness import FitnessFunction
from repro.protocol import PlanningDomain
from repro.core.individual import Individual

__all__ = ["Evaluator", "SerialEvaluator", "ProcessPoolEvaluator", "EvaluationContext"]


class EvaluationContext:
    """Everything needed to evaluate a genome: domain, start state, options."""

    def __init__(
        self,
        domain: PlanningDomain,
        start_state: object,
        fitness: FitnessFunction,
        truncate_at_goal: bool = True,
    ) -> None:
        self.domain = domain
        self.start_state = start_state
        self.fitness = fitness
        self.truncate_at_goal = truncate_at_goal

    def evaluate_genes(self, genes: np.ndarray, cache: Optional[DecodeCache] = None):
        decoded = decode(
            genes,
            self.domain,
            self.start_state,
            truncate_at_goal=self.truncate_at_goal,
            cache=cache,
        )
        return decoded, self.fitness(decoded)


class Evaluator:
    """Strategy interface: fill in ``decoded`` and ``fitness`` in place."""

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialEvaluator(Evaluator):
    """Evaluate the population in-process, sharing one decode cache."""

    def __init__(self) -> None:
        self._cache: Optional[DecodeCache] = None
        self._cache_domain: Optional[PlanningDomain] = None

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        if self._cache is None or self._cache_domain is not context.domain:
            self._cache = DecodeCache(context.domain)
            self._cache_domain = context.domain
        for ind in population:
            if ind.is_evaluated:
                continue
            ind.decoded, ind.fitness = context.evaluate_genes(ind.genes, cache=self._cache)


# -- process-pool machinery ---------------------------------------------------
#
# Worker state is installed once per process via the pool initializer, so the
# domain is pickled once, not once per task.

_WORKER_CONTEXT: Optional[EvaluationContext] = None
_WORKER_CACHE: Optional[DecodeCache] = None


def _init_worker(context: EvaluationContext) -> None:
    global _WORKER_CONTEXT, _WORKER_CACHE
    _WORKER_CONTEXT = context
    _WORKER_CACHE = DecodeCache(context.domain)


def _evaluate_chunk(chunk: List[np.ndarray]):
    assert _WORKER_CONTEXT is not None, "worker not initialised"
    return [_WORKER_CONTEXT.evaluate_genes(genes, cache=_WORKER_CACHE) for genes in chunk]


class ProcessPoolEvaluator(Evaluator):
    """Chunked evaluation across a pool of worker processes.

    The domain and start state are fixed at pool construction (they are
    shipped through the initializer); evaluating against a different context
    raises, because workers would silently use stale state otherwise.  The
    multi-phase driver therefore builds one pool per phase.
    """

    def __init__(
        self,
        context: EvaluationContext,
        processes: Optional[int] = None,
        chunk_size: int = 16,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.context = context
        self.chunk_size = chunk_size
        self.processes = processes or max(1, (os.cpu_count() or 1))
        self._pool = ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_init_worker,
            initargs=(context,),
        )

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        if context is not self.context:
            raise ValueError(
                "ProcessPoolEvaluator is bound to the context it was built "
                "with; create a new evaluator for a new phase/domain"
            )
        pending = [ind for ind in population if not ind.is_evaluated]
        if not pending:
            return
        chunks = [
            [ind.genes for ind in pending[i : i + self.chunk_size]]
            for i in range(0, len(pending), self.chunk_size)
        ]
        results = self._pool.map(_evaluate_chunk, chunks)
        flat = [item for chunk in results for item in chunk]
        for ind, (decoded, fitness) in zip(pending, flat):
            ind.decoded = decoded
            ind.fitness = fitness

    def close(self) -> None:
        self._pool.shutdown(wait=True)
