"""Population evaluation strategies: serial and process-parallel.

Fitness evaluation dominates GA runtime (the paper calls it out: "The
fitness evaluation time has a significant impact on the overall execution
time of a GA"), and individuals are independent, so the population is an
embarrassingly parallel workload.  The :class:`ProcessPoolEvaluator`
decomposes it SPMD-style across worker processes — each worker holds its own
copy of the (picklable) domain, receives chunks of genomes, and returns
decoded plans plus fitness values; only small arrays and dataclasses cross
the process boundary.

On a single-core box (or for small populations, where pickling dominates)
use the default :class:`SerialEvaluator`.

Evaluators are observable: :meth:`Evaluator.bind_observability` attaches a
tracer and metrics registry (done automatically by :class:`~repro.core.ga.
GARun`), after which every ``evaluate`` call emits an ``evaluation-batch``
event and feeds the canonical ``evals`` / ``eval_batch`` / ``decode`` /
``dispatch`` / ``worker_eval`` / ``decode_cache_*`` instruments.  With the
null tracer and no registry the instrumented branches are skipped, keeping
the uninstrumented hot path at its old cost.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decode_engine import DecodeEngine
from repro.core.encoding import DecodeCache, decode
from repro.core.fitness import FitnessFunction, FitnessResult
from repro.core.fused_decode import make_decoder
from repro.core.vector_decode import VectorDecoder
from repro.obs.events import EvaluationBatch
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.protocol import PlanningDomain
from repro.core.individual import Individual

__all__ = [
    "Evaluator",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "EvaluationContext",
    "WorkerPoolError",
    "build_evaluators",
]


def build_evaluators(factory, n: int) -> list:
    """Construct *n* evaluators from *factory*, leak-free on failure.

    If the k-th factory call raises, the k-1 evaluators already built are
    closed before the exception propagates — a bare list comprehension
    would leak their worker pools and shared-memory segments.  Used by the
    island-model and portfolio drivers, which need one evaluator per
    island.
    """
    evaluators: list = []
    try:
        for _ in range(n):
            evaluators.append(factory())
    except BaseException:
        for evaluator in evaluators:
            try:
                evaluator.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        raise
    return evaluators


class WorkerPoolError(RuntimeError):
    """The worker pool is unusable: workers died or never came up.

    Raised instead of the opaque ``BrokenProcessPool`` that used to escape
    from deep inside ``pool.map``, with a message naming the domain and the
    likely cause.  Recoverable — :class:`~repro.core.resilient.
    ResilientEvaluator` catches it, rebuilds the pool and retries (or
    degrades to :class:`SerialEvaluator`)."""


class EvaluationContext:
    """Everything needed to evaluate a genome: domain, start state, options.

    ``memoize`` selects the incremental decode engine (DESIGN.md §9) over
    the naive per-genome decode; results are bit-identical either way.  It
    is wired from ``GAConfig.decode_engine`` and defaults to on.

    ``vector`` selects the whole-population vectorised decode (DESIGN.md
    §12), wired from ``GAConfig.vector_decode``: ``None`` auto-enables it
    when the domain exposes a kernel, ``True`` demands a kernel (raising
    otherwise), ``False`` forces the object path.  Only buffer-based
    evaluation consults it; the list-of-Individuals API always decodes
    through the object engine.

    ``backend`` selects the vector path's walk implementation (DESIGN.md
    §16), wired from ``GAConfig.decode_backend``: ``None`` auto-probes
    numba for the fused compiled backend, ``"numpy"`` / ``"fused"`` force
    one.  Consulted wherever a decoder is built — the serial evaluator,
    each pool worker's initialiser, and the service layer's leases.
    """

    def __init__(
        self,
        domain: PlanningDomain,
        start_state: object,
        fitness: FitnessFunction,
        truncate_at_goal: bool = True,
        memoize: bool = True,
        vector: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.domain = domain
        self.start_state = start_state
        self.fitness = fitness
        self.truncate_at_goal = truncate_at_goal
        self.memoize = memoize
        self.vector = vector
        self.backend = backend

    def resolve_vector(self) -> bool:
        """Whether buffer evaluation should run the vectorised decode path."""
        if self.vector is False:
            return False
        if not self.memoize:
            if self.vector:
                raise ValueError(
                    "vector=True requires memoize=True (GAConfig already "
                    "enforces vector_decode => decode_engine)"
                )
            return False
        kernel = self.domain.kernel()
        if kernel is None:
            if self.vector:
                raise ValueError(
                    f"vector_decode=True but domain {self.domain.name!r} has no "
                    f"kernel (domain.kernel() returned None); use "
                    f"vector_decode=None to fall back automatically"
                )
            return False
        return True

    def decode_genes(self, genes: np.ndarray, cache: Optional[DecodeCache] = None):
        return decode(
            genes,
            self.domain,
            self.start_state,
            truncate_at_goal=self.truncate_at_goal,
            cache=cache,
        )

    def evaluate_genes(self, genes: np.ndarray, cache: Optional[DecodeCache] = None):
        decoded = self.decode_genes(genes, cache=cache)
        return decoded, self.fitness(decoded)


class Evaluator:
    """Strategy interface: fill in ``decoded`` and ``fitness`` in place."""

    # Observability is off by default; class attributes keep subclasses'
    # __init__ free of boilerplate.
    _tracer: Tracer = NULL_TRACER
    _metrics: Optional[MetricsRegistry] = None
    _scope: str = ""

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        raise NotImplementedError

    def evaluate_buffer(self, buffer, context: EvaluationContext) -> None:
        """Fill in the pending rows of a :class:`~repro.core.popbuffer.
        PopulationBuffer`.

        The base implementation bridges to the object API — pending rows
        are materialised as Individuals, evaluated, and written back — so
        any custom evaluator works with the batched engine unchanged.
        Subclasses override it with array-native paths.
        """
        pending = [int(i) for i in np.flatnonzero(~buffer.evaluated)]
        if not pending:
            return
        individuals = [buffer.materialize(i) for i in pending]
        self.evaluate(individuals, context)
        for i, ind in zip(pending, individuals):
            buffer.set_result(i, ind.decoded, ind.fitness)

    def bind_observability(
        self,
        tracer: Tracer,
        metrics: Optional[MetricsRegistry],
        scope: str = "",
    ) -> None:
        """Attach the tracer/metrics this evaluator reports through."""
        self._tracer = tracer
        self._metrics = metrics
        self._scope = scope

    @property
    def instrumented(self) -> bool:
        return self._metrics is not None or self._tracer.enabled

    def cache_info(self) -> Optional[Tuple[int, int]]:
        """Cumulative decode-cache ``(hits, misses)``, or ``None`` if unknown."""
        return None

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialEvaluator(Evaluator):
    """Evaluate the population in-process, sharing one decode engine.

    With ``context.memoize`` (the default) evaluation goes through a
    persistent :class:`~repro.core.decode_engine.DecodeEngine` — transition
    memoisation, dirty-prefix re-decode and fingerprint dedup, bit-identical
    to the naive path.  A pre-built engine can be injected to share caches
    across evaluators (the island model does this); otherwise one is created
    lazily and kept for the evaluator's lifetime.  With ``memoize`` off the
    legacy per-domain :class:`~repro.core.encoding.DecodeCache` path runs.
    """

    def __init__(self, engine: Optional[DecodeEngine] = None) -> None:
        self._cache: Optional[DecodeCache] = None
        self._cache_domain: Optional[PlanningDomain] = None
        self._engine = engine
        self._vdec: Optional[VectorDecoder] = None
        self._vdec_backend: Optional[str] = None

    def _vector_decoder(self, context: EvaluationContext) -> Optional[VectorDecoder]:
        """The (cached) vector decoder for *context*, or None for object path."""
        resolve = getattr(context, "resolve_vector", None)
        if resolve is None or not resolve():
            return None
        kernel = context.domain.kernel()
        backend = getattr(context, "backend", None)
        if (
            self._vdec is None
            or self._vdec.kernel is not kernel
            or self._vdec_backend != backend
        ):
            self._vdec = make_decoder(kernel, backend)
            self._vdec_backend = backend
            # JIT warmup happened inside make_decoder, outside every eval
            # timer; surface the compile cost as its own counter.
            ms = getattr(self._vdec, "jit_compile_ms", 0.0)
            if ms and self._metrics is not None:
                self._metrics.counter("jit_compile_ms").add(ms)
        return self._vdec

    def vector_counters(self) -> Optional[dict]:
        """Cumulative vector-decode counters, or ``None`` on the object path."""
        return self._vdec.counters() if self._vdec is not None else None

    def cache_info(self) -> Optional[Tuple[int, int]]:
        if self._engine is not None and self._engine.active:
            return self._engine.cache_info()
        if self._cache is None:
            return None
        return self._cache.hits, self._cache.misses

    def engine_counters(self) -> Optional[dict]:
        """Cumulative decode-engine counters, or ``None`` on the naive path."""
        if self._engine is None or not self._engine.active:
            return None
        return self._engine.counters()

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        if getattr(context, "memoize", True):
            engine = self._engine
            if engine is None:
                engine = self._engine = DecodeEngine()
            engine.bind(context)
            if not self.instrumented:
                fitness_fn = context.fitness
                for ind in population:
                    if ind.is_evaluated:
                        continue
                    ind.decoded, ind.fitness = engine.evaluate_genes(
                        ind.genes, fitness_fn, ind.prefix_plan, ind.dirty_from
                    )
                    ind.prefix_plan = None
                    ind.dirty_from = None
                return
            self._evaluate_engine_instrumented(population, context, engine)
            return
        if self._cache is None or self._cache_domain is not context.domain:
            self._cache = DecodeCache(context.domain)
            self._cache_domain = context.domain
        if not self.instrumented:
            for ind in population:
                if ind.is_evaluated:
                    continue
                ind.decoded, ind.fitness = context.evaluate_genes(ind.genes, cache=self._cache)
            return
        self._evaluate_instrumented(population, context)

    def evaluate_buffer(self, buffer, context: EvaluationContext) -> None:
        """Array-native serial path: decode rows straight off the arena.

        When the context resolves the vectorised decode (DESIGN.md §12),
        the whole pending set is decoded in numpy by a
        :class:`~repro.core.vector_decode.VectorDecoder` — bit-identical
        results, no per-genome Python loop at all.  Otherwise this runs the
        same engine pipeline as :meth:`evaluate` over zero-copy genome
        views — no Individual construction, no per-row validation — with
        identical results (same rows, same order, same memo traffic).  The
        naive (``memoize`` off) path bridges through the base
        implementation, which is already loop-shaped.  So does any subclass
        that overrides :meth:`evaluate` — its override keeps seeing every
        evaluation, instead of being silently bypassed in batched runs.
        """
        if type(self).evaluate is not SerialEvaluator.evaluate or not getattr(
            context, "memoize", True
        ):
            Evaluator.evaluate_buffer(self, buffer, context)
            return
        vdec = self._vector_decoder(context)
        if vdec is not None:
            # keep_plans=True regardless of the buffer's flag: in-process
            # there is no shipping cost, and the stored plans feed the next
            # generation's dirty-prefix hints (matching the engine path).
            if not self.instrumented:
                vdec.evaluate_pending(buffer, context, keep_plans=True)
            else:
                self._evaluate_buffer_vector_instrumented(buffer, context, vdec)
            return
        engine = self._engine
        if engine is None:
            engine = self._engine = DecodeEngine()
        engine.bind(context)
        pending = np.flatnonzero(~buffer.evaluated)
        if pending.size == 0:
            return
        if not self.instrumented:
            fitness_fn = context.fitness
            for i in pending:
                i = int(i)
                prefix, dirty = buffer.prefix_hint(i)
                decoded, fitness = engine.evaluate_genes(
                    buffer.view(i), fitness_fn, prefix, dirty
                )
                buffer.set_result(i, decoded, fitness)
            return
        self._evaluate_buffer_engine_instrumented(buffer, pending, context, engine)

    def _evaluate_buffer_engine_instrumented(
        self,
        buffer,
        pending: np.ndarray,
        context: EvaluationContext,
        engine: DecodeEngine,
    ) -> None:
        """Buffer twin of :meth:`_evaluate_engine_instrumented`."""
        before = engine.counters()
        fitness_fn = context.fitness
        decode_s = 0.0
        fitness_s = 0.0
        n_decoded = 0
        t0 = time.perf_counter()
        for i in pending:
            i = int(i)
            genes = buffer.view(i)
            fp = genes.tobytes()
            hit = engine.lookup(fp)
            if hit is not None:
                buffer.set_result(i, hit[0], hit[1])
            else:
                prefix, dirty = buffer.prefix_hint(i)
                t1 = time.perf_counter()
                decoded = engine.decode(genes, prefix, dirty)
                t2 = time.perf_counter()
                fitness = fitness_fn(decoded)
                t3 = time.perf_counter()
                engine.store(fp, decoded, fitness)
                buffer.set_result(i, decoded, fitness)
                decode_s += t2 - t1
                fitness_s += t3 - t2
                n_decoded += 1
        seconds = time.perf_counter() - t0
        after = engine.counters()
        delta = {k: after[k] - before[k] for k in after}
        if self._metrics is not None:
            m = self._metrics
            m.counter("evals").add(int(pending.size))
            m.timer("eval_batch").record(seconds)
            if n_decoded:
                m.timer("decode").record(decode_s, count=n_decoded)
                m.timer("fitness").record(fitness_s, count=n_decoded)
            m.counter("decode_cache_hits").add(delta["decode_cache_hits"])
            m.counter("decode_cache_misses").add(delta["decode_cache_misses"])
            m.counter("transition_cache_hits").add(delta["transition_cache_hits"])
            m.counter("transition_cache_misses").add(delta["transition_cache_misses"])
            m.counter("evals_skipped").add(delta["evals_skipped"])
            m.counter("genes_reused").add(delta["genes_reused"])
            for name in (
                "decode_cache_evictions",
                "transition_cache_evictions",
                "decode_fallbacks",
                "memo_evictions",
            ):
                if delta[name]:
                    m.counter(name).add(delta[name])
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluationBatch(
                    scope=self._scope,
                    n_evaluated=int(pending.size),
                    seconds=seconds,
                    mode="serial",
                    chunks=1,
                    cache_hits=delta["decode_cache_hits"],
                    cache_misses=delta["decode_cache_misses"],
                    evals_skipped=delta["evals_skipped"],
                    genes_reused=delta["genes_reused"],
                )
            )

    def _evaluate_buffer_vector_instrumented(
        self,
        buffer,
        context: EvaluationContext,
        vdec: VectorDecoder,
    ) -> None:
        """The vector path with batch timing and decoder counters."""
        before = vdec.counters()
        t0 = time.perf_counter()
        n = vdec.evaluate_pending(buffer, context, keep_plans=True)
        seconds = time.perf_counter() - t0
        if not n:
            return
        after = vdec.counters()
        delta = {k: after[k] - before[k] for k in after}
        if self._metrics is not None:
            m = self._metrics
            m.counter("evals").add(n)
            m.timer("eval_batch").record(seconds)
            m.timer("decode").record(seconds, count=n)
            m.counter("vector_rows").add(delta["vector_rows"])
            m.counter("vector_genes").add(delta["vector_genes"])
            m.counter("genes_reused").add(delta["vector_genes_reused"])
            for name in (
                "vector_prefix_fallbacks",
                "vector_kernel_resets",
                "fused_rows_decoded",
                "jit_compile_ms",
            ):
                if delta.get(name):
                    m.counter(name).add(delta[name])
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluationBatch(
                    scope=self._scope,
                    n_evaluated=n,
                    seconds=seconds,
                    mode="serial",
                    chunks=1,
                    genes_reused=delta["vector_genes_reused"],
                )
            )

    def _evaluate_engine_instrumented(
        self,
        population: Sequence[Individual],
        context: EvaluationContext,
        engine: DecodeEngine,
    ) -> None:
        """The engine path with decode/fitness split timing and counters."""
        pending = [ind for ind in population if not ind.is_evaluated]
        if not pending:
            return
        before = engine.counters()
        fitness_fn = context.fitness
        decode_s = 0.0
        fitness_s = 0.0
        n_decoded = 0
        t0 = time.perf_counter()
        for ind in pending:
            fp = ind.genes.tobytes()
            hit = engine.lookup(fp)
            if hit is not None:
                ind.decoded, ind.fitness = hit
            else:
                t1 = time.perf_counter()
                decoded = engine.decode(ind.genes, ind.prefix_plan, ind.dirty_from)
                t2 = time.perf_counter()
                fitness = fitness_fn(decoded)
                t3 = time.perf_counter()
                engine.store(fp, decoded, fitness)
                ind.decoded, ind.fitness = decoded, fitness
                decode_s += t2 - t1
                fitness_s += t3 - t2
                n_decoded += 1
            ind.prefix_plan = None
            ind.dirty_from = None
        seconds = time.perf_counter() - t0
        after = engine.counters()
        delta = {k: after[k] - before[k] for k in after}
        if self._metrics is not None:
            m = self._metrics
            m.counter("evals").add(len(pending))
            m.timer("eval_batch").record(seconds)
            if n_decoded:
                m.timer("decode").record(decode_s, count=n_decoded)
                m.timer("fitness").record(fitness_s, count=n_decoded)
            m.counter("decode_cache_hits").add(delta["decode_cache_hits"])
            m.counter("decode_cache_misses").add(delta["decode_cache_misses"])
            m.counter("transition_cache_hits").add(delta["transition_cache_hits"])
            m.counter("transition_cache_misses").add(delta["transition_cache_misses"])
            m.counter("evals_skipped").add(delta["evals_skipped"])
            m.counter("genes_reused").add(delta["genes_reused"])
            for name in (
                "decode_cache_evictions",
                "transition_cache_evictions",
                "decode_fallbacks",
                "memo_evictions",
            ):
                if delta[name]:
                    m.counter(name).add(delta[name])
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluationBatch(
                    scope=self._scope,
                    n_evaluated=len(pending),
                    seconds=seconds,
                    mode="serial",
                    chunks=1,
                    cache_hits=delta["decode_cache_hits"],
                    cache_misses=delta["decode_cache_misses"],
                    evals_skipped=delta["evals_skipped"],
                    genes_reused=delta["genes_reused"],
                )
            )

    def _evaluate_instrumented(
        self, population: Sequence[Individual], context: EvaluationContext
    ) -> None:
        """Same work as the naive :meth:`evaluate` path, with split timing."""
        cache = self._cache
        assert cache is not None
        pending = [ind for ind in population if not ind.is_evaluated]
        if not pending:
            return
        hits0, misses0, evict0 = cache.hits, cache.misses, cache.evictions
        decode_s = 0.0
        fitness_s = 0.0
        t0 = time.perf_counter()
        for ind in pending:
            t1 = time.perf_counter()
            decoded = context.decode_genes(ind.genes, cache=cache)
            t2 = time.perf_counter()
            ind.decoded, ind.fitness = decoded, context.fitness(decoded)
            t3 = time.perf_counter()
            decode_s += t2 - t1
            fitness_s += t3 - t2
        seconds = time.perf_counter() - t0
        hits, misses = cache.hits - hits0, cache.misses - misses0
        if self._metrics is not None:
            m = self._metrics
            m.counter("evals").add(len(pending))
            m.timer("eval_batch").record(seconds)
            m.timer("decode").record(decode_s, count=len(pending))
            m.timer("fitness").record(fitness_s, count=len(pending))
            m.counter("decode_cache_hits").add(hits)
            m.counter("decode_cache_misses").add(misses)
            if cache.evictions > evict0:
                m.counter("decode_cache_evictions").add(cache.evictions - evict0)
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluationBatch(
                    scope=self._scope,
                    n_evaluated=len(pending),
                    seconds=seconds,
                    mode="serial",
                    chunks=1,
                    cache_hits=hits,
                    cache_misses=misses,
                )
            )


# -- process-pool machinery ---------------------------------------------------
#
# Worker state is installed once per process via the pool initializer, so the
# domain is pickled once, not once per task.  Workers keep their decode
# engine / cache for the life of the process, so the transition tables stay
# warm across batches; a pool restart rebuilds them through the same
# initializer (cold but correct).

_WORKER_CONTEXT: Optional[EvaluationContext] = None
_WORKER_CACHE: Optional[DecodeCache] = None
_WORKER_ENGINE: Optional[DecodeEngine] = None
_WORKER_VDEC: Optional[VectorDecoder] = None


def _init_worker(context: EvaluationContext) -> None:
    global _WORKER_CONTEXT, _WORKER_CACHE, _WORKER_ENGINE, _WORKER_VDEC
    _WORKER_CONTEXT = context
    _WORKER_VDEC = None
    if getattr(context, "memoize", True):
        # Transition memoisation only: prefix plans live with the parent
        # (shipping them per task would dwarf the savings), and dedup runs
        # parent-side where the memo sees the whole population.
        _WORKER_ENGINE = DecodeEngine(prefix=False, dedup=False)
        _WORKER_ENGINE.bind(context)
        _WORKER_CACHE = None
        # Each worker builds its own kernel (tables never cross the process
        # boundary — the domain pickles without them) and keeps it warm for
        # the life of the process, like the engine's transition tables.
        # make_decoder warms the fused backend's JIT here, in the pool
        # initialiser, so compile time never lands inside a chunk timing.
        resolve = getattr(context, "resolve_vector", None)
        if resolve is not None and resolve():
            _WORKER_VDEC = make_decoder(
                context.domain.kernel(), getattr(context, "backend", None)
            )
    else:
        _WORKER_CACHE = DecodeCache(context.domain)
        _WORKER_ENGINE = None


def _evaluate_chunk(chunk: List[np.ndarray]):
    """Evaluate one chunk in a worker.

    Returns ``(results, seconds, stats)`` — the per-chunk wall time and a
    ``(decode_cache_hits, decode_cache_misses, transition_cache_hits,
    transition_cache_misses)`` delta tuple measured inside the worker, so
    the parent can aggregate true in-worker cost separately from dispatch
    overhead.
    """
    assert _WORKER_CONTEXT is not None, "worker not initialised"
    context = _WORKER_CONTEXT
    engine = _WORKER_ENGINE
    t0 = time.perf_counter()
    if engine is not None:
        c0 = engine.counters()
        fitness_fn = context.fitness
        results = []
        for genes in chunk:
            decoded = engine.decode(genes)
            results.append((decoded, fitness_fn(decoded)))
        seconds = time.perf_counter() - t0
        c1 = engine.counters()
        stats = (
            c1["decode_cache_hits"] - c0["decode_cache_hits"],
            c1["decode_cache_misses"] - c0["decode_cache_misses"],
            c1["transition_cache_hits"] - c0["transition_cache_hits"],
            c1["transition_cache_misses"] - c0["transition_cache_misses"],
        )
        return results, seconds, stats
    cache = _WORKER_CACHE
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    results = [context.evaluate_genes(genes, cache=cache) for genes in chunk]
    seconds = time.perf_counter() - t0
    hits = (cache.hits - hits0) if cache is not None else 0
    misses = (cache.misses - misses0) if cache is not None else 0
    return results, seconds, (hits, misses, 0, 0)


# -- zero-copy shared-memory dispatch (DESIGN.md §11) --------------------------
#
# The parent publishes one generation's pending genomes into a shared-memory
# segment — header, per-row start/length index arrays, the packed gene arena,
# and result arrays the workers fill in place — and ships each worker only a
# (segment name, row range) pair.  Segment layout, all 8-byte aligned:
#
#   int64[4]   header: n_rows, genes_len, need_plans, epoch
#   int64[n]   starts   (row i's genes begin at genes[starts[i]])
#   int64[n]   lengths
#   f64[L]     genes    (L = genes_len)
#   f64[n]     total    ┐
#   f64[n]     goal     │ written by workers, disjoint row ranges
#   f64[n]     cost     │
#   int64[n]   reached  │
#   int64[n]   plan_len ┘
#
# Workers attach by name once and cache the mapping; results cross back as
# in-place array writes, so the only pickled return is the per-chunk timing
# tuple (plus decoded plans when the crossover needs them).

_SHM_HEADER_BYTES = 32

_WORKER_SHM: dict = {}


def _shm_layout(buf, n: int, genes_len: int) -> tuple:
    """Numpy views over one segment's regions (shared parent/worker logic)."""
    starts = np.frombuffer(buf, np.int64, n, offset=_SHM_HEADER_BYTES)
    lengths = np.frombuffer(buf, np.int64, n, offset=_SHM_HEADER_BYTES + 8 * n)
    genes = np.frombuffer(buf, np.float64, genes_len, offset=_SHM_HEADER_BYTES + 16 * n)
    base = _SHM_HEADER_BYTES + 16 * n + 8 * genes_len
    total = np.frombuffer(buf, np.float64, n, offset=base)
    goal = np.frombuffer(buf, np.float64, n, offset=base + 8 * n)
    cost = np.frombuffer(buf, np.float64, n, offset=base + 16 * n)
    reached = np.frombuffer(buf, np.int64, n, offset=base + 24 * n)
    plan_len = np.frombuffer(buf, np.int64, n, offset=base + 32 * n)
    return starts, lengths, genes, total, goal, cost, reached, plan_len


def _shm_segment_bytes(n: int, genes_len: int) -> int:
    return _SHM_HEADER_BYTES + 16 * n + 8 * genes_len + 40 * n


def _attach_worker_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to (and cache) the parent's segment inside a worker process.

    The attachment should not register with the resource tracker: the
    parent owns the segment's lifetime.  Python 3.13 has ``track=False``
    for this; on older versions the attach-side registration lands in the
    tracker the worker inherited by fork, where it is a duplicate of the
    parent's own registration (set semantics) and therefore harmless — the
    parent's ``unlink()`` clears it.  Deliberately no ``unregister()``
    workaround: with a fork-shared tracker that would remove the *parent's*
    registration and make the later unlink complain.
    """
    shm = _WORKER_SHM.get(name)
    if shm is None:
        # A new name means the parent recreated the segment (capacity growth
        # or restart); stale attachments can be dropped.
        for old_name in list(_WORKER_SHM):
            _WORKER_SHM.pop(old_name).close()
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            shm = shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = shm
    return shm


def _evaluate_shm_chunk(name: str, start: int, stop: int):
    """Evaluate rows ``[start, stop)`` of the published generation in place.

    Results go straight into the segment's packed arrays; the return value
    carries only ``(seconds, cache-stats, plans-or-None)``.
    """
    assert _WORKER_CONTEXT is not None, "worker not initialised"
    context = _WORKER_CONTEXT
    shm = _attach_worker_shm(name)
    header = np.frombuffer(shm.buf, np.int64, 4)
    n, genes_len, need_plans = int(header[0]), int(header[1]), bool(header[2])
    starts, lengths, genes, total, goal, cost, reached, plan_len = _shm_layout(
        shm.buf, n, genes_len
    )
    engine = _WORKER_ENGINE
    fitness_fn = context.fitness
    plans: Optional[list] = [] if need_plans else None
    t0 = time.perf_counter()
    vdec = _WORKER_VDEC
    if vdec is not None:
        # Vectorised decode of this worker's whole row range in one shot.
        # Prefix hints never reach workers (plans live with the parent), so
        # every row decodes from gene 0; plan objects are built only when
        # the crossover needs them shipped back.
        vdec.bind(context)
        v_total, v_goal, v_costf, v_reached, v_used, v_plans = vdec.decode_rows(
            genes, starts[start:stop], lengths[start:stop], need_plans, None
        )
        sl = slice(start, stop)
        total[sl] = v_total
        goal[sl] = v_goal
        cost[sl] = v_costf
        reached[sl] = v_reached
        plan_len[sl] = v_used  # every consumed gene is one operation
        if plans is not None:
            plans.extend(v_plans)
        seconds = time.perf_counter() - t0
        return seconds, (0, 0, 0, 0), plans
    if engine is not None:
        c0 = engine.counters()
        for j in range(start, stop):
            g = genes[starts[j] : starts[j] + lengths[j]]
            decoded = engine.decode(g)
            fit = fitness_fn(decoded)
            total[j] = fit.total
            goal[j] = fit.goal
            cost[j] = fit.cost
            reached[j] = 1 if fit.goal_reached else 0
            plan_len[j] = len(decoded.operations)
            if plans is not None:
                plans.append(decoded)
        seconds = time.perf_counter() - t0
        c1 = engine.counters()
        stats = (
            c1["decode_cache_hits"] - c0["decode_cache_hits"],
            c1["decode_cache_misses"] - c0["decode_cache_misses"],
            c1["transition_cache_hits"] - c0["transition_cache_hits"],
            c1["transition_cache_misses"] - c0["transition_cache_misses"],
        )
        return seconds, stats, plans
    cache = _WORKER_CACHE
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    for j in range(start, stop):
        g = genes[starts[j] : starts[j] + lengths[j]]
        decoded, fit = context.evaluate_genes(g, cache=cache)
        total[j] = fit.total
        goal[j] = fit.goal
        cost[j] = fit.cost
        reached[j] = 1 if fit.goal_reached else 0
        plan_len[j] = len(decoded.operations)
        if plans is not None:
            plans.append(decoded)
    seconds = time.perf_counter() - t0
    hits = (cache.hits - hits0) if cache is not None else 0
    misses = (cache.misses - misses0) if cache is not None else 0
    return seconds, (hits, misses, 0, 0), plans


class ProcessPoolEvaluator(Evaluator):
    """Chunked evaluation across a pool of worker processes.

    The pool's workers are initialised with one :class:`EvaluationContext`
    (the domain and start state ship through the pool initializer).  The
    context can be given up front, or left ``None`` to bind lazily on the
    first :meth:`evaluate` call — which is what lets zero-argument evaluator
    factories (``GAPlanner(evaluator="process")``, the multi-phase driver's
    per-phase factories) build pools before the start state is known.
    Evaluating against a *different* context afterwards raises, because
    workers would silently use stale state otherwise; build one evaluator
    per phase/start-state instead.

    ``chunk_size=None`` (the default) derives the chunk size per batch as
    ``ceil(pending / (processes * 4))`` — four waves per worker, so small
    populations stop paying one-genome-per-chunk dispatch overhead while
    load balancing survives uneven chunks; pass an int to pin it.  With
    ``shm`` (default on) buffer-based evaluation publishes each
    generation's genomes through one shared-memory segment and workers
    receive only row ranges (DESIGN.md §11); the object-list
    :meth:`evaluate` API always uses pickled dispatch.
    """

    def __init__(
        self,
        context: Optional[EvaluationContext] = None,
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
        timeout_s: Optional[float] = None,
        shm: bool = True,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.context = context
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.processes = processes or max(1, (os.cpu_count() or 1))
        self.shm = bool(shm)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._zombie_segments: List[shared_memory.SharedMemory] = []
        self._epoch = 0
        self._cache_hits = 0
        self._cache_misses = 0
        # Parent-side fingerprint memo (layer 3): duplicates within and
        # across batches are never dispatched.  The pool is bound to one
        # context for its whole life, so the memo never goes stale — it
        # deliberately survives restart(), when the workers' transition
        # tables are rebuilt cold.
        self._memo: dict = {}
        self._memo_max = 100_000
        self._evals_skipped = 0
        if context is not None:
            self._start_pool(context)

    def _start_pool(self, context: EvaluationContext) -> None:
        # Probe picklability up front: an unpicklable domain would otherwise
        # surface later as an opaque BrokenProcessPool from inside pool.map
        # (worker initializers crash before running a single task).  The
        # extra pickle costs one domain serialisation per pool — the same
        # work the initializer ships anyway.
        try:
            pickle.dumps(context)
        except Exception as exc:
            raise WorkerPoolError(
                f"cannot ship the evaluation context to worker processes: domain "
                f"{type(context.domain).__name__} does not pickle ({exc}); use "
                f"SerialEvaluator, or make the domain picklable (no lambdas, open "
                f"files or thread locks in its state)"
            ) from exc
        self.context = context
        self._pool = ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_init_worker,
            initargs=(context,),
        )

    def ensure_started(self, context: EvaluationContext) -> None:
        """Bind lazily to *context* and spin the pool up if not yet running."""
        if self.context is None:
            self._start_pool(context)
        elif context is not self.context:
            raise ValueError(
                "ProcessPoolEvaluator is bound to the context it first evaluated "
                "with; create a new evaluator for a new phase/domain"
            )
        elif self._pool is None:
            self._start_pool(self.context)

    def restart(self) -> None:
        """Tear down the (possibly broken or hung) pool and build a fresh one.

        Does not wait for stuck workers: outstanding futures are cancelled
        and dead processes abandoned, which is the only safe move after a
        ``BrokenProcessPool`` or a batch timeout.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        # The old segment may hold garbage from the failed batch (and dead
        # workers' attachments die with them); publish into a fresh one.
        self._release_segment()
        if self.context is not None:
            self._start_pool(self.context)

    def _effective_chunk_size(self, count: int) -> int:
        """Explicit ``chunk_size`` if given, else auto-size to 4 waves/worker."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(count / (self.processes * 4)))

    def _ensure_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        """The publish target, recreated (fresh name) when capacity is short."""
        if self._segment is not None and self._segment.size >= nbytes:
            return self._segment
        self._release_segment()
        # Over-allocate so genome-length drift doesn't recreate every
        # generation; names are kernel-generated, so never reused.
        self._segment = shared_memory.SharedMemory(create=True, size=max(64, nbytes + nbytes // 4))
        return self._segment

    def _release_segment(self) -> None:
        # Zombies are already-unlinked segments whose mapping was pinned by
        # numpy views at release time (a failed batch's traceback keeps the
        # evaluate_buffer frame alive); retry closing them now that the
        # pinning frames have likely died.
        for zombie in self._zombie_segments[:]:
            try:
                zombie.close()
                self._zombie_segments.remove(zombie)
            except BufferError:  # pragma: no cover - still pinned
                pass
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views pinned by a traceback
            # Unlinked already (no /dev/shm leak), so just park it; closing
            # here would also fail again in __del__ as an unraisable error.
            self._zombie_segments.append(segment)

    def submit(self, fn: Callable, *args) -> Future:
        """Run *fn(*args)* on one worker — health probes and fault injection."""
        if self._pool is None:
            raise RuntimeError("pool not started; evaluate once or call ensure_started()")
        return self._pool.submit(fn, *args)

    def cache_info(self) -> Optional[Tuple[int, int]]:
        """Aggregated worker-side decode-cache stats (instrumented runs only)."""
        if not (self._cache_hits or self._cache_misses):
            return None
        return self._cache_hits, self._cache_misses

    def evaluate(self, population: Sequence[Individual], context: EvaluationContext) -> None:
        self.ensure_started(context)
        assert self._pool is not None
        pending = [ind for ind in population if not ind.is_evaluated]
        if not pending:
            return
        memoize = getattr(context, "memoize", True)
        if memoize:
            # Dedup the batch before dispatch: each distinct genome crosses
            # the process boundary (and is decoded) exactly once; memo hits
            # from earlier batches are not dispatched at all.
            fingerprints: List[bytes] = []
            resolved: dict = {}
            dispatch_fps: List[bytes] = []
            dispatch_genes: List[np.ndarray] = []
            for ind in pending:
                fp = ind.genes.tobytes()
                fingerprints.append(fp)
                hit = self._memo.get(fp)
                if hit is not None and hit[0] is None:
                    # Packed shm result without a decoded plan: Individuals
                    # need the phenotype, so treat it as a miss.
                    hit = None
                if hit is not None:
                    resolved[fp] = hit
                elif fp not in resolved:
                    resolved[fp] = None  # claimed; filled after dispatch
                    dispatch_fps.append(fp)
                    dispatch_genes.append(ind.genes)
            skipped = len(pending) - len(dispatch_genes)
            size = self._effective_chunk_size(len(dispatch_genes))
            chunks = [
                dispatch_genes[i : i + size] for i in range(0, len(dispatch_genes), size)
            ]
        else:
            skipped = 0
            size = self._effective_chunk_size(len(pending))
            chunks = [
                [ind.genes for ind in pending[i : i + size]]
                for i in range(0, len(pending), size)
            ]
        t0 = time.perf_counter()
        try:
            # ``timeout_s`` bounds the whole batch: map's iterator raises
            # TimeoutError measured from the map() call, so one hung worker
            # cannot wedge the run.  TimeoutError propagates as-is (the
            # pool object itself is still consistent, merely busy).
            outputs = list(self._pool.map(_evaluate_chunk, chunks, timeout=self.timeout_s))
        except BrokenProcessPool as exc:
            raise WorkerPoolError(
                f"worker pool broke while evaluating {len(pending)} individuals on "
                f"domain {type(context.domain).__name__}: worker process(es) died "
                f"(crash, OOM kill, or an initializer error); call restart() and "
                f"retry, or fall back to SerialEvaluator — ResilientEvaluator "
                f"automates both"
            ) from exc
        seconds = time.perf_counter() - t0
        # No partial writes: individuals are only mutated after every chunk
        # returned, so a failed batch leaves the population un-evaluated and
        # safe to retry.
        flat = [item for chunk_results, _, _ in outputs for item in chunk_results]
        if memoize:
            if len(self._memo) >= self._memo_max:
                self._memo.clear()
            for fp, result in zip(dispatch_fps, flat):
                resolved[fp] = result
                self._memo[fp] = result
            self._evals_skipped += skipped
            for ind, fp in zip(pending, fingerprints):
                ind.decoded, ind.fitness = resolved[fp]
                ind.prefix_plan = None
                ind.dirty_from = None
        else:
            for ind, (decoded, fitness) in zip(pending, flat):
                ind.decoded = decoded
                ind.fitness = fitness
        if self.instrumented:
            worker_s = sum(s for _, s, _ in outputs)
            hits = sum(st[0] for _, _, st in outputs)
            misses = sum(st[1] for _, _, st in outputs)
            trans_hits = sum(st[2] for _, _, st in outputs)
            trans_misses = sum(st[3] for _, _, st in outputs)
            self._cache_hits += hits
            self._cache_misses += misses
            if self._metrics is not None:
                m = self._metrics
                m.counter("evals").add(len(pending))
                m.timer("eval_batch").record(seconds)
                m.timer("dispatch").record(max(0.0, seconds - worker_s / self.processes))
                m.timer("worker_eval").record(worker_s, count=len(chunks))
                m.counter("decode_cache_hits").add(hits)
                m.counter("decode_cache_misses").add(misses)
                if memoize:
                    m.counter("transition_cache_hits").add(trans_hits)
                    m.counter("transition_cache_misses").add(trans_misses)
                    m.counter("evals_skipped").add(skipped)
            if self._tracer.enabled:
                self._tracer.emit(
                    EvaluationBatch(
                        scope=self._scope,
                        n_evaluated=len(pending),
                        seconds=seconds,
                        mode="process",
                        chunks=len(chunks),
                        cache_hits=hits,
                        cache_misses=misses,
                        evals_skipped=skipped,
                    )
                )

    def evaluate_buffer(self, buffer, context: EvaluationContext) -> None:
        """Evaluate a population buffer's pending rows across the pool.

        Pending rows are deduplicated against the parent-side memo exactly
        like :meth:`evaluate`; the survivors are dispatched either through
        the shared-memory segment (``shm``, the default — workers receive
        only row ranges and write packed fitness arrays in place) or as
        pickled genome chunks.  Decoded plans cross the boundary only when
        the buffer keeps them (state-matching crossovers); otherwise the
        generation best is decoded lazily by the caller.  Rows are only
        written after every chunk returned, so a failed batch leaves the
        buffer un-evaluated and safe to retry.  Subclasses that override
        :meth:`evaluate` are bridged through it instead, like the serial
        evaluator does.
        """
        if type(self).evaluate is not ProcessPoolEvaluator.evaluate:
            Evaluator.evaluate_buffer(self, buffer, context)
            return
        self.ensure_started(context)
        assert self._pool is not None
        pending = [int(i) for i in np.flatnonzero(~buffer.evaluated)]
        if not pending:
            return
        memoize = getattr(context, "memoize", True)
        need_plans = buffer.keep_plans
        if memoize:
            fingerprints: List[bytes] = []
            resolved: dict = {}
            dispatch_fps: List[bytes] = []
            dispatch_rows: List[int] = []
            for row in pending:
                fp = buffer.view(row).tobytes()
                fingerprints.append(fp)
                hit = self._memo.get(fp)
                if hit is not None and hit[0] is None and need_plans:
                    hit = None  # packed result can't feed a plan-keeping buffer
                if hit is not None:
                    resolved[fp] = hit
                elif fp not in resolved:
                    resolved[fp] = None  # claimed; filled after dispatch
                    dispatch_fps.append(fp)
                    dispatch_rows.append(row)
        else:
            dispatch_rows = pending
        skipped = len(pending) - len(dispatch_rows)
        size = self._effective_chunk_size(len(dispatch_rows))
        n_chunks = max(0, math.ceil(len(dispatch_rows) / size)) if dispatch_rows else 0
        published = 0
        t0 = time.perf_counter()
        try:
            if not dispatch_rows:
                outputs = []
                results: List[tuple] = []
            elif self.shm:
                name, published, result_views = self._publish(
                    buffer, dispatch_rows, need_plans
                )
                starts = list(range(0, len(dispatch_rows), size))
                outputs = list(
                    self._pool.map(
                        _evaluate_shm_chunk,
                        [name] * len(starts),
                        starts,
                        [min(s + size, len(dispatch_rows)) for s in starts],
                        timeout=self.timeout_s,
                    )
                )
                results = self._collect_shm_results(
                    dispatch_rows, result_views, outputs, need_plans
                )
            else:
                chunks = [
                    [buffer.view(r) for r in dispatch_rows[i : i + size]]
                    for i in range(0, len(dispatch_rows), size)
                ]
                raw = list(self._pool.map(_evaluate_chunk, chunks, timeout=self.timeout_s))
                outputs = [(seconds, stats, None) for _, seconds, stats in raw]
                results = [item for chunk_results, _, _ in raw for item in chunk_results]
        except BrokenProcessPool as exc:
            raise WorkerPoolError(
                f"worker pool broke while evaluating {len(pending)} individuals on "
                f"domain {type(context.domain).__name__}: worker process(es) died "
                f"(crash, OOM kill, or an initializer error); call restart() and "
                f"retry, or fall back to SerialEvaluator — ResilientEvaluator "
                f"automates both"
            ) from exc
        finally:
            # Drop our views into the segment before the exception (whose
            # traceback pins this frame) propagates — otherwise restart()
            # cannot unmap the segment and close() degrades to a zombie.
            result_views = None  # noqa: F841
        seconds = time.perf_counter() - t0
        # No partial writes: the buffer is only mutated after every chunk
        # returned, so a failed batch is safe to retry.
        if memoize:
            if len(self._memo) >= self._memo_max:
                self._memo.clear()
            for fp, result in zip(dispatch_fps, results):
                resolved[fp] = result
                self._memo[fp] = result
            self._evals_skipped += skipped
            for row, fp in zip(pending, fingerprints):
                decoded, fitness = resolved[fp]
                buffer.set_result(row, decoded, fitness)
        else:
            for row, (decoded, fitness) in zip(pending, results):
                buffer.set_result(row, decoded, fitness)
        if self.instrumented:
            self._record_batch_metrics(
                n_pending=len(pending),
                seconds=seconds,
                outputs=[(s, st) for s, st, _ in outputs],
                n_chunks=n_chunks,
                skipped=skipped,
                memoize=memoize,
                published=published,
            )

    def _publish(self, buffer, rows: List[int], need_plans: bool):
        """Write the pending rows into the segment; returns name, bytes, views."""
        n = len(rows)
        lengths = np.fromiter((int(buffer.lengths[r]) for r in rows), np.int64, n)
        starts = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(lengths[:-1], out=starts[1:])
        genes_len = int(lengths.sum())
        segment = self._ensure_segment(_shm_segment_bytes(n, genes_len))
        self._epoch += 1
        header = np.frombuffer(segment.buf, np.int64, 4)
        header[:] = (n, genes_len, 1 if need_plans else 0, self._epoch)
        views = _shm_layout(segment.buf, n, genes_len)
        shm_starts, shm_lengths, shm_genes = views[0], views[1], views[2]
        shm_starts[:] = starts
        shm_lengths[:] = lengths
        for s, length, r in zip(starts, lengths, rows):
            shm_genes[s : s + length] = buffer.view(r)
        published = _SHM_HEADER_BYTES + 16 * n + 8 * genes_len
        return segment.name, published, views[3:]

    @staticmethod
    def _collect_shm_results(
        rows: List[int], result_views, outputs, need_plans: bool
    ) -> List[tuple]:
        """Rebuild ``(plan, FitnessResult)`` pairs from the packed arrays."""
        total, goal, cost, reached, _plan_len = result_views
        if need_plans:
            plans: List[object] = []
            for _, _, chunk_plans in outputs:
                plans.extend(chunk_plans)
        results = []
        for j in range(len(rows)):
            fitness = FitnessResult(
                goal=float(goal[j]),
                cost=float(cost[j]),
                total=float(total[j]),
                goal_reached=bool(reached[j]),
            )
            results.append((plans[j] if need_plans else None, fitness))
        return results

    def _record_batch_metrics(
        self,
        n_pending: int,
        seconds: float,
        outputs: List[tuple],
        n_chunks: int,
        skipped: int,
        memoize: bool,
        published: int,
    ) -> None:
        """Shared metrics/event emission for both dispatch transports."""
        worker_s = sum(s for s, _ in outputs)
        hits = sum(st[0] for _, st in outputs)
        misses = sum(st[1] for _, st in outputs)
        trans_hits = sum(st[2] for _, st in outputs)
        trans_misses = sum(st[3] for _, st in outputs)
        self._cache_hits += hits
        self._cache_misses += misses
        if self._metrics is not None:
            m = self._metrics
            m.counter("evals").add(n_pending)
            m.timer("eval_batch").record(seconds)
            m.timer("dispatch").record(max(0.0, seconds - worker_s / self.processes))
            if n_chunks:
                m.timer("worker_eval").record(worker_s, count=n_chunks)
            m.counter("decode_cache_hits").add(hits)
            m.counter("decode_cache_misses").add(misses)
            if memoize:
                m.counter("transition_cache_hits").add(trans_hits)
                m.counter("transition_cache_misses").add(trans_misses)
                m.counter("evals_skipped").add(skipped)
            if published:
                m.counter("shm_bytes_published").add(published)
                # Lower bound: the gene payload alone no longer crosses the
                # pipe (index arrays and pickle framing are gravy on top).
                genes_bytes = published - _SHM_HEADER_BYTES
                m.counter("dispatch_bytes_saved").add(max(0, genes_bytes))
        if self._tracer.enabled:
            self._tracer.emit(
                EvaluationBatch(
                    scope=self._scope,
                    n_evaluated=n_pending,
                    seconds=seconds,
                    mode="process",
                    chunks=n_chunks,
                    cache_hits=hits,
                    cache_misses=misses,
                    evals_skipped=skipped,
                )
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._release_segment()
