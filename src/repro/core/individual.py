"""Individuals: variable-length float genomes with cached evaluation.

An individual owns its genome (a read-only ``float64`` array) and, once
evaluated, its decoded phenotype and fitness.  Genomes are immutable after
construction — crossover and mutation build new arrays — so decoded results
can never go stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.encoding import DecodedPlan
from repro.core.fitness import FitnessResult

__all__ = ["Individual"]


@dataclass
class Individual:
    """One candidate solution.

    ``decoded`` and ``fitness`` are filled by the evaluator; they are
    ``None`` for freshly created offspring.

    ``dirty_from`` / ``prefix_plan`` carry incremental-decode lineage for
    unevaluated offspring: genes before ``dirty_from`` are byte-identical
    to the prefix of the parent genome that produced ``prefix_plan``, so
    the decode engine can resume from the parent's retained walk instead of
    the start state.  Both are conservative hints — the evaluator falls
    back to a full decode whenever they are absent — and are cleared once
    the individual has been evaluated.
    """

    genes: np.ndarray
    decoded: Optional[DecodedPlan] = None
    fitness: Optional[FitnessResult] = None
    dirty_from: Optional[int] = None
    prefix_plan: Optional[DecodedPlan] = None

    def __post_init__(self) -> None:
        genes = np.asarray(self.genes, dtype=np.float64)
        if genes.ndim != 1:
            raise ValueError(f"genome must be one-dimensional, got shape {genes.shape}")
        if genes.size == 0:
            raise ValueError("genome must contain at least one gene")
        if float(genes.min(initial=0.0)) < 0.0 or float(genes.max(initial=0.0)) >= 1.0 + 1e-12:
            raise ValueError("genes must lie in [0, 1)")
        if genes.flags.writeable:
            # Defensive copy of mutable input; already-frozen arrays (e.g.
            # from copy()/with-shared-genes paths) are shared as-is.
            genes = genes.copy()
            genes.setflags(write=False)
        self.genes = genes

    def __len__(self) -> int:
        return int(self.genes.size)

    @property
    def is_evaluated(self) -> bool:
        return self.fitness is not None and self.decoded is not None

    @property
    def total_fitness(self) -> float:
        if self.fitness is None:
            raise ValueError("individual has not been evaluated")
        return self.fitness.total

    @property
    def goal_fitness(self) -> float:
        if self.fitness is None:
            raise ValueError("individual has not been evaluated")
        return self.fitness.goal

    def copy(self) -> "Individual":
        """A copy sharing the (immutable) genome and evaluation results."""
        return Individual(
            genes=self.genes,
            decoded=self.decoded,
            fitness=self.fitness,
            dirty_from=self.dirty_from,
            prefix_plan=self.prefix_plan,
        )

    def with_genes(self, genes: np.ndarray) -> "Individual":
        """A new, unevaluated individual with a different genome."""
        return Individual(genes=genes)

    @staticmethod
    def random(length: int, rng: np.random.Generator) -> "Individual":
        """A random genome of the given length (Section 3.2)."""
        if length < 1:
            raise ValueError(f"genome length must be >= 1, got {length}")
        return Individual(genes=rng.random(length))

    def sort_key(self) -> tuple:
        """Ranking key: goal fitness first, then total fitness.

        The paper reports "the individual with the highest goal fitness in
        each run"; ties break on the combined fitness (which folds in cost).
        """
        if self.fitness is None:
            raise ValueError("individual has not been evaluated")
        return (self.fitness.goal, self.fitness.total)
