"""High-level facade: the GA planner.

Most users want "give me a plan for this domain"; :class:`GAPlanner` wraps
configuration, seeding, run-mode dispatch and result packaging behind one
call.  All three run modes — ``"single"`` (one GA run), ``"multiphase"``
(the paper's Section 3.5 driver) and ``"islands"`` (the ring-migration
island model) — return the same :class:`PlanningOutcome` with identical
field semantics, so callers can switch modes without touching downstream
code.  The lower-level :class:`~repro.core.ga.GARun`,
:func:`~repro.core.multiphase.run_multiphase` and
:func:`~repro.core.islands.run_islands` remain available for fine-grained
control.

Evaluator lifetimes are explicit: the planner accepts an ``evaluator=``
*specification* (``"serial"``, ``"process"``, or a zero-argument factory),
constructs concrete evaluators itself, and always closes them — process
pools never leak, including on ``stop_on_goal`` early exits and on errors.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.core.config import GAConfig, MultiPhaseConfig
from repro.core.encoding import encode_operations
from repro.core.ga import GAResult, run_ga
from repro.core.individual import Individual
from repro.core.islands import IslandConfig, IslandResult, run_islands
from repro.core.multiphase import MultiPhaseResult, run_multiphase
from repro.core.parallel import Evaluator, ProcessPoolEvaluator
from repro.core.rng import make_rng
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.protocol import PlanningDomain

__all__ = ["PlanningOutcome", "GAPlanner", "PLANNING_MODES"]

PLANNING_MODES = ("single", "multiphase", "islands")

#: Evaluator specification accepted by :class:`GAPlanner`: a named strategy
#: or a zero-argument factory returning a fresh :class:`Evaluator`.
EvaluatorSpec = Union[None, str, Callable[[], Evaluator]]


@dataclass(frozen=True)
class PlanningOutcome:
    """Uniform result for every planning mode.

    Attributes
    ----------
    plan:
        The best operation sequence found (possibly not a solution).
    solved:
        Whether the plan's final state satisfies the goal.
    goal_fitness:
        Goal fitness of the final state.
    plan_length / plan_cost:
        Size and total cost of the plan.
    generations:
        Total generations evolved — summed over phases in multi-phase mode
        and over islands in island mode, so it is always the total search
        effort in generation units.
    elapsed_seconds:
        Wall clock of the whole run.
    mode:
        Which run mode produced this outcome (``"single"``, ``"multiphase"``
        or ``"islands"``).
    detail:
        The underlying :class:`GAResult`, :class:`MultiPhaseResult` or
        :class:`IslandResult`.
    """

    plan: tuple
    solved: bool
    goal_fitness: float
    plan_length: int
    plan_cost: float
    generations: int
    elapsed_seconds: float
    detail: object
    mode: str = "single"


def _resolve_evaluator_factory(spec: EvaluatorSpec) -> Optional[Callable[[], Evaluator]]:
    """Normalise an evaluator spec to a zero-argument factory (or ``None``).

    ``None``/"serial" → serial evaluation, "process" → one lazily-bound
    :class:`ProcessPoolEvaluator` per run/phase/island, "resilient" → a
    fault-tolerant pool (:class:`~repro.core.resilient.ResilientEvaluator`
    around a fresh pool: crash/timeout retries with backoff, serial
    degradation), callables are used as factories directly.  Evaluator
    *instances* are rejected: a pool is bound to one start state, so
    sharing an instance across phases would silently evaluate against
    stale state — pass a factory instead.
    """
    if spec is None or spec == "serial":
        return None
    if spec == "process":
        return ProcessPoolEvaluator
    if spec == "resilient":
        from repro.core.resilient import ResilientEvaluator

        return ResilientEvaluator
    if isinstance(spec, Evaluator):
        raise TypeError(
            "pass an evaluator factory (e.g. ProcessPoolEvaluator or a lambda), "
            "not an Evaluator instance: instances cannot be re-bound across "
            "phases/islands and their lifetime would be ambiguous"
        )
    if callable(spec):
        return spec
    raise ValueError(
        f"unknown evaluator spec {spec!r}; use 'serial', 'process', 'resilient' or a factory"
    )


class GAPlanner:
    """GA-based planner over any :class:`PlanningDomain`.

    Parameters
    ----------
    domain:
        The planning domain.
    config:
        Single-phase GA parameters (also the per-phase config in multi-phase
        mode and the per-island config in island mode, unless the
        corresponding sub-config overrides it).
    multiphase:
        A :class:`MultiPhaseConfig`, or a phase count for convenience.
        Implies ``mode="multiphase"`` when *mode* is not given.
    islands:
        An :class:`IslandConfig`, or an island count for convenience (ring
        defaults, *config* as the per-island config).  Implies
        ``mode="islands"`` when *mode* is not given.
    mode:
        Explicit run mode: ``"single"``, ``"multiphase"`` or ``"islands"``.
        Defaults to whichever of *multiphase*/*islands* was supplied, else
        ``"single"``.  Selecting ``mode="multiphase"`` or ``mode="islands"``
        without the matching config builds a default one from *config*.
    seed:
        Root seed; every run derives independent streams from it.
    evaluator:
        Evaluator specification: ``None``/``"serial"``, ``"process"``, or a
        zero-argument factory.  The planner owns the lifetime — evaluators
        are context-managed per run (per phase / per island) and always
        closed.
    tracer / metrics:
        Observability wiring passed to the underlying drivers; defaults to
        the ambient pair installed by :func:`repro.obs.observe`.
    """

    def __init__(
        self,
        domain: PlanningDomain,
        config: GAConfig,
        multiphase: Optional[MultiPhaseConfig | int] = None,
        seed: Optional[int] = None,
        *,
        islands: Optional[IslandConfig | int] = None,
        mode: Optional[str] = None,
        evaluator: EvaluatorSpec = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.domain = domain
        self.config = config
        if isinstance(multiphase, int):
            multiphase = MultiPhaseConfig(
                max_phases=multiphase, phase=config.replace(stop_on_goal=False)
            )
        if isinstance(islands, int):
            islands = IslandConfig(n_islands=islands, island=config)
        if multiphase is not None and islands is not None:
            raise ValueError("give at most one of multiphase= and islands=")
        if mode is None:
            mode = (
                "multiphase" if multiphase is not None
                else "islands" if islands is not None
                else "single"
            )
        if mode not in PLANNING_MODES:
            raise ValueError(f"mode must be one of {PLANNING_MODES}, got {mode!r}")
        if mode == "multiphase" and multiphase is None:
            multiphase = MultiPhaseConfig(phase=config.replace(stop_on_goal=False))
        if mode == "islands" and islands is None:
            islands = IslandConfig(island=config)
        if mode != "multiphase":
            multiphase = None
        if mode != "islands":
            islands = None
        self.mode = mode
        self.multiphase = multiphase
        self.islands = islands
        self.rng = make_rng(seed)
        self._evaluator_factory = _resolve_evaluator_factory(evaluator)
        self.tracer = tracer
        self.metrics = metrics

    def seed_individuals(
        self, plans: Sequence[Sequence], jitter: bool = True
    ) -> list:
        """Encode known-good operation sequences as seed individuals."""
        rng = self.rng if jitter else None
        seeds = []
        for ops in plans:
            genes = encode_operations(self.domain, self.domain.initial_state, ops, rng=rng)
            seeds.append(Individual(genes=genes))
        return seeds

    def solve(
        self,
        start_state: Optional[object] = None,
        seeds: Optional[Sequence[Individual]] = None,
    ) -> PlanningOutcome:
        """Run the configured mode and package the uniform outcome."""
        if self.mode == "multiphase":
            return self._solve_multiphase(start_state, seeds)
        if self.mode == "islands":
            return self._solve_islands(start_state, seeds)
        return self._solve_single(start_state, seeds)

    # -- per-mode drivers ----------------------------------------------------

    def _solve_single(self, start_state, seeds) -> PlanningOutcome:
        factory = self._evaluator_factory
        with ExitStack() as stack:
            evaluator = stack.enter_context(factory()) if factory is not None else None
            result: GAResult = run_ga(
                self.domain,
                self.config,
                self.rng,
                start_state=start_state,
                evaluator=evaluator,
                seeds=seeds,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        decoded = result.best.decoded
        assert decoded is not None and result.best.fitness is not None
        return PlanningOutcome(
            plan=decoded.operations,
            solved=result.best.fitness.goal_reached,
            goal_fitness=result.best.fitness.goal,
            plan_length=len(decoded.operations),
            plan_cost=decoded.cost,
            generations=result.generations_run,
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
            mode="single",
        )

    def _solve_multiphase(self, start_state, seeds) -> PlanningOutcome:
        if seeds:
            raise ValueError("seeding is only supported in single-phase mode")
        assert self.multiphase is not None
        mp: MultiPhaseResult = run_multiphase(
            self.domain,
            self.multiphase,
            self.rng,
            start_state=start_state,
            evaluator_factory=self._evaluator_factory,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        return PlanningOutcome(
            plan=mp.plan,
            solved=mp.solved,
            goal_fitness=mp.goal_fitness,
            plan_length=mp.plan_length,
            plan_cost=self.domain.plan_cost(mp.plan),
            generations=mp.total_generations,
            elapsed_seconds=mp.elapsed_seconds,
            detail=mp,
            mode="multiphase",
        )

    def _solve_islands(self, start_state, seeds) -> PlanningOutcome:
        if seeds:
            raise ValueError("seeding is only supported in single-phase mode")
        assert self.islands is not None
        result: IslandResult = run_islands(
            self.domain,
            self.islands,
            self.rng,
            start_state=start_state,
            evaluator_factory=self._evaluator_factory,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        decoded = result.best.decoded
        assert decoded is not None and result.best.fitness is not None
        return PlanningOutcome(
            plan=decoded.operations,
            solved=result.best.fitness.goal_reached,
            goal_fitness=result.best.fitness.goal,
            plan_length=len(decoded.operations),
            plan_cost=decoded.cost,
            generations=result.generations_run * self.islands.n_islands,
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
            mode="islands",
        )
