"""High-level facade: the GA planner.

Most users want "give me a plan for this domain"; :class:`GAPlanner` wraps
configuration, seeding, run-mode dispatch and result packaging behind one
call.  All three run modes — ``"single"`` (one GA run), ``"multiphase"``
(the paper's Section 3.5 driver) and ``"islands"`` (the ring-migration
island model) — return the same :class:`PlanningOutcome` with identical
field semantics, so callers can switch modes without touching downstream
code.  The lower-level :class:`~repro.core.ga.GARun`,
:func:`~repro.core.multiphase.run_multiphase` and
:func:`~repro.core.islands.run_islands` remain available for fine-grained
control.

Evaluator lifetimes are explicit: the planner accepts an ``evaluator=``
*specification* (``"serial"``, ``"process"``, or a zero-argument factory),
constructs concrete evaluators itself, and always closes them — process
pools never leak, including on ``stop_on_goal`` early exits and on errors.
"""

from __future__ import annotations

import queue
import threading
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.core.config import GAConfig, MultiPhaseConfig, PortfolioSpec
from repro.core.encoding import encode_operations
from repro.core.ga import GAResult, run_ga
from repro.core.individual import Individual
from repro.core.islands import IslandConfig, IslandResult, run_islands
from repro.core.multiphase import MultiPhaseResult, run_multiphase
from repro.core.parallel import Evaluator, ProcessPoolEvaluator
from repro.core.portfolio import (
    Incumbent,
    PortfolioResult,
    default_portfolio,
    run_portfolio,
)
from repro.core.rng import make_rng
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.protocol import PlanningDomain

__all__ = ["PlanningOutcome", "GAPlanner", "IncumbentStream", "PLANNING_MODES"]

PLANNING_MODES = ("single", "multiphase", "islands", "portfolio")

#: Evaluator specification accepted by :class:`GAPlanner`: a named strategy
#: or a zero-argument factory returning a fresh :class:`Evaluator`.
EvaluatorSpec = Union[None, str, Callable[[], Evaluator]]


@dataclass(frozen=True)
class PlanningOutcome:
    """Uniform result for every planning mode.

    Attributes
    ----------
    plan:
        The best operation sequence found (possibly not a solution).
    solved:
        Whether the plan's final state satisfies the goal.
    goal_fitness:
        Goal fitness of the final state.
    plan_length / plan_cost:
        Size and total cost of the plan.
    generations:
        Total generations evolved — summed over phases in multi-phase mode
        and over islands in island mode, so it is always the total search
        effort in generation units.
    elapsed_seconds:
        Wall clock of the whole run.
    mode:
        Which run mode produced this outcome (``"single"``, ``"multiphase"``,
        ``"islands"`` or ``"portfolio"``).
    detail:
        The underlying :class:`GAResult`, :class:`MultiPhaseResult`,
        :class:`IslandResult` or :class:`PortfolioResult`.
    incumbents:
        Anytime best-so-far history (portfolio mode only; empty elsewhere).
        Each entry is an :class:`~repro.core.portfolio.Incumbent` recording
        which island improved the portfolio-wide best, at which logical
        tick, and after how much wall-clock time.
    """

    plan: tuple
    solved: bool
    goal_fitness: float
    plan_length: int
    plan_cost: float
    generations: int
    elapsed_seconds: float
    detail: object
    mode: str = "single"
    incumbents: tuple = ()


def _resolve_evaluator_factory(spec: EvaluatorSpec) -> Optional[Callable[[], Evaluator]]:
    """Normalise an evaluator spec to a zero-argument factory (or ``None``).

    ``None``/"serial" → serial evaluation, "process" → one lazily-bound
    :class:`ProcessPoolEvaluator` per run/phase/island, "resilient" → a
    fault-tolerant pool (:class:`~repro.core.resilient.ResilientEvaluator`
    around a fresh pool: crash/timeout retries with backoff, serial
    degradation), callables are used as factories directly.  Evaluator
    *instances* are rejected: a pool is bound to one start state, so
    sharing an instance across phases would silently evaluate against
    stale state — pass a factory instead.
    """
    if spec is None or spec == "serial":
        return None
    if spec == "process":
        return ProcessPoolEvaluator
    if spec == "resilient":
        from repro.core.resilient import ResilientEvaluator

        return ResilientEvaluator
    if isinstance(spec, Evaluator):
        raise TypeError(
            "pass an evaluator factory (e.g. ProcessPoolEvaluator or a lambda), "
            "not an Evaluator instance: instances cannot be re-bound across "
            "phases/islands and their lifetime would be ambiguous"
        )
    if callable(spec):
        return spec
    raise ValueError(
        f"unknown evaluator spec {spec!r}; use 'serial', 'process', 'resilient' or a factory"
    )


class GAPlanner:
    """GA-based planner over any :class:`PlanningDomain`.

    Parameters
    ----------
    domain:
        The planning domain.
    config:
        Single-phase GA parameters (also the per-phase config in multi-phase
        mode and the per-island config in island mode, unless the
        corresponding sub-config overrides it).
    multiphase:
        A :class:`MultiPhaseConfig`, or a phase count for convenience.
        Implies ``mode="multiphase"`` when *mode* is not given.
    islands:
        An :class:`IslandConfig`, or an island count for convenience (ring
        defaults, *config* as the per-island config).  Implies
        ``mode="islands"`` when *mode* is not given.
    portfolio:
        A :class:`~repro.core.config.PortfolioSpec`, or a GA-island count
        for convenience (crossover-diverse GA islands around *config* plus
        one greedy-search island).  Implies ``mode="portfolio"`` when
        *mode* is not given.
    portfolio_serial:
        Run the portfolio islands serially on one thread instead of a
        thread pool — the deterministic ``--portfolio-serial``
        verification mode (identical race outcome, no wall-clock overlap).
    mode:
        Explicit run mode: ``"single"``, ``"multiphase"``, ``"islands"`` or
        ``"portfolio"``.  Defaults to whichever of
        *multiphase*/*islands*/*portfolio* was supplied, else ``"single"``.
        Selecting a mode without the matching config builds a default one
        from *config*.
    seed:
        Root seed; every run derives independent streams from it.
    evaluator:
        Evaluator specification: ``None``/``"serial"``, ``"process"``, or a
        zero-argument factory.  The planner owns the lifetime — evaluators
        are context-managed per run (per phase / per island) and always
        closed.
    tracer / metrics:
        Observability wiring passed to the underlying drivers; defaults to
        the ambient pair installed by :func:`repro.obs.observe`.
    """

    def __init__(
        self,
        domain: PlanningDomain,
        config: GAConfig,
        multiphase: Optional[MultiPhaseConfig | int] = None,
        seed: Optional[int] = None,
        *,
        islands: Optional[IslandConfig | int] = None,
        portfolio: Optional[PortfolioSpec | int] = None,
        portfolio_serial: bool = False,
        mode: Optional[str] = None,
        evaluator: EvaluatorSpec = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.domain = domain
        self.config = config
        if isinstance(multiphase, int):
            multiphase = MultiPhaseConfig(
                max_phases=multiphase, phase=config.replace(stop_on_goal=False)
            )
        if isinstance(islands, int):
            islands = IslandConfig(n_islands=islands, island=config)
        if isinstance(portfolio, int):
            portfolio = default_portfolio(config, n_ga=portfolio)
        given = [c for c in (multiphase, islands, portfolio) if c is not None]
        if len(given) > 1:
            raise ValueError(
                "give at most one of multiphase=, islands= and portfolio="
            )
        if mode is None:
            mode = (
                "multiphase" if multiphase is not None
                else "islands" if islands is not None
                else "portfolio" if portfolio is not None
                else "single"
            )
        if mode not in PLANNING_MODES:
            raise ValueError(f"mode must be one of {PLANNING_MODES}, got {mode!r}")
        if mode == "multiphase" and multiphase is None:
            multiphase = MultiPhaseConfig(phase=config.replace(stop_on_goal=False))
        if mode == "islands" and islands is None:
            islands = IslandConfig(island=config)
        if mode == "portfolio" and portfolio is None:
            portfolio = default_portfolio(config)
        if mode != "multiphase":
            multiphase = None
        if mode != "islands":
            islands = None
        if mode != "portfolio":
            portfolio = None
        self.mode = mode
        self.multiphase = multiphase
        self.islands = islands
        self.portfolio = portfolio
        self.portfolio_serial = portfolio_serial
        self.rng = make_rng(seed)
        self._evaluator_factory = _resolve_evaluator_factory(evaluator)
        self.tracer = tracer
        self.metrics = metrics

    def seed_individuals(
        self, plans: Sequence[Sequence], jitter: bool = True
    ) -> list:
        """Encode known-good operation sequences as seed individuals."""
        rng = self.rng if jitter else None
        seeds = []
        for ops in plans:
            genes = encode_operations(self.domain, self.domain.initial_state, ops, rng=rng)
            seeds.append(Individual(genes=genes))
        return seeds

    def solve(
        self,
        start_state: Optional[object] = None,
        seeds: Optional[Sequence[Individual]] = None,
        on_incumbent: Optional[Callable[[Incumbent], None]] = None,
    ) -> PlanningOutcome:
        """Run the configured mode and package the uniform outcome.

        ``on_incumbent`` streams anytime best-so-far improvements and is
        only meaningful in portfolio mode (rejected elsewhere).
        """
        if on_incumbent is not None and self.mode != "portfolio":
            raise ValueError("on_incumbent= requires mode='portfolio'")
        if self.mode == "multiphase":
            return self._solve_multiphase(start_state, seeds)
        if self.mode == "islands":
            return self._solve_islands(start_state, seeds)
        if self.mode == "portfolio":
            return self._solve_portfolio(start_state, seeds, on_incumbent)
        return self._solve_single(start_state, seeds)

    def solve_stream(
        self, start_state: Optional[object] = None
    ) -> "IncumbentStream":
        """Solve in portfolio mode, iterating incumbents as they appear.

        Returns an :class:`IncumbentStream`: iterate it for
        :class:`~repro.core.portfolio.Incumbent` records in real time; its
        ``outcome`` property joins the run and returns the final
        :class:`PlanningOutcome`.
        """
        if self.mode != "portfolio":
            raise ValueError("solve_stream requires mode='portfolio'")
        return IncumbentStream(self, start_state)

    # -- per-mode drivers ----------------------------------------------------

    def _solve_single(self, start_state, seeds) -> PlanningOutcome:
        factory = self._evaluator_factory
        with ExitStack() as stack:
            evaluator = stack.enter_context(factory()) if factory is not None else None
            result: GAResult = run_ga(
                self.domain,
                self.config,
                self.rng,
                start_state=start_state,
                evaluator=evaluator,
                seeds=seeds,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        decoded = result.best.decoded
        assert decoded is not None and result.best.fitness is not None
        return PlanningOutcome(
            plan=decoded.operations,
            solved=result.best.fitness.goal_reached,
            goal_fitness=result.best.fitness.goal,
            plan_length=len(decoded.operations),
            plan_cost=decoded.cost,
            generations=result.generations_run,
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
            mode="single",
        )

    def _solve_multiphase(self, start_state, seeds) -> PlanningOutcome:
        if seeds:
            raise ValueError("seeding is only supported in single-phase mode")
        assert self.multiphase is not None
        mp: MultiPhaseResult = run_multiphase(
            self.domain,
            self.multiphase,
            self.rng,
            start_state=start_state,
            evaluator_factory=self._evaluator_factory,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        return PlanningOutcome(
            plan=mp.plan,
            solved=mp.solved,
            goal_fitness=mp.goal_fitness,
            plan_length=mp.plan_length,
            plan_cost=self.domain.plan_cost(mp.plan),
            generations=mp.total_generations,
            elapsed_seconds=mp.elapsed_seconds,
            detail=mp,
            mode="multiphase",
        )

    def _solve_islands(self, start_state, seeds) -> PlanningOutcome:
        if seeds:
            raise ValueError("seeding is only supported in single-phase mode")
        assert self.islands is not None
        result: IslandResult = run_islands(
            self.domain,
            self.islands,
            self.rng,
            start_state=start_state,
            evaluator_factory=self._evaluator_factory,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        decoded = result.best.decoded
        assert decoded is not None and result.best.fitness is not None
        return PlanningOutcome(
            plan=decoded.operations,
            solved=result.best.fitness.goal_reached,
            goal_fitness=result.best.fitness.goal,
            plan_length=len(decoded.operations),
            plan_cost=decoded.cost,
            generations=result.generations_run * self.islands.n_islands,
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
            mode="islands",
        )

    def _solve_portfolio(self, start_state, seeds, on_incumbent) -> PlanningOutcome:
        if seeds:
            raise ValueError("seeding is only supported in single-phase mode")
        assert self.portfolio is not None
        result: PortfolioResult = run_portfolio(
            self.domain,
            self.portfolio,
            self.rng,
            start_state=start_state,
            evaluator_factory=self._evaluator_factory,
            tracer=self.tracer,
            metrics=self.metrics,
            serial=self.portfolio_serial,
            on_incumbent=on_incumbent,
        )
        best = result.best
        plan = result.plan
        return PlanningOutcome(
            plan=plan,
            solved=result.solved,
            goal_fitness=best.goal_fitness if best is not None else 0.0,
            plan_length=len(plan),
            plan_cost=best.plan_cost if best is not None else 0.0,
            generations=sum(result.ticks_run),
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
            mode="portfolio",
            incumbents=tuple(result.incumbents),
        )


class IncumbentStream:
    """Iterator surface over a running portfolio solve (anytime API).

    Runs ``planner.solve`` on a daemon thread and yields each
    :class:`~repro.core.portfolio.Incumbent` as the driver reports it.
    Iteration ends when the race finishes; ``outcome`` then holds the
    final :class:`PlanningOutcome` (accessing it joins the run first, so
    ``stream.outcome`` alone is a valid blocking wait).  Errors raised by
    the solve re-raise here, on the consuming thread.
    """

    _DONE = object()

    def __init__(self, planner: GAPlanner, start_state) -> None:
        self._queue: "queue.Queue" = queue.Queue()
        self._outcome: Optional[PlanningOutcome] = None
        self._error: Optional[BaseException] = None

        def work() -> None:
            try:
                self._outcome = planner.solve(
                    start_state, on_incumbent=self._queue.put
                )
            except BaseException as exc:  # re-raised on the consumer side
                self._error = exc
            finally:
                self._queue.put(self._DONE)

        self._thread = threading.Thread(
            target=work, name="portfolio-solve", daemon=True
        )
        self._thread.start()

    def __iter__(self):
        while True:
            item = self._queue.get()
            if item is self._DONE:
                break
            yield item
        self._thread.join()
        if self._error is not None:
            raise self._error

    @property
    def outcome(self) -> PlanningOutcome:
        """The final outcome; blocks until the race completes."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome
