"""High-level facade: the GA planner.

Most users want "give me a plan for this domain"; :class:`GAPlanner` wraps
configuration, seeding, single- vs multi-phase mode, and result packaging
behind one call.  The lower-level :class:`~repro.core.ga.GARun` and
:func:`~repro.core.multiphase.run_multiphase` remain available for
fine-grained control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import GAConfig, MultiPhaseConfig
from repro.core.encoding import encode_operations
from repro.core.ga import GAResult, run_ga
from repro.core.individual import Individual
from repro.core.multiphase import MultiPhaseResult, run_multiphase
from repro.core.rng import make_rng
from repro.protocol import PlanningDomain

__all__ = ["PlanningOutcome", "GAPlanner"]


@dataclass(frozen=True)
class PlanningOutcome:
    """Uniform result for single- and multi-phase planning.

    Attributes
    ----------
    plan:
        The best operation sequence found (possibly not a solution).
    solved:
        Whether the plan's final state satisfies the goal.
    goal_fitness:
        Goal fitness of the final state.
    plan_length / plan_cost:
        Size and total cost of the plan.
    generations:
        Total generations evolved across all phases.
    detail:
        The underlying :class:`GAResult` or :class:`MultiPhaseResult`.
    """

    plan: tuple
    solved: bool
    goal_fitness: float
    plan_length: int
    plan_cost: float
    generations: int
    elapsed_seconds: float
    detail: object


class GAPlanner:
    """GA-based planner over any :class:`PlanningDomain`.

    Parameters
    ----------
    domain:
        The planning domain.
    config:
        Single-phase GA parameters (also used as the phase config in
        multi-phase mode, with ``stop_on_goal`` handled by the driver).
    multiphase:
        ``None`` for a single-phase run; a :class:`MultiPhaseConfig` (or a
        phase count, for convenience) for the multi-phase algorithm.
    seed:
        Root seed; every run derives independent streams from it.
    """

    def __init__(
        self,
        domain: PlanningDomain,
        config: GAConfig,
        multiphase: Optional[MultiPhaseConfig | int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.domain = domain
        self.config = config
        if isinstance(multiphase, int):
            multiphase = MultiPhaseConfig(max_phases=multiphase, phase=config.replace(stop_on_goal=False))
        self.multiphase = multiphase
        self.rng = make_rng(seed)

    def seed_individuals(
        self, plans: Sequence[Sequence], jitter: bool = True
    ) -> list:
        """Encode known-good operation sequences as seed individuals."""
        rng = self.rng if jitter else None
        seeds = []
        for ops in plans:
            genes = encode_operations(self.domain, self.domain.initial_state, ops, rng=rng)
            seeds.append(Individual(genes=genes))
        return seeds

    def solve(
        self,
        start_state: Optional[object] = None,
        seeds: Optional[Sequence[Individual]] = None,
    ) -> PlanningOutcome:
        """Run the configured GA and package the outcome."""
        if self.multiphase is not None:
            if seeds:
                raise ValueError("seeding is only supported in single-phase mode")
            mp: MultiPhaseResult = run_multiphase(
                self.domain, self.multiphase, self.rng, start_state=start_state
            )
            return PlanningOutcome(
                plan=mp.plan,
                solved=mp.solved,
                goal_fitness=mp.goal_fitness,
                plan_length=mp.plan_length,
                plan_cost=self.domain.plan_cost(mp.plan),
                generations=mp.total_generations,
                elapsed_seconds=mp.elapsed_seconds,
                detail=mp,
            )
        result: GAResult = run_ga(
            self.domain, self.config, self.rng, start_state=start_state, seeds=seeds
        )
        decoded = result.best.decoded
        assert decoded is not None and result.best.fitness is not None
        return PlanningOutcome(
            plan=decoded.operations,
            solved=result.best.fitness.goal_reached,
            goal_fitness=result.best.fitness.goal,
            plan_length=len(decoded.operations),
            plan_cost=decoded.cost,
            generations=result.generations_run,
            elapsed_seconds=result.elapsed_seconds,
            detail=result,
        )
