"""The single-phase GA planner (paper, Sections 3.1–3.4).

One run evolves a fixed-size population of variable-length float genomes:

1. evaluate every individual (decode against the start state, score with
   the weighted goal + cost fitness),
2. select parents by tournament,
3. pair parents and apply one of the three crossovers with probability
   ``crossover_rate`` (children replace their parents),
4. apply per-gene uniform-reset mutation,
5. replace the population and repeat.

The best individual *by goal fitness* seen in any generation is tracked
across the whole run (the paper reports "the individual with the highest
goal fitness in each run").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import GAConfig
from repro.core.crossover import CROSSOVER_OPERATORS
from repro.core.fitness import FitnessFunction
from repro.core.individual import Individual
from repro.core.mutation import uniform_reset_mutation
from repro.core.parallel import EvaluationContext, Evaluator, SerialEvaluator
from repro.core.popbuffer import PopulationBuffer, breed, select_parent_indices
from repro.core.selection import tournament_selection
from repro.core.stats import GenerationStats, RunHistory
from repro.obs.events import DecodeCacheSnapshot, GenerationComplete
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.protocol import PlanningDomain

__all__ = ["GARun", "GAResult", "initial_population", "run_ga"]


@dataclass
class GAResult:
    """Outcome of one single-phase run.

    Attributes
    ----------
    best:
        The individual with the highest goal fitness seen during the run
        (ties broken by total fitness).
    history:
        Per-generation statistics.
    generations_run:
        Number of generations actually evolved (< budget when
        ``stop_on_goal`` triggered).
    solved_at_generation:
        First generation (0-based) whose population contained a solving
        individual, or ``None``.
    start_state:
        The state this run searched from.
    elapsed_seconds:
        Wall-clock time of the run.
    """

    best: Individual
    history: RunHistory
    generations_run: int
    solved_at_generation: Optional[int]
    start_state: object
    elapsed_seconds: float

    @property
    def solved(self) -> bool:
        return self.best.fitness is not None and self.best.fitness.goal_reached

    @property
    def best_plan(self) -> tuple:
        if self.best.decoded is None:
            raise ValueError("best individual was never decoded")
        return self.best.decoded.operations


def initial_population(
    config: GAConfig, rng: np.random.Generator, seeds: Optional[Sequence[Individual]] = None
) -> List[Individual]:
    """Random initial population (Section 3.2), optionally partially seeded.

    *seeds* (at most the population size) are copied in first; the remainder
    is random.  Seeding is the GenPlan-style strategy studied in the seeding
    ablation — the paper's own experiments use a fully random population.
    """
    population: List[Individual] = []
    if seeds:
        if len(seeds) > config.population_size:
            raise ValueError(
                f"{len(seeds)} seeds exceed population size {config.population_size}"
            )
        population.extend(s.copy() for s in seeds)
    while len(population) < config.population_size:
        if isinstance(config.init_length, tuple):
            lo, hi = config.init_length
            length = int(rng.integers(lo, hi + 1))
        else:
            length = config.init_length
        if config.max_len is not None:
            length = min(length, config.max_len)
        population.append(Individual.random(length, rng))
    return population


class GARun:
    """A stepwise-drivable single-phase GA.

    Exposes :meth:`step` for callers that need per-generation control (the
    multi-phase driver, tests, live dashboards) and :meth:`run` for the
    plain loop.

    Observability: *tracer* receives ``generation`` events (one per
    evaluated generation) and a final ``decode-cache`` snapshot; *metrics*
    gets the ``selection`` / ``variation`` timers plus whatever the
    evaluator records.  Both default to the ambient pair installed by
    :func:`repro.obs.observe` (the null tracer / no registry otherwise), and
    *scope* tags this run's events when several runs share one tracer
    (phases, islands).
    """

    def __init__(
        self,
        domain: PlanningDomain,
        config: GAConfig,
        rng: np.random.Generator,
        start_state: Optional[object] = None,
        evaluator: Optional[Evaluator] = None,
        seeds: Optional[Sequence[Individual]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        scope: str = "",
    ) -> None:
        if config.max_len is None:
            raise ValueError("GAConfig.max_len must be set (the paper's MaxLen)")
        self.domain = domain
        self.config = config
        self.rng = rng
        self.start_state = start_state if start_state is not None else domain.initial_state
        self.context = EvaluationContext(
            domain=domain,
            start_state=self.start_state,
            fitness=FitnessFunction(domain, config.goal_weight, config.cost_weight),
            truncate_at_goal=config.truncate_at_goal,
            memoize=config.decode_engine,
            vector=getattr(config, "vector_decode", None),
            backend=getattr(config, "decode_backend", None),
        )
        self.evaluator = evaluator if evaluator is not None else SerialEvaluator()
        self.tracer = tracer if tracer is not None else default_tracer()
        self.metrics = metrics if metrics is not None else default_metrics()
        self.scope = scope
        self.evaluator.bind_observability(self.tracer, self.metrics, scope=scope)
        self._crossover = CROSSOVER_OPERATORS[config.crossover]
        self._batched = bool(getattr(config, "batched", True))
        # The state-matching crossovers read parents' match_keys, so the
        # batched path must keep decoded plans; random crossover does not,
        # which lets shared-memory dispatch skip shipping plans back.
        self._keep_plans = config.crossover != "random"
        self._buffer: Optional[PopulationBuffer] = None
        self._individuals: Optional[List[Individual]] = None
        self.population = initial_population(config, rng, seeds=seeds)
        self.history = RunHistory()
        self.generation = 0
        self.best: Optional[Individual] = None
        self.solved_at: Optional[int] = None

    # -- population storage --------------------------------------------------
    #
    # With ``config.batched`` the population lives in a PopulationBuffer;
    # the ``population`` property keeps the historical list-of-Individual
    # surface working (checkpoints, islands, tests) by materialising on
    # read and re-packing on write.

    @property
    def population(self) -> List[Individual]:
        if self._buffer is not None:
            return self._buffer.to_individuals()
        assert self._individuals is not None
        return self._individuals

    @population.setter
    def population(self, value) -> None:
        if isinstance(value, PopulationBuffer):
            self._buffer, self._individuals = value, None
        elif self._batched:
            self._buffer = PopulationBuffer.from_individuals(
                value, keep_plans=self._keep_plans
            )
            self._individuals = None
        else:
            self._individuals, self._buffer = list(value), None

    @property
    def buffer(self) -> Optional[PopulationBuffer]:
        """The structure-of-arrays population, or ``None`` when not batched."""
        return self._buffer

    # -- internals -----------------------------------------------------------

    def _evaluate_and_record(self) -> None:
        if self._buffer is not None:
            self._evaluate_and_record_batched()
            return
        self.evaluator.evaluate(self.population, self.context)
        stats = GenerationStats.from_population(self.generation, self.population)
        self.history.record(stats)
        gen_best = max(self.population, key=lambda ind: ind.sort_key())
        if self.best is None or gen_best.sort_key() > self.best.sort_key():
            self.best = gen_best.copy()
        if self.solved_at is None and stats.solved_count > 0:
            self.solved_at = self.generation
        if self.tracer.enabled:
            self.tracer.emit(GenerationComplete.from_stats(stats, scope=self.scope))

    def _evaluate_and_record_batched(self) -> None:
        buf = self._buffer
        assert buf is not None
        self.evaluator.evaluate_buffer(buf, self.context)
        stats = GenerationStats.from_buffer(self.generation, buf)
        self.history.record(stats)
        bi = buf.best_index()
        key = (float(buf.goal[bi]), float(buf.total[bi]))
        if self.best is None or key > self.best.sort_key():
            best = buf.materialize(bi)
            if best.decoded is None:
                # Shared-memory dispatch returns packed fitness only; the
                # single generation winner is decoded lazily parent-side.
                best.decoded = self.context.decode_genes(best.genes)
            self.best = best
        if self.solved_at is None and stats.solved_count > 0:
            self.solved_at = self.generation
        if self.tracer.enabled:
            self.tracer.emit(GenerationComplete.from_stats(stats, scope=self.scope))

    def _next_generation(self) -> None:
        cfg = self.config
        if self._buffer is not None:
            t0 = time.perf_counter()
            parent_idx = select_parent_indices(self._buffer, cfg, self.rng)
            t1 = time.perf_counter()
            self._buffer = breed(self._buffer, parent_idx, cfg, self.rng)
            self.generation += 1
            if self.metrics is not None:
                self.metrics.timer("selection").record(t1 - t0)
                self.metrics.timer("variation").record(time.perf_counter() - t1)
                self.metrics.counter("batched_generations").add(1)
            return
        t0 = time.perf_counter()
        parents = tournament_selection(
            self.population, cfg.population_size, self.rng, cfg.tournament_size
        )
        t1 = time.perf_counter()
        offspring: List[Individual] = []
        if cfg.elitism:
            elite = sorted(self.population, key=lambda ind: ind.total_fitness, reverse=True)
            offspring.extend(e.copy() for e in elite[: cfg.elitism])
        i = 0
        while len(offspring) < cfg.population_size:
            p1 = parents[i % len(parents)]
            p2 = parents[(i + 1) % len(parents)]
            i += 2
            if self.rng.random() < cfg.crossover_rate:
                c1, c2 = self._crossover(p1, p2, self.rng, max_len=cfg.max_len)
            else:
                c1, c2 = p1.copy(), p2.copy()
            for child in (c1, c2):
                child = uniform_reset_mutation(child, cfg.mutation_rate, self.rng)
                offspring.append(child)
                if len(offspring) >= cfg.population_size:
                    break
        self.population = offspring
        self.generation += 1
        if self.metrics is not None:
            self.metrics.timer("selection").record(t1 - t0)
            self.metrics.timer("variation").record(time.perf_counter() - t1)

    # -- public API ----------------------------------------------------------

    def step(self) -> GenerationStats:
        """Evaluate the current generation, then breed the next one."""
        self._evaluate_and_record()
        self._next_generation()
        return self.history.generations[-1]

    def run(
        self, on_generation: Optional[Callable[[GenerationStats], Optional[bool]]] = None
    ) -> GAResult:
        """Run to the generation budget (or to the first solution).

        *on_generation* receives each generation's stats; returning a truthy
        value stops the run early — termination criteria from
        :mod:`repro.core.termination` plug in here.
        """
        t0 = time.perf_counter()
        for _ in range(self.config.generations):
            stats = self.step()
            if on_generation is not None and on_generation(stats):
                break
            if self.config.stop_on_goal and self.solved_at is not None:
                break
        assert self.best is not None
        if self.tracer.enabled:
            info = self.evaluator.cache_info()
            if info is not None:
                self.tracer.emit(
                    DecodeCacheSnapshot(scope=self.scope, hits=info[0], misses=info[1])
                )
        return GAResult(
            best=self.best,
            history=self.history,
            generations_run=self.generation,
            solved_at_generation=self.solved_at,
            start_state=self.start_state,
            elapsed_seconds=time.perf_counter() - t0,
        )


def run_ga(
    domain: PlanningDomain,
    config: GAConfig,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    evaluator: Optional[Evaluator] = None,
    seeds: Optional[Sequence[Individual]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    scope: str = "",
) -> GAResult:
    """Convenience wrapper: construct a :class:`GARun` and run it."""
    return GARun(
        domain,
        config,
        rng,
        start_state=start_state,
        evaluator=evaluator,
        seeds=seeds,
        tracer=tracer,
        metrics=metrics,
        scope=scope,
    ).run()
