"""Whole-population vectorised decode over a domain kernel (DESIGN.md §12).

Where :class:`~repro.core.decode_engine.DecodeEngine` makes decoding cheap
by *remembering* per-genome walks, this module makes it cheap by *changing
the unit of work*: a :class:`VectorDecoder` advances every genome of a
:class:`~repro.core.popbuffer.PopulationBuffer` by one gene per iteration
with a handful of numpy gathers against a :class:`~repro.protocol.
DomainKernel`'s int tables — no per-gene Python bytecode, no boxed floats,
no dict lookups.  Rows that stop (goal, dead end, genome exhausted) are
compressed out of the active set, so the loop runs ``max(used_genes)``
iterations over ever-shrinking arrays.

The dirty-prefix machinery carries over at row granularity: a row with a
``(prefix_plan, dirty_from)`` hint re-enters the tables at the parent
plan's ``state_keys[dirty]`` via :meth:`~repro.protocol.DomainKernel.
id_for_key` and resumes mid-arena; a miss (kernel reset since the parent
was decoded) falls back to decoding the row from gene 0 — never to the
object path, so a batch is all-vector or not dispatched here at all.

Exactness contract: results are bit-identical to the object decode path.
The per-gene index ``int(gene * k)`` is reproduced as
``(genes * k).astype(np.int64)`` (float64 multiply then truncation — the
same two operations C-side), goal fitness comes from the kernel's
``goal_fit`` table (exact per the :class:`~repro.protocol.DomainKernel`
contract), and the fitness combination applies
:class:`~repro.core.fitness.FitnessFunction`'s expression elementwise —
IEEE float64 arithmetic is identical scalar-by-scalar or array-wise.
Unit-cost plans get ``cost = float(used_genes)``, exactly the sum of
``used_genes`` additions of 1.0; non-unit costs are gathered per step and
accumulated in gene order, matching the naive decoder's left-to-right
rounding.  One simplification the exact tables buy: a resumed row never
needs the parent's goal flag, because ``goal_mask[sid]`` *is* that flag —
the engine's careful ``p == used_genes`` case collapses into the uniform
stop test.  The suites in ``tests/core/test_vector_equivalence.py``
enforce bit-identity against whole GA trajectories;
``tests/core/test_vector_decode.py`` covers the edges (empty genomes, dead
ends, row-boundary resumes, evicted-transition fallback).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.encoding import DecodedPlan
from repro.protocol import DomainKernel, PlanningDomain

__all__ = ["VectorDecoder", "vector_supported"]

#: Sentinel for "key not yet memoised" in the sid→key caches (state keys
#: themselves may be any hashable value, so ``None`` is not safe).
_MISSING = object()


def vector_supported(domain: PlanningDomain) -> bool:
    """Whether *domain* exposes a kernel (i.e. the vector path can run)."""
    return domain.kernel() is not None


class VectorDecoder:
    """Decodes gene arenas against a :class:`~repro.protocol.DomainKernel`.

    One decoder persists across generations (mirroring
    :class:`~repro.core.decode_engine.DecodeEngine`): :meth:`bind` is
    called once per batch with the current evaluation context and
    re-interns the start state only when it, or the kernel epoch, changed.

    The walk itself — advance every active row to its stopping point — is
    isolated in :meth:`_walk` so alternative backends
    (:class:`~repro.core.fused_decode.FusedDecoder`) can replace just the
    inner loop while inheriting hint processing, fitness combination and
    plan reconstruction verbatim, keeping bit-identity by construction.
    """

    #: Tag identifying the walk implementation in summaries and benches.
    backend_name = "numpy"

    def __init__(self, kernel: DomainKernel) -> None:
        self.kernel = kernel
        domain = kernel.domain
        self._has_dkey = (
            type(domain).decode_key is not PlanningDomain.decode_key
        )
        self._start_sid: Optional[int] = None
        self._start_key = None
        self._start_dkey = None
        self._epoch = -1
        # sid → state_key / decode_key memo for plan reconstruction: keys
        # are rebuilt from packed rows on every state_key_of call, which
        # dominates rebuild cost without this (states repeat heavily
        # across rows and generations).  Cleared whenever the epoch moves.
        self._keys: List[object] = []
        self._dkeys: List[object] = []
        self._ops: List[object] = []
        self._truncate = True
        self._gw = 0.0
        self._cw = 0.0
        # Counters (picked up by the evaluator's batch metrics).
        self.vector_rows = 0
        self.vector_genes = 0
        self.prefix_fallbacks = 0
        self.genes_reused = 0
        self.kernel_resets = 0

    # -- binding ---------------------------------------------------------------

    def bind(self, context) -> None:
        """(Re)target the decoder at *context*'s start state and weights."""
        kernel = self.kernel
        if kernel.overflowed:
            kernel.reset()
            self.kernel_resets += 1
        domain = kernel.domain
        start = context.start_state
        start_key = domain.state_key(start)
        if (
            self._start_sid is None
            or self._start_key != start_key
            or self._epoch != kernel.epoch
        ):
            if self._epoch != kernel.epoch:
                self._keys.clear()
                self._dkeys.clear()
                self._ops.clear()
            self._start_sid = kernel.intern(start)
            self._start_key = start_key
            self._start_dkey = domain.decode_key(start) if self._has_dkey else None
            self._epoch = kernel.epoch
        self._truncate = context.truncate_at_goal
        fit = context.fitness
        self._gw = fit.goal_weight
        self._cw = fit.cost_weight

    # -- the decode loop -------------------------------------------------------

    def decode_rows(
        self,
        arena: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        keep_plans: bool,
        hints: Optional[List[Optional[Tuple[DecodedPlan, int]]]] = None,
    ):
        """Decode ``len(offsets)`` genome rows out of a shared arena.

        Returns ``(total, goal, costf, reached, used, plans)`` — float64 /
        bool / int64 arrays plus a per-row plan list.  ``plans`` holds a
        :class:`DecodedPlan` for every row when *keep_plans* is true, and
        otherwise only for rows fully served by their parent prefix (whose
        plan already exists); remaining entries are ``None``.  ``hints[i]``
        may hold a ``(prefix_plan, dirty_from)`` pair for resume.
        """
        kernel = self.kernel
        assert self._start_sid is not None, "VectorDecoder.bind() must run first"
        n = int(lengths.shape[0])
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        unit = kernel.unit_cost

        cur = np.full(n, self._start_sid, dtype=np.int64)
        pos = np.zeros(n, dtype=np.int64)
        cost = np.zeros(n, dtype=np.float64)
        # Rows whose decode is fully served by the parent prefix (the parent
        # stopped strictly inside the shared genes): the parent's plan *is*
        # the child's plan, no walking needed.
        copied: dict = {}
        # Per-row resume bookkeeping for plan reconstruction.
        resume_at = np.zeros(n, dtype=np.int64)
        prefix_of: List[Optional[DecodedPlan]] = [None] * n

        if hints is not None:
            for i, hint in enumerate(hints):
                if hint is None:
                    continue
                plan, dirty = hint
                # Mirrors TransitionCache.decode's prefix-validity test.
                if plan is None or dirty is None or dirty <= 0:
                    continue
                if plan.state_keys[0] != self._start_key:
                    continue
                length = int(lengths[i])
                d = dirty if dirty <= length else length
                used_p = plan.used_genes
                if used_p < d:
                    copied[i] = plan
                    self.genes_reused += used_p
                    continue
                sid = kernel.id_for_key(plan.state_keys[d])
                if sid is None:
                    self.prefix_fallbacks += 1
                    continue  # evicted since the parent decoded: full redo
                cur[i] = sid
                pos[i] = d
                resume_at[i] = d
                prefix_of[i] = plan
                if unit:
                    cost[i] = float(d)
                else:
                    # Left-to-right re-accumulation: same rounding as a full
                    # decode (mirrors TransitionCache._resume).
                    opcost = kernel.domain.operation_cost
                    acc = 0.0
                    for op in plan.operations[:d]:
                        acc += opcost(op)
                    cost[i] = acc
                self.genes_reused += d

        # Slot/successor trace for plan reconstruction.
        if keep_plans:
            max_len = int(lengths.max()) if n else 0
            slot_tr = np.full((n, max_len), -1, dtype=np.int32)
            id_tr = np.full((n, max_len), -1, dtype=np.int32)
        else:
            slot_tr = id_tr = None

        active = np.arange(n, dtype=np.int64)
        if copied:
            mask = np.ones(n, dtype=bool)
            mask[list(copied)] = False
            active = active[mask]
        # Initial stop test.  Resumed rows need no special goal handling:
        # the engine's "carry the parent's goal flag" case is subsumed by
        # goal_mask being exactly that flag for the resumed state.
        stop = pos[active] >= lengths[active]
        if self._truncate:
            stop |= kernel.goal_mask[cur[active]]
        active = active[~stop]

        if active.size:
            self._walk(arena, offsets, lengths, cur, pos, cost, active, slot_tr, id_tr)

        # Fitness from the tables, vectorised with FitnessFunction's exact
        # arithmetic (validate range, clamp, combine).
        gfit = kernel.goal_fit[cur].copy()
        reached = kernel.goal_mask[cur].copy()
        used = pos
        bad = (gfit < 0.0) | (gfit > 1.0 + 1e-12)
        if bad.any():
            raise ValueError(
                f"domain {kernel.domain.name!r} returned goal fitness "
                f"{float(gfit[bad][0])} outside [0, 1]"
            )
        np.minimum(gfit, 1.0, out=gfit)
        costf = 1.0 / (1.0 + cost)
        total = self._gw * gfit + self._cw * costf

        if keep_plans and n:
            self._prefill_keys(id_tr)
        plans: List[Optional[DecodedPlan]] = [None] * n
        for i, plan in copied.items():
            # Prefix-served rows: the plan is authoritative; score it with
            # the scalar FitnessFunction arithmetic (identical to the array
            # expression, and these rows were never walked above).
            g = float(kernel.domain.goal_fitness(plan.final_state))
            if not 0.0 <= g <= 1.0 + 1e-12:
                raise ValueError(
                    f"domain {kernel.domain.name!r} returned goal fitness "
                    f"{g} outside [0, 1]"
                )
            g = min(g, 1.0)
            fc = 1.0 / (1.0 + plan.cost)
            gfit[i] = g
            costf[i] = fc
            total[i] = self._gw * g + self._cw * fc
            reached[i] = plan.goal_reached
            cost[i] = plan.cost
            used[i] = plan.used_genes
            plans[i] = plan
        if keep_plans:
            for i in range(n):
                if plans[i] is None:
                    plans[i] = self._rebuild_plan(
                        i,
                        int(used[i]),
                        int(resume_at[i]),
                        prefix_of[i],
                        slot_tr,
                        id_tr,
                        int(cur[i]),
                        float(cost[i]),
                        bool(reached[i]),
                    )
        self.vector_rows += n
        return total, gfit, costf, reached, used, plans

    def _walk(
        self,
        arena: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        cur: np.ndarray,
        pos: np.ndarray,
        cost: np.ndarray,
        active: np.ndarray,
        slot_tr: Optional[np.ndarray],
        id_tr: Optional[np.ndarray],
    ) -> None:
        """Advance every row in *active* to its stopping point, in place.

        ``cur`` / ``pos`` / ``cost`` are the per-row state arrays (updated
        in place); ``slot_tr`` / ``id_tr`` are the trace matrices to fill
        when plans are kept (``None`` otherwise).  Rows enter having
        already passed the initial stop test.  Overridable backend hook:
        this numpy implementation advances the whole active set one gene
        per iteration; the fused backend walks each row to completion in a
        compiled scalar loop.  Both must leave identical state behind.
        """
        kernel = self.kernel
        unit = kernel.unit_cost
        keep_plans = slot_tr is not None
        while active.size:
            # Re-read tables each iteration: fill_transitions may reallocate.
            k = kernel.valid_count[cur[active]].astype(np.int64)
            alive = k > 0  # k == 0: dead end, row is finished
            if not alive.all():
                active = active[alive]
                if not active.size:
                    break
                k = k[alive]
            g = arena[offsets[active] + pos[active]]
            idx = (g * k).astype(np.int64)
            np.minimum(idx, k - 1, out=idx)
            nxt = kernel.succ[cur[active], idx].astype(np.int64)
            miss = nxt < 0
            if miss.any():
                kernel.fill_transitions(cur[active][miss], idx[miss])
                nxt[miss] = kernel.succ[cur[active][miss], idx[miss]]
            if keep_plans:
                slot_tr[active, pos[active]] = idx
                id_tr[active, pos[active]] = nxt
            if unit:
                cost[active] += 1.0
            else:
                cost[active] += kernel.op_cost[cur[active], idx]
            pos[active] += 1
            cur[active] = nxt
            self.vector_genes += int(active.size)
            stop = pos[active] >= lengths[active]
            if self._truncate:
                stop |= kernel.goal_mask[cur[active]]
            active = active[~stop]

    def _prefill_keys(self, id_tr: np.ndarray) -> None:
        """Bulk-memoise every lookup the plan rebuild loop will make.

        Gathers the unique ids in the batch's successor trace and fetches
        their (state, decode) keys through the kernel's vectorised bulk
        API — plus their valid-operation tuples — so :meth:`_rebuild_plan`
        runs entirely on cache hits (direct list indexing, no per-step
        method calls).
        """
        sids = id_tr[id_tr >= 0]
        if not sids.size:
            return
        uniq = np.unique(sids).tolist()
        top = uniq[-1]
        for cache, bulk in (
            (self._keys, self.kernel.state_keys_of),
            (self._dkeys, self.kernel.decode_keys_of) if self._has_dkey else (None, None),
        ):
            if cache is None:
                continue
            if top >= len(cache):
                cache.extend([_MISSING] * (top + 1 - len(cache)))
            miss = [s for s in uniq if cache[s] is _MISSING]
            if miss:
                for sid, key in zip(miss, bulk(np.asarray(miss, dtype=np.int64))):
                    cache[sid] = key
        ops_cache = self._ops
        if top >= len(ops_cache):
            ops_cache.extend([_MISSING] * (top + 1 - len(ops_cache)))
        operations_of = self.kernel.operations_of
        for s in uniq:
            if ops_cache[s] is _MISSING:
                ops_cache[s] = operations_of(s)

    def _ops_of(self, sid: int):
        """Memoised ``kernel.operations_of`` (cleared on epoch change)."""
        cache = self._ops
        if sid >= len(cache):
            cache.extend([_MISSING] * (sid + 1 - len(cache)))
        ops = cache[sid]
        if ops is _MISSING:
            ops = cache[sid] = self.kernel.operations_of(sid)
        return ops

    def _key_of(self, sid: int):
        """Memoised ``kernel.state_key_of`` (cleared on epoch change)."""
        cache = self._keys
        if sid >= len(cache):
            cache.extend([_MISSING] * (sid + 1 - len(cache)))
        key = cache[sid]
        if key is _MISSING:
            key = cache[sid] = self.kernel.state_key_of(sid)
        return key

    def _dkey_of(self, sid: int):
        """Memoised ``kernel.decode_key_of`` (cleared on epoch change)."""
        cache = self._dkeys
        if sid >= len(cache):
            cache.extend([_MISSING] * (sid + 1 - len(cache)))
        key = cache[sid]
        if key is _MISSING:
            key = cache[sid] = self.kernel.decode_key_of(sid)
        return key

    def _rebuild_plan(
        self,
        row: int,
        used: int,
        resume_at: int,
        prefix: Optional[DecodedPlan],
        slot_tr: np.ndarray,
        id_tr: np.ndarray,
        final_sid: int,
        cost: float,
        reached: bool,
    ) -> DecodedPlan:
        """Reconstruct one row's :class:`DecodedPlan` from the slot trace."""
        kernel = self.kernel
        has_dkey = self._has_dkey
        if prefix is not None and resume_at > 0:
            ops = list(prefix.operations[:resume_at])
            keys = list(prefix.state_keys[: resume_at + 1])
            dkeys = list(prefix.match_keys[: resume_at + 1]) if has_dkey else None
            prev_sid = kernel.id_for_key(keys[-1])
            assert prev_sid is not None  # interned at resume; no reset mid-batch
        else:
            ops = []
            keys = [self._start_key]
            dkeys = [self._start_dkey] if has_dkey else None
            prev_sid = self._start_sid
        # Row traces as plain int lists (one C-level tolist beats per-step
        # numpy scalar indexing); every traced sid was covered by
        # _prefill_keys, so the memo lists are indexed directly via map().
        slots = slot_tr[row, resume_at:used].tolist()
        sids = id_tr[row, resume_at:used].tolist()
        if sids:
            keys.extend(map(self._keys.__getitem__, sids))
            if has_dkey:
                dkeys.extend(map(self._dkeys.__getitem__, sids))
            # Operation p comes from the *predecessor* chain: the entry
            # state, then every traced sid but the last.
            self._ops_of(prev_sid)  # resume/start sid may not be traced
            chain = sids[:-1]
            chain.insert(0, prev_sid)
            ops.extend(
                row_ops[slot]
                for row_ops, slot in zip(map(self._ops.__getitem__, chain), slots)
            )
        keys_t = tuple(keys)
        return DecodedPlan(
            operations=tuple(ops),
            state_keys=keys_t,
            match_keys=tuple(dkeys) if has_dkey else keys_t,
            final_state=kernel.state_of(final_sid),
            used_genes=used,
            goal_reached=reached,
            cost=cost,
        )

    # -- buffer-level entry point ---------------------------------------------

    def evaluate_pending(self, buffer, context, keep_plans: Optional[bool] = None) -> int:
        """Evaluate every unevaluated row of *buffer* in place.

        Returns the number of rows decoded.  Fills the packed fitness
        arrays and the ``plans`` list; prefix hints are consumed and
        cleared either way.  *keep_plans* defaults to ``buffer.keep_plans``;
        the serial evaluator forces it on so the next generation's breeding
        can carry prefix hints even under the random crossover (only
        shared-memory dispatch legitimately skips plans).
        """
        pending, hints = buffer.pending_hints()
        if pending.size == 0:
            return 0
        if keep_plans is None:
            keep_plans = buffer.keep_plans
        self.bind(context)
        total, gfit, costf, reached, used, plans = self.decode_rows(
            buffer.genes,
            buffer.offsets[pending],
            buffer.lengths[pending],
            keep_plans,
            hints,
        )
        buffer.total[pending] = total
        buffer.goal[pending] = gfit
        buffer.cost[pending] = costf
        buffer.goal_reached[pending] = reached
        buffer.evaluated[pending] = True
        for j, i in enumerate(pending):
            i = int(i)
            buffer.plans[i] = plans[j]
            buffer.prefix_plans[i] = None
            buffer.dirty_from[i] = -1
        return int(pending.size)

    def counters(self) -> dict:
        """Decoder counters, flat, using canonical metric names."""
        return {
            "vector_rows": self.vector_rows,
            "vector_genes": self.vector_genes,
            "vector_prefix_fallbacks": self.prefix_fallbacks,
            "vector_genes_reused": self.genes_reused,
            "vector_kernel_resets": self.kernel_resets,
            "vector_kernel_states": self.kernel.n_states,
        }
