"""Checkpointing: persist and restore GA run state.

Long full-fidelity experiment sweeps (50 runs × 500 generations) benefit
from resumability.  A checkpoint captures the population genomes, the RNG
state, the generation counter and the best-so-far individual; the domain
and config are reconstructed by the caller (they are code, not data).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.ga import GARun
from repro.core.individual import Individual
from repro.obs.events import CheckpointWrite
from repro.obs.tracer import NULL_TRACER

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint", "restore_run"]

_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """Serializable snapshot of a :class:`GARun`."""

    version: int
    generation: int
    genomes: List[np.ndarray]
    rng_state: dict
    best_genes: Optional[np.ndarray]
    solved_at: Optional[int]


def capture(run: GARun) -> Checkpoint:
    """Snapshot a run (populations are stored as raw genomes)."""
    return Checkpoint(
        version=_FORMAT_VERSION,
        generation=run.generation,
        genomes=[ind.genes.copy() for ind in run.population],
        rng_state=run.rng.bit_generator.state,
        best_genes=None if run.best is None else run.best.genes.copy(),
        solved_at=run.solved_at,
    )


def save_checkpoint(run: GARun, path: str | Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(capture(run), fh, protocol=pickle.HIGHEST_PROTOCOL)
    if run.tracer.enabled:
        run.tracer.emit(
            CheckpointWrite(scope=run.scope, path=str(path), generation=run.generation)
        )


def load_checkpoint(path: str | Path) -> Checkpoint:
    with open(path, "rb") as fh:
        ckpt = pickle.load(fh)
    if not isinstance(ckpt, Checkpoint):
        raise ValueError(f"{path} does not contain a Checkpoint")
    if ckpt.version != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint version {ckpt.version} unsupported (expected {_FORMAT_VERSION})"
        )
    return ckpt


def restore_run(run: GARun, ckpt: Checkpoint) -> GARun:
    """Load checkpoint state into a freshly constructed run.

    The run must have been built with the same domain, config and start
    state that produced the checkpoint; only the evolving state is restored.

    Observability round-trip: events are tagged with the generation counter,
    and the restored run resumes counting at ``ckpt.generation``, so a trace
    spanning the original and resumed runs contains each generation exactly
    once.  The best-individual re-evaluation below is bookkeeping, not new
    search work — it is deliberately hidden from the run's tracer/metrics so
    resuming never double-counts evaluations.
    """
    if len(ckpt.genomes) != run.config.population_size:
        raise ValueError(
            f"checkpoint population size {len(ckpt.genomes)} does not match "
            f"config population size {run.config.population_size}"
        )
    run.population = [Individual(genes=g) for g in ckpt.genomes]
    run.generation = ckpt.generation
    run.rng.bit_generator.state = ckpt.rng_state
    run.solved_at = ckpt.solved_at
    if ckpt.best_genes is not None:
        best = Individual(genes=ckpt.best_genes)
        run.evaluator.bind_observability(NULL_TRACER, None, scope=run.scope)
        try:
            run.evaluator.evaluate([best], run.context)
        finally:
            run.evaluator.bind_observability(run.tracer, run.metrics, scope=run.scope)
        run.best = best
    return run
