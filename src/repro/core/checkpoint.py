"""Checkpointing: persist and restore GA run state — crash-safely.

Long full-fidelity experiment sweeps (50 runs × 500 generations) benefit
from resumability.  A checkpoint captures the population genomes, the RNG
state, the generation counter and the best-so-far individual; the domain
and config are reconstructed by the caller (they are code, not data).

Durability contract (the fault-model half of this module):

- **Atomic writes** — :func:`save_checkpoint` writes to a temporary file in
  the target directory, fsyncs, then ``os.replace``\\ s it into place, so a
  crash mid-write never leaves a partial checkpoint observable under the
  final name.
- **Integrity** — the on-disk container is a versioned header (magic +
  CRC32 of the pickled payload); :func:`load_checkpoint` rejects truncated
  or bit-flipped files with :class:`CheckpointError` instead of unpickling
  garbage.  Headerless files from older versions still load (legacy path).
- **Recovery** — :func:`load_latest_checkpoint` scans a directory newest-
  first and silently falls back past corrupted files to the last good
  snapshot, emitting a ``checkpoint-recovered`` event when it had to skip.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.ga import GARun
from repro.core.individual import Individual
from repro.obs.events import CheckpointRecovered, CheckpointWrite
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer, default_metrics, default_tracer

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "checkpoint_path",
    "restore_run",
]

_FORMAT_VERSION = 1

#: On-disk container: magic, format-version byte, CRC32 of the payload.
_MAGIC = b"RGACKPT\x01"
_HEADER = struct.Struct("<8sI")  # magic + crc32


class CheckpointError(ValueError):
    """A checkpoint file is corrupt: truncated, bit-flipped, or not ours."""


@dataclass
class Checkpoint:
    """Serializable snapshot of a :class:`GARun`."""

    version: int
    generation: int
    genomes: List[np.ndarray]
    rng_state: dict
    best_genes: Optional[np.ndarray]
    solved_at: Optional[int]


def capture(run: GARun) -> Checkpoint:
    """Snapshot a run (populations are stored as raw genomes)."""
    return Checkpoint(
        version=_FORMAT_VERSION,
        generation=run.generation,
        genomes=[ind.genes.copy() for ind in run.population],
        rng_state=run.rng.bit_generator.state,
        best_genes=None if run.best is None else run.best.genes.copy(),
        solved_at=run.solved_at,
    )


def checkpoint_path(directory: str | Path, generation: int) -> Path:
    """Canonical per-generation filename; lexical order == generation order."""
    return Path(directory) / f"ckpt-{generation:08d}.pkl"


def save_checkpoint(run: GARun, path: str | Path) -> None:
    """Persist *run* to *path* atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(capture(run), protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, zlib.crc32(payload))
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on failure — os.replace consumed it otherwise
            tmp.unlink()
    if run.tracer.enabled:
        run.tracer.emit(
            CheckpointWrite(scope=run.scope, path=str(path), generation=run.generation)
        )


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load and validate one checkpoint file.

    Raises :class:`CheckpointError` (a ``ValueError``) on corruption and
    plain ``ValueError`` on a well-formed file of the wrong shape/version.
    """
    path = Path(path)
    data = path.read_bytes()
    if data.startswith(_MAGIC):
        if len(data) < _HEADER.size:
            raise CheckpointError(f"{path} is truncated: header incomplete")
        _, crc = _HEADER.unpack_from(data)
        payload = data[_HEADER.size :]
        if zlib.crc32(payload) != crc:
            raise CheckpointError(
                f"{path} failed its checksum: file is truncated or corrupted"
            )
        ckpt = pickle.loads(payload)
    else:
        # Legacy headerless bare pickle (pre-hardening checkpoints).
        try:
            ckpt = pickle.loads(data)
        except Exception as exc:
            raise CheckpointError(f"{path} is not a checkpoint (corrupt or foreign file)") from exc
    if not isinstance(ckpt, Checkpoint):
        raise ValueError(f"{path} does not contain a Checkpoint")
    if ckpt.version != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint version {ckpt.version} unsupported (expected {_FORMAT_VERSION})"
        )
    return ckpt


def load_latest_checkpoint(
    directory: str | Path,
    pattern: str = "*.pkl",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[Tuple[Checkpoint, Path]]:
    """Newest loadable checkpoint in *directory*, skipping corrupt files.

    Candidates are taken in reverse lexical order (the
    :func:`checkpoint_path` naming makes that newest-first).  A corrupted
    or unreadable newest file is skipped in favour of the next — emitting a
    ``checkpoint-recovered`` event and ticking ``checkpoints_recovered`` —
    so one torn write never strands a resumable sweep.  Returns ``None``
    when the directory holds no candidates at all; raises
    :class:`CheckpointError` when every candidate is corrupt.
    """
    tracer = tracer if tracer is not None else default_tracer()
    metrics = metrics if metrics is not None else default_metrics()
    directory = Path(directory)
    candidates = sorted(directory.glob(pattern), reverse=True) if directory.is_dir() else []
    if not candidates:
        return None
    skipped: List[str] = []
    for path in candidates:
        try:
            ckpt = load_checkpoint(path)
        except (ValueError, OSError) as exc:
            skipped.append(f"{path.name} ({exc})")
            continue
        if skipped:
            if metrics is not None:
                metrics.counter("checkpoints_recovered").add(1)
            if tracer.enabled:
                tracer.emit(
                    CheckpointRecovered(
                        path=str(path), generation=ckpt.generation, skipped=len(skipped)
                    )
                )
        return ckpt, path
    raise CheckpointError(
        f"no loadable checkpoint in {directory}: all {len(skipped)} candidate(s) "
        "corrupt — " + "; ".join(skipped)
    )


def restore_run(run: GARun, ckpt: Checkpoint) -> GARun:
    """Load checkpoint state into a freshly constructed run.

    The run must have been built with the same domain, config and start
    state that produced the checkpoint; only the evolving state is restored.

    Observability round-trip: events are tagged with the generation counter,
    and the restored run resumes counting at ``ckpt.generation``, so a trace
    spanning the original and resumed runs contains each generation exactly
    once.  The best-individual re-evaluation below is bookkeeping, not new
    search work — it is deliberately hidden from the run's tracer/metrics so
    resuming never double-counts evaluations.
    """
    if len(ckpt.genomes) != run.config.population_size:
        raise ValueError(
            f"checkpoint population size {len(ckpt.genomes)} does not match "
            f"config population size {run.config.population_size}"
        )
    run.population = [Individual(genes=g) for g in ckpt.genomes]
    run.generation = ckpt.generation
    run.rng.bit_generator.state = ckpt.rng_state
    run.solved_at = ckpt.solved_at
    if ckpt.best_genes is not None:
        best = Individual(genes=ckpt.best_genes)
        run.evaluator.bind_observability(NULL_TRACER, None, scope=run.scope)
        try:
            run.evaluator.evaluate([best], run.context)
        finally:
            run.evaluator.bind_observability(run.tracer, run.metrics, scope=run.scope)
        run.best = best
    return run
