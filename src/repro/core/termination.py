"""Termination criteria beyond fixed generation budgets.

The paper stops a run on a generation budget (or first valid solution).
Long experiment sweeps benefit from richer criteria: stagnation detection
(no best-fitness improvement for K generations), fitness targets, and
wall-clock deadlines.  Criteria compose with :func:`any_of` / :func:`all_of`
and plug into :meth:`GARun.run` via the ``on_generation`` callback, or are
polled directly by custom loops.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.core.stats import GenerationStats

__all__ = [
    "TerminationCriterion",
    "Stagnation",
    "FitnessTarget",
    "Deadline",
    "GenerationLimit",
    "any_of",
    "all_of",
]

# A criterion consumes per-generation stats and answers "stop now?".
TerminationCriterion = Callable[[GenerationStats], bool]


class Stagnation:
    """Stop after *patience* generations without best-fitness improvement."""

    def __init__(self, patience: int, min_delta: float = 1e-12) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self._best = float("-inf")
        self._since = 0

    def __call__(self, stats: GenerationStats) -> bool:
        if stats.best_total > self._best + self.min_delta:
            self._best = stats.best_total
            self._since = 0
            return False
        self._since += 1
        return self._since >= self.patience

    def reset(self) -> None:
        self._best = float("-inf")
        self._since = 0


class FitnessTarget:
    """Stop once the generation best reaches *target* total fitness."""

    def __init__(self, target: float) -> None:
        self.target = target

    def __call__(self, stats: GenerationStats) -> bool:
        return stats.best_total >= self.target


class Deadline:
    """Stop after *seconds* of wall-clock time (measured from creation)."""

    def __init__(self, seconds: float, clock: Callable[[], float] = time.perf_counter) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self._clock = clock
        self._end = clock() + seconds

    def __call__(self, stats: GenerationStats) -> bool:
        return self._clock() >= self._end


class GenerationLimit:
    """Stop at generation *limit* (0-based, inclusive trigger)."""

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self.limit = limit

    def __call__(self, stats: GenerationStats) -> bool:
        return stats.generation >= self.limit


def any_of(*criteria: TerminationCriterion) -> TerminationCriterion:
    """Stop when any sub-criterion fires.

    Evaluates every criterion each generation (no short-circuit), so
    stateful criteria like :class:`Stagnation` keep accurate counters.
    """

    def combined(stats: GenerationStats) -> bool:
        return any([c(stats) for c in criteria])

    return combined


def all_of(*criteria: TerminationCriterion) -> TerminationCriterion:
    """Stop only when every sub-criterion fires in the same generation."""

    def combined(stats: GenerationStats) -> bool:
        return all([c(stats) for c in criteria])

    return combined
