"""Structure-of-arrays population engine (DESIGN.md §11).

A :class:`PopulationBuffer` packs every genome of one generation into a
single contiguous ``float64`` arena indexed by ``offsets``/``lengths``
arrays, with parallel ``total``/``goal``/``cost``/``goal_reached`` fitness
arrays and per-row incremental-decode bookkeeping (``dirty_from`` plus
prefix-plan references).  The generation step — tournament selection,
crossover, mutation, elitism — runs directly on the arrays: selection is one
batched draw plus an argmax gather, offspring are materialised with slice
copies into a freshly allocated arena, and every mutation in the generation
lands in one vectorised scatter.

**Replay-exact randomness.**  The object path draws from the generator in a
data-dependent, interleaved order (pair coin → crossover cuts → per-child
mutation mask → replacement values), so a literally "arena-wide" mask draw
would change the stream and break reproducibility against existing runs.
Instead the batched engine *replays the object path's draws exactly*: the
pair loop below issues the same RNG calls in the same order through the
shared samplers (:func:`~repro.core.crossover.sample_crossover_cuts`,
:func:`~repro.core.mutation.sample_uniform_reset`,
:func:`~repro.core.selection.tournament_winner_indices`), while all data
movement — parent copies, splices, mutation application, ``Individual``
construction/validation — is batched away.  Same seed, same trajectory,
whether ``GAConfig.batched`` is on or off.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.crossover import sample_crossover_cuts
from repro.core.fitness import FitnessResult
from repro.core.individual import Individual
from repro.core.mutation import sample_uniform_reset
from repro.core.selection import tournament_winner_indices

__all__ = ["PopulationBuffer", "select_parent_indices", "breed"]


def _offsets_from(lengths: np.ndarray) -> np.ndarray:
    offsets = np.zeros(lengths.shape[0], dtype=np.int64)
    if lengths.shape[0] > 1:
        np.cumsum(lengths[:-1], out=offsets[1:])
    return offsets


class PopulationBuffer:
    """One generation's population as a structure of arrays.

    Attributes
    ----------
    genes:
        Read-only contiguous ``float64`` arena holding every genome
        back-to-back; row *i* occupies ``genes[offsets[i] : offsets[i] +
        lengths[i]]``.
    offsets / lengths:
        ``int64`` index arrays into the arena.
    total / goal / cost:
        Per-row fitness components (``cost`` is the cost *fitness*
        ``1/(1+cost)``, matching :class:`~repro.core.fitness.
        FitnessResult`); NaN until evaluated.
    goal_reached / evaluated:
        Boolean flags per row.
    dirty_from:
        First gene that differs from the prefix plan's genome (``-1`` when
        no incremental-decode hint is available), paired with
        ``prefix_plans``.
    plans:
        Decoded phenotype per evaluated row, or ``None`` when the evaluator
        skipped shipping plans (shared-memory dispatch with
        ``keep_plans=False``).
    keep_plans:
        Whether evaluators must populate ``plans``.  Required by the
        state-matching crossovers (they read parents' ``match_keys``); the
        random crossover leaves it off so shared-memory dispatch can return
        packed fitness arrays only.
    """

    __slots__ = (
        "n",
        "genes",
        "offsets",
        "lengths",
        "total",
        "goal",
        "cost",
        "goal_reached",
        "evaluated",
        "dirty_from",
        "plans",
        "prefix_plans",
        "keep_plans",
    )

    def __init__(
        self,
        genes: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        keep_plans: bool = True,
    ) -> None:
        genes = np.ascontiguousarray(genes, dtype=np.float64)
        if genes.flags.writeable:
            genes.setflags(write=False)
        n = int(lengths.shape[0])
        self.n = n
        self.genes = genes
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.total = np.full(n, np.nan, dtype=np.float64)
        self.goal = np.full(n, np.nan, dtype=np.float64)
        self.cost = np.full(n, np.nan, dtype=np.float64)
        self.goal_reached = np.zeros(n, dtype=bool)
        self.evaluated = np.zeros(n, dtype=bool)
        self.dirty_from = np.full(n, -1, dtype=np.int64)
        self.plans: List[Optional[object]] = [None] * n
        self.prefix_plans: List[Optional[object]] = [None] * n
        self.keep_plans = bool(keep_plans)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_individuals(
        cls, population: Sequence[Individual], keep_plans: bool = True
    ) -> "PopulationBuffer":
        """Pack a list of individuals, preserving evaluation state and hints."""
        if not population:
            raise ValueError("population is empty")
        lengths = np.fromiter((len(ind) for ind in population), np.int64, len(population))
        offsets = _offsets_from(lengths)
        arena = np.empty(int(lengths.sum()), dtype=np.float64)
        for ind, o, length in zip(population, offsets, lengths):
            arena[o : o + length] = ind.genes
        buf = cls(arena, offsets, lengths, keep_plans=keep_plans)
        for i, ind in enumerate(population):
            if ind.is_evaluated:
                buf.set_result(i, ind.decoded, ind.fitness)
            elif ind.prefix_plan is not None and ind.dirty_from is not None:
                buf.prefix_plans[i] = ind.prefix_plan
                buf.dirty_from[i] = int(ind.dirty_from)
        return buf

    # -- row access ----------------------------------------------------------

    def view(self, i: int) -> np.ndarray:
        """Read-only zero-copy view of row *i*'s genome."""
        o = self.offsets[i]
        return self.genes[o : o + self.lengths[i]]

    def prefix_hint(self, i: int):
        """``(prefix_plan, dirty_from)`` for the decode engine (None, None if absent)."""
        prefix = self.prefix_plans[i]
        if prefix is None:
            return None, None
        dirty = int(self.dirty_from[i])
        return (prefix, dirty) if dirty >= 0 else (None, None)

    def pending_hints(self):
        """``(pending, hints)``: unevaluated row indices plus resume hints.

        ``pending`` is the int array of rows with ``evaluated`` unset (in
        row order) and ``hints[j]`` is row ``pending[j]``'s
        ``(prefix_plan, dirty_from)`` pair, or ``None`` when the row has
        no usable hint — exactly the shape
        :meth:`~repro.core.vector_decode.VectorDecoder.decode_rows`
        consumes, so whole-population decoders gather their work list in
        one call.
        """
        pending = np.flatnonzero(~self.evaluated)
        hints = []
        for i in pending:
            plan, dirty = self.prefix_hint(int(i))
            hints.append((plan, dirty) if plan is not None else None)
        return pending, hints

    def fitness_result(self, i: int) -> FitnessResult:
        """Rebuild the row's :class:`FitnessResult` from the packed arrays."""
        return FitnessResult(
            goal=float(self.goal[i]),
            cost=float(self.cost[i]),
            total=float(self.total[i]),
            goal_reached=bool(self.goal_reached[i]),
        )

    def set_result(self, i: int, decoded, fitness) -> None:
        """Record row *i*'s evaluation (plan may be None under shm dispatch)."""
        self.plans[i] = decoded
        self.total[i] = fitness.total
        self.goal[i] = fitness.goal
        self.cost[i] = fitness.cost
        self.goal_reached[i] = fitness.goal_reached
        self.evaluated[i] = True
        self.prefix_plans[i] = None
        self.dirty_from[i] = -1

    def materialize(self, i: int) -> Individual:
        """Row *i* as an :class:`Individual` (genes shared with the arena)."""
        genes = self.view(i)
        if self.evaluated[i]:
            return Individual(
                genes=genes, decoded=self.plans[i], fitness=self.fitness_result(i)
            )
        prefix, dirty = self.prefix_hint(i)
        if prefix is not None:
            return Individual(genes=genes, dirty_from=dirty, prefix_plan=prefix)
        return Individual(genes=genes)

    def to_individuals(self) -> List[Individual]:
        """The whole population as a list (checkpoints, migration, tests)."""
        return [self.materialize(i) for i in range(self.n)]

    def best_index(self) -> int:
        """First row attaining the lexicographic ``(goal, total)`` maximum.

        Matches ``max(population, key=Individual.sort_key)`` exactly:
        Python's ``max`` keeps the first of equal maxima.
        """
        if not self.evaluated.all():
            raise ValueError("population has not been evaluated")
        best_goal = self.goal.max()
        mask = self.goal == best_goal
        best_total = self.total[mask].max()
        return int(np.flatnonzero(mask & (self.total == best_total))[0])

    # -- subset/concat (island migration) ------------------------------------

    def take(self, rows: np.ndarray) -> "PopulationBuffer":
        """A new buffer holding copies of the selected rows, in order."""
        rows = np.asarray(rows, dtype=np.int64)
        lengths = self.lengths[rows].copy()
        offsets = _offsets_from(lengths)
        arena = np.empty(int(lengths.sum()), dtype=np.float64)
        for j, r in enumerate(rows):
            arena[offsets[j] : offsets[j] + lengths[j]] = self.view(int(r))
        out = PopulationBuffer(arena, offsets, lengths, keep_plans=self.keep_plans)
        out.total[:] = self.total[rows]
        out.goal[:] = self.goal[rows]
        out.cost[:] = self.cost[rows]
        out.goal_reached[:] = self.goal_reached[rows]
        out.evaluated[:] = self.evaluated[rows]
        out.dirty_from[:] = self.dirty_from[rows]
        out.plans = [self.plans[int(r)] for r in rows]
        out.prefix_plans = [self.prefix_plans[int(r)] for r in rows]
        return out

    @staticmethod
    def concatenate(parts: Sequence["PopulationBuffer"]) -> "PopulationBuffer":
        """Stack buffers into one (rows keep their order within and across parts)."""
        if not parts:
            raise ValueError("nothing to concatenate")
        lengths = np.concatenate([p.lengths for p in parts])
        offsets = _offsets_from(lengths)
        arena = np.concatenate([p.genes for p in parts])
        out = PopulationBuffer(
            arena, offsets, lengths, keep_plans=parts[0].keep_plans
        )
        out.total[:] = np.concatenate([p.total for p in parts])
        out.goal[:] = np.concatenate([p.goal for p in parts])
        out.cost[:] = np.concatenate([p.cost for p in parts])
        out.goal_reached[:] = np.concatenate([p.goal_reached for p in parts])
        out.evaluated[:] = np.concatenate([p.evaluated for p in parts])
        out.dirty_from[:] = np.concatenate([p.dirty_from for p in parts])
        out.plans = [plan for p in parts for plan in p.plans]
        out.prefix_plans = [plan for p in parts for plan in p.prefix_plans]
        return out


# -- the batched generation step ----------------------------------------------


class _ChildRec:
    """Recipe for one offspring row: source segments + mutation scatter.

    The breeding loop only records *what* to copy; the arena is allocated
    and filled once at the end, so no intermediate arrays or Individuals
    are built.  ``inherit`` names the parent row whose evaluation the child
    keeps (an unmutated clone), ``-1`` otherwise.
    """

    __slots__ = (
        "src1",
        "start1",
        "take1",
        "src2",
        "start2",
        "take2",
        "length",
        "inherit",
        "prefix",
        "dirty",
        "mut_idx",
        "mut_vals",
    )

    def __init__(self) -> None:
        self.src2 = -1
        self.start2 = 0
        self.take2 = 0
        self.inherit = -1
        self.prefix = None
        self.dirty = -1
        self.mut_idx = None
        self.mut_vals = None


def _clone(buffer: PopulationBuffer, src: int) -> _ChildRec:
    rec = _ChildRec()
    rec.src1 = src
    rec.start1 = 0
    rec.take1 = rec.length = int(buffer.lengths[src])
    rec.inherit = src
    rec.prefix = buffer.plans[src]
    return rec


def _splice(
    buffer: PopulationBuffer,
    a: int,
    b: int,
    cut1: int,
    cut2: int,
    max_len: Optional[int],
) -> _ChildRec:
    """The child ``a[:cut1] + b[cut2:]``, with the object path's edge rules.

    Mirrors :func:`repro.core.crossover._one_point_children` for one child:
    clip to ``max_len``, fall back to a copy of parent *a* when the splice
    is empty, and carry parent *a*'s decoded plan as the prefix hint with
    ``dirty_from = min(cut1, length)``.
    """
    length2 = int(buffer.lengths[b])
    raw = cut1 + (length2 - cut2)
    length = raw if max_len is None else min(raw, max_len)
    if length == 0:
        return _clone(buffer, a)
    rec = _ChildRec()
    rec.src1 = a
    rec.start1 = 0
    rec.take1 = min(cut1, length)
    rec.src2 = b
    rec.start2 = cut2
    rec.take2 = length - rec.take1
    rec.length = length
    prefix = buffer.plans[a]
    if prefix is not None and cut1 > 0:
        rec.prefix = prefix
        rec.dirty = min(cut1, length)
    return rec


def _mutate_record(rec: _ChildRec, rate: float, rng: np.random.Generator) -> None:
    """Replay one child's uniform-reset mutation draws onto its recipe.

    Identical draws to :func:`repro.core.mutation.uniform_reset_mutation`
    (via the shared sampler) and identical lineage rules to its
    ``_mutated_child``: an evaluated clone's decoded plan becomes the
    prefix; an offspring's pending hint is tightened to the first changed
    gene; a change at gene 0 (or a missing prefix) drops the hint.
    """
    if rate == 0.0:
        return
    drawn = sample_uniform_reset(rec.length, rate, rng)
    if drawn is None:
        return
    rec.mut_idx, rec.mut_vals = drawn
    first = int(rec.mut_idx[0])
    if rec.inherit >= 0:
        prefix, dirty = rec.prefix, first
        rec.inherit = -1
    elif rec.prefix is not None and rec.dirty >= 0:
        prefix, dirty = rec.prefix, min(rec.dirty, first)
    else:
        prefix, dirty = None, 0
    if prefix is None or dirty <= 0:
        rec.prefix, rec.dirty = None, -1
    else:
        rec.prefix, rec.dirty = prefix, min(dirty, rec.length)


def select_parent_indices(
    buffer: PopulationBuffer, config, rng: np.random.Generator
) -> np.ndarray:
    """Tournament-select ``population_size`` parent rows (batched draw)."""
    if buffer.n == 0:
        raise ValueError("population is empty")
    if not buffer.evaluated.all():
        raise ValueError("selection requires an evaluated population")
    return tournament_winner_indices(
        buffer.total, config.population_size, rng, config.tournament_size
    )


def breed(
    buffer: PopulationBuffer,
    parent_idx: np.ndarray,
    config,
    rng: np.random.Generator,
) -> PopulationBuffer:
    """One generation of variation on the arrays, replaying the object path.

    The loop structure (elites first; parents paired ``(i, i+1)`` with
    wraparound; the second child of the final pair dropped *after* its
    sibling's mutation when the population fills on an odd count) and every
    RNG draw match :meth:`repro.core.ga.GARun._next_generation` exactly.
    """
    rate = config.mutation_rate
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    n_out = config.population_size
    kind = config.crossover
    max_len = config.max_len
    records: List[_ChildRec] = []
    if config.elitism:
        # Stable descending order matches sorted(..., reverse=True): ties
        # keep their population order.
        order = np.argsort(-buffer.total, kind="stable")
        for e in order[: config.elitism]:
            records.append(_clone(buffer, int(e)))
    lengths = buffer.lengths
    plans = buffer.plans
    n_par = int(parent_idx.shape[0])
    i = 0
    while len(records) < n_out:
        a = int(parent_idx[i % n_par])
        b = int(parent_idx[(i + 1) % n_par])
        i += 2
        if rng.random() < config.crossover_rate:
            cuts = sample_crossover_cuts(
                kind,
                int(lengths[a]),
                int(lengths[b]),
                None if kind == "random" else plans[a],
                None if kind == "random" else plans[b],
                rng,
            )
            if cuts is None:
                pair = (_clone(buffer, a), _clone(buffer, b))
            else:
                cut1, cut2 = cuts
                pair = (
                    _splice(buffer, a, b, cut1, cut2, max_len),
                    _splice(buffer, b, a, cut2, cut1, max_len),
                )
        else:
            pair = (_clone(buffer, a), _clone(buffer, b))
        for rec in pair:
            _mutate_record(rec, rate, rng)
            records.append(rec)
            if len(records) >= n_out:
                break
    return _materialize_generation(buffer, records)


def _materialize_generation(
    buffer: PopulationBuffer, records: List[_ChildRec]
) -> PopulationBuffer:
    """Build the offspring buffer: slice copies + one mutation scatter."""
    n = len(records)
    lengths = np.fromiter((r.length for r in records), np.int64, n)
    offsets = _offsets_from(lengths)
    arena = np.empty(int(lengths.sum()), dtype=np.float64)
    src_genes = buffer.genes
    src_off = buffer.offsets
    mut_idx: List[np.ndarray] = []
    mut_vals: List[np.ndarray] = []
    for j, rec in enumerate(records):
        o = int(offsets[j])
        s1 = int(src_off[rec.src1]) + rec.start1
        arena[o : o + rec.take1] = src_genes[s1 : s1 + rec.take1]
        if rec.take2 > 0:
            s2 = int(src_off[rec.src2]) + rec.start2
            arena[o + rec.take1 : o + rec.length] = src_genes[s2 : s2 + rec.take2]
        if rec.mut_idx is not None:
            mut_idx.append(rec.mut_idx + o)
            mut_vals.append(rec.mut_vals)
    if mut_idx:
        arena[np.concatenate(mut_idx)] = np.concatenate(mut_vals)
    out = PopulationBuffer(arena, offsets, lengths, keep_plans=buffer.keep_plans)
    for j, rec in enumerate(records):
        if rec.inherit >= 0:
            src = rec.inherit
            out.total[j] = buffer.total[src]
            out.goal[j] = buffer.goal[src]
            out.cost[j] = buffer.cost[src]
            out.goal_reached[j] = buffer.goal_reached[src]
            out.evaluated[j] = True
            out.plans[j] = buffer.plans[src]
        elif rec.prefix is not None and rec.dirty >= 0:
            out.prefix_plans[j] = rec.prefix
            out.dirty_from[j] = rec.dirty
    return out
