"""The multi-phase GA (paper, Section 3.5).

The search is divided into up to ``max_phases`` independent GA runs of a
fixed number of generations each.  Phase 1 starts from the problem's initial
state; each later phase starts from the final state of the previous phase's
best solution, with a freshly randomised population.  The search ends when a
valid solution is found at the end of a phase (or the phase budget runs
out), and the final solution is the concatenation of the per-phase best
plans.

The per-run solution length is therefore bounded by ``max_phases · MaxLen``
— the paper notes this is why multi-phase solutions come out longer than
single-phase ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core import rng as rng_mod
from repro.core.config import GAConfig, MultiPhaseConfig
from repro.core.fitness import FitnessResult
from repro.core.ga import GAResult, GARun
from repro.core.individual import Individual
from repro.core.parallel import Evaluator, SerialEvaluator
from repro.obs.events import PhaseEnd, PhaseStart
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.protocol import PlanningDomain

__all__ = ["PhaseRecord", "MultiPhaseResult", "run_multiphase"]


@dataclass(frozen=True)
class PhaseRecord:
    """What one phase contributed."""

    index: int
    result: GAResult
    start_state: object
    final_state: object
    plan: tuple
    goal_fitness: float
    solved: bool


@dataclass
class MultiPhaseResult:
    """Outcome of a multi-phase run.

    ``plan`` is the concatenation of per-phase best plans; ``goal_fitness``
    and ``solved`` describe the state that concatenated plan ends in.
    """

    phases: List[PhaseRecord]
    plan: tuple
    final_state: object
    goal_fitness: float
    solved: bool
    solved_in_phase: Optional[int]
    total_generations: int
    elapsed_seconds: float

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def plan_length(self) -> int:
        return len(self.plan)


def run_multiphase(
    domain: PlanningDomain,
    config: MultiPhaseConfig,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    evaluator_factory: Optional[Callable[[], Evaluator]] = None,
    on_phase: Optional[Callable[[PhaseRecord], None]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> MultiPhaseResult:
    """Run the multi-phase GA on *domain*.

    Parameters
    ----------
    evaluator_factory:
        Called once per phase to build an evaluator (process pools are bound
        to a start state, so they cannot be reused across phases).  ``None``
        means serial evaluation through one shared :class:`~repro.core.
        parallel.SerialEvaluator`, whose decode engine keeps its transition
        tables warm across phase boundaries (phases share a domain, so
        state transitions memoised in phase *n* pay off in phase *n+1*).
    tracer / metrics:
        Observability: phase-start/end events bracket each phase's
        generation stream (phase events and the phase's generation events
        share the ``phase-N`` scope).  Defaults to the ambient pair.
    """
    t0 = time.perf_counter()
    tracer = tracer if tracer is not None else default_tracer()
    metrics = metrics if metrics is not None else default_metrics()
    state = start_state if start_state is not None else domain.initial_state
    phase_cfg = config.phase
    if config.early_stop_in_phase and not phase_cfg.stop_on_goal:
        phase_cfg = phase_cfg.replace(stop_on_goal=True)
    elif not config.early_stop_in_phase and phase_cfg.stop_on_goal:
        phase_cfg = phase_cfg.replace(stop_on_goal=False)

    phase_rngs = rng_mod.spawn_many(rng, config.max_phases)
    phases: List[PhaseRecord] = []
    plan: tuple = ()
    solved_in_phase: Optional[int] = None
    total_generations = 0

    # With no factory, one serial evaluator spans every phase: its decode
    # engine's transition tables are keyed on state identity, so they stay
    # valid (and warm) across phase boundaries; only the per-start-state
    # fitness memo is invalidated when the phase's start state changes.
    shared = SerialEvaluator() if evaluator_factory is None else None
    try:
        for phase_index in range(1, config.max_phases + 1):
            scope = f"phase-{phase_index}"
            if tracer.enabled:
                tracer.emit(PhaseStart(scope=scope, phase=phase_index))
            evaluator = evaluator_factory() if evaluator_factory is not None else shared
            run = GARun(
                domain,
                phase_cfg,
                phase_rngs[phase_index - 1],
                start_state=state,
                evaluator=evaluator,
                tracer=tracer,
                metrics=metrics,
                scope=scope,
            )
            try:
                result = run.run()
            finally:
                if evaluator_factory is not None and evaluator is not None:
                    evaluator.close()
            total_generations += result.generations_run
            best = result.best
            assert best.decoded is not None and best.fitness is not None
            record = PhaseRecord(
                index=phase_index,
                result=result,
                start_state=state,
                final_state=best.decoded.final_state,
                plan=best.decoded.operations,
                goal_fitness=best.fitness.goal,
                solved=best.fitness.goal_reached,
            )
            phases.append(record)
            if tracer.enabled:
                tracer.emit(
                    PhaseEnd(
                        scope=scope,
                        phase=phase_index,
                        generations=result.generations_run,
                        plan_length=len(record.plan),
                        goal_fitness=record.goal_fitness,
                        solved=record.solved,
                    )
                )
            if on_phase is not None:
                on_phase(record)
            plan = plan + record.plan
            state = record.final_state
            if record.solved:
                solved_in_phase = phase_index
                break
    finally:
        if shared is not None:
            shared.close()

    final_goal = float(domain.goal_fitness(state))
    return MultiPhaseResult(
        phases=phases,
        plan=plan,
        final_state=state,
        goal_fitness=final_goal,
        solved=domain.is_goal(state),
        solved_in_phase=solved_in_phase,
        total_generations=total_generations,
        elapsed_seconds=time.perf_counter() - t0,
    )
