"""Seeded random-number management.

Every stochastic component in :mod:`repro` takes a
:class:`numpy.random.Generator` rather than touching global state.  This
module provides helpers to create root generators and to derive independent
per-run / per-phase streams from them, so that a single integer seed makes an
entire multi-run experiment reproducible.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "spawn_many", "random_floats"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from an integer seed (or OS entropy)."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator from *rng*.

    Uses the SeedSequence spawning protocol, so children never overlap with
    the parent stream or with each other.
    """
    return spawn_many(rng, 1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # pragma: no cover - only for exotic bit generators
        seed_seq = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    return [np.random.default_rng(s) for s in seed_seq.spawn(n)]


def random_floats(rng: np.random.Generator, n: int) -> np.ndarray:
    """Vector of *n* uniform floats in [0, 1), the gene alphabet of the GA."""
    return rng.random(n)


def stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Infinite iterator of freshly spawned child generators."""
    while True:
        yield spawn(rng)
