"""repro — GA-based planning for heterogeneous computing environments.

Reproduction of Yu, Marinescu, Wu & Siegel, "A Genetic Approach to Planning
in Heterogeneous Computing Environments" (IPPS 2003), plus the substrates
the paper depends on: a STRIPS planning layer with classical baseline
planners, the evaluation domains (Towers of Hanoi, Sliding-tile puzzle,
Blocks World, navigation, briefcase), a simulated heterogeneous grid with
workflow/coordination services, and heterogeneous-scheduling baselines.

Quickstart::

    from repro.core import GAConfig, GAPlanner
    from repro.domains import HanoiDomain

    domain = HanoiDomain(5)
    config = GAConfig(max_len=2 ** 6, init_length=31)
    outcome = GAPlanner(domain, config, multiphase=5, seed=42).solve()
    print(outcome.solved, outcome.plan_length)
"""

__version__ = "1.0.0"
