"""Lightweight metrics: counters, wall-clock timers, histograms.

A :class:`MetricsRegistry` is a named bag of instruments shared by every
layer of one run.  Instruments are created on first use, accumulate in
plain Python attributes (no locks — a registry belongs to one process; the
process-pool evaluator aggregates worker-side numbers into the parent's
registry itself), and render to either a ``summary()`` dict or a
human-readable table.

The canonical instrument names every layer agrees on are declared as data
in :data:`CANONICAL_INSTRUMENTS` (and the derived headline metrics in
:data:`DERIVED_METRICS`); the rendered reference lives in
``docs/observability.md``, whose generated tables a docs-tier test keeps
in exact sync with these declarations.  See DESIGN.md §7 for the design
rationale.

Concurrent layers (the portfolio engine's thread-backed islands, the
planning service's per-request registries) give each worker its *own*
registry and fold them into the parent's with
:meth:`MetricsRegistry.merge` at a join point, preserving the no-locks
rule.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "InstrumentSpec",
    "CANONICAL_INSTRUMENTS",
    "DERIVED_METRICS",
    "planner_summary",
    "soak_summary",
    "service_summary",
]


@dataclass(frozen=True)
class InstrumentSpec:
    """One canonical instrument: its name, kind and one-line meaning.

    ``kind`` is ``"counter"``, ``"timer"`` or ``"histogram"``; ``layer``
    names the subsystem that owns the instrument (``core``, ``grid``,
    ``scheduling``, ``exp``, ``soak``, ``service``) so reference tables can
    group related names.
    """

    name: str
    kind: str
    layer: str
    meaning: str


#: Every instrument name the planner stack ticks, as introspectable data.
#: ``docs/observability.md`` renders this tuple; ``tests/docs`` diffs the
#: rendered tables against it and greps the source tree so an instrument
#: cannot be added without being documented here.
CANONICAL_INSTRUMENTS: Tuple[InstrumentSpec, ...] = (
    # -- core GA engine -------------------------------------------------------
    InstrumentSpec("evals", "counter", "core", "individuals evaluated"),
    InstrumentSpec("eval_batch", "timer", "core", "wall time of whole-population evaluation calls"),
    InstrumentSpec("decode", "timer", "core", "genome decoding (serial evaluator, per batch)"),
    InstrumentSpec("fitness", "timer", "core", "fitness scoring (serial evaluator, per batch)"),
    InstrumentSpec("dispatch", "timer", "core", "parent-side wait on process-pool chunk results"),
    InstrumentSpec("worker_eval", "timer", "core", "in-worker chunk evaluation time (summed)"),
    InstrumentSpec("selection", "timer", "core", "parent selection per generation"),
    InstrumentSpec("variation", "timer", "core", "crossover + mutation per generation"),
    InstrumentSpec("decode_cache_hits", "counter", "core", "valid-operation decode-cache hits"),
    InstrumentSpec("decode_cache_misses", "counter", "core", "valid-operation decode-cache misses"),
    InstrumentSpec(
        "decode_cache_evictions", "counter", "core", "entries dropped by decode-cache resets"
    ),
    InstrumentSpec(
        "transition_cache_hits", "counter", "core", "transition-table hits (decode engine)"
    ),
    InstrumentSpec(
        "transition_cache_misses", "counter", "core", "transition-table misses (decode engine)"
    ),
    InstrumentSpec(
        "transition_cache_evictions", "counter", "core", "transition entries dropped by resets"
    ),
    InstrumentSpec(
        "evals_skipped", "counter", "core", "evaluations satisfied by the fitness memo / dedup"
    ),
    InstrumentSpec(
        "genes_reused", "counter", "core", "genes satisfied from retained parent prefixes"
    ),
    InstrumentSpec(
        "decode_fallbacks", "counter", "core", "prefix resumes abandoned for a full decode"
    ),
    InstrumentSpec("memo_evictions", "counter", "core", "fitness-memo entries dropped by resets"),
    InstrumentSpec(
        "batched_generations", "counter", "core", "generations bred on the PopulationBuffer path"
    ),
    InstrumentSpec(
        "shm_bytes_published",
        "counter",
        "core",
        "bytes written into the shared-memory segment per batch",
    ),
    InstrumentSpec(
        "dispatch_bytes_saved",
        "counter",
        "core",
        "gene-payload bytes that skipped pickling via shared-memory dispatch",
    ),
    InstrumentSpec("vector_rows", "counter", "core", "population rows decoded by the vector path"),
    InstrumentSpec("vector_genes", "counter", "core", "genes consumed by the vector decode path"),
    InstrumentSpec(
        "fused_rows_decoded",
        "counter",
        "core",
        "rows walked by the fused per-row decode backend",
    ),
    InstrumentSpec(
        "jit_compile_ms",
        "counter",
        "core",
        "milliseconds spent JIT-compiling the fused decode kernel (outside eval timers)",
    ),
    InstrumentSpec("checkpoints_recovered", "counter", "core", "corrupt checkpoints skipped"),
    InstrumentSpec(
        "retries", "counter", "core", "fault-tolerant retry attempts (broker + evaluator)"
    ),
    InstrumentSpec(
        "degradations", "counter", "core", "resilient evaluators permanently degraded to serial"
    ),
    # -- portfolio engine -----------------------------------------------------
    InstrumentSpec(
        "portfolio_rounds", "counter", "core", "fork-join rounds driven by the portfolio engine"
    ),
    InstrumentSpec(
        "portfolio_migrants", "counter", "core", "individuals moved by portfolio migration edges"
    ),
    InstrumentSpec(
        "portfolio_boost_edges",
        "counter",
        "core",
        "extra leader-to-stagnant edges added by adaptive migration",
    ),
    InstrumentSpec(
        "islands_cancelled", "counter", "core", "islands stopped by first-solution cancellation"
    ),
    InstrumentSpec(
        "incumbent_improvements", "counter", "core", "portfolio-wide best-so-far improvements"
    ),
    InstrumentSpec(
        "island_velocity", "histogram", "core", "per-island per-round best-fitness deltas"
    ),
    # -- grid simulator + coordination ----------------------------------------
    InstrumentSpec("faults_injected", "counter", "grid", "fault-timeline events applied"),
    InstrumentSpec("replans", "counter", "grid", "coordination rounds triggered by grid changes"),
    InstrumentSpec(
        "placement_attempts", "counter", "grid", "broker placement attempts (incl. successes)"
    ),
    InstrumentSpec(
        "placement_backoff_s", "counter", "grid", "total simulated backoff accumulated by retries"
    ),
    InstrumentSpec("sim_tasks_done", "counter", "grid", "simulated activities completed"),
    InstrumentSpec("sim_tasks_failed", "counter", "grid", "simulated activities failed"),
    InstrumentSpec("sim_execute", "timer", "grid", "wall time of simulator execution calls"),
    InstrumentSpec("plan_latency", "timer", "grid", "wall time of coordination planning rounds"),
    # -- ETC scheduling study -------------------------------------------------
    InstrumentSpec("sched_evals", "counter", "scheduling", "GA task-mapper chromosomes evaluated"),
    InstrumentSpec(
        "sched_objective", "timer", "scheduling", "GA task-mapper objective evaluation time"
    ),
    # -- experiment orchestration ---------------------------------------------
    InstrumentSpec("trials_completed", "counter", "exp", "sweep trials recorded ok"),
    InstrumentSpec("trials_failed", "counter", "exp", "sweep trials that exhausted their retries"),
    InstrumentSpec("trials_skipped", "counter", "exp", "sweep trials skipped by resume"),
    InstrumentSpec("trial", "timer", "exp", "wall time per executed sweep trial"),
    # -- soak mode ------------------------------------------------------------
    InstrumentSpec("soak_requests", "counter", "soak", "workflow requests that arrived in a soak"),
    InstrumentSpec("soak_completed", "counter", "soak", "soak requests that delivered their goal"),
    InstrumentSpec(
        "soak_shed", "counter", "soak", "soak requests dropped by the degradation ladder"
    ),
    InstrumentSpec("soak_replans", "counter", "soak", "churn-triggered replanning rounds"),
    InstrumentSpec(
        "soak_repairs", "counter", "soak", "replans resolved by prefix repair (ladder rung 1)"
    ),
    InstrumentSpec(
        "soak_ga_replans", "counter", "soak", "replans resolved by a GA replan (warm or cold)"
    ),
    InstrumentSpec(
        "soak_greedy_fallbacks", "counter", "soak", "replans resolved by the greedy fallback rung"
    ),
    InstrumentSpec(
        "soak_soft_churn", "counter", "soak", "grid events that invalidated no in-flight plan"
    ),
    InstrumentSpec(
        "soak_deadline_met", "counter", "soak", "completed soak requests inside their deadline"
    ),
    InstrumentSpec(
        "replan_latency", "histogram", "soak", "wall-clock seconds per replanning round"
    ),
    InstrumentSpec(
        "request_duration", "histogram", "soak", "simulated seconds from arrival to completion"
    ),
    # -- planning service -----------------------------------------------------
    InstrumentSpec("service_requests", "counter", "service", "planning requests submitted"),
    InstrumentSpec("service_admitted", "counter", "service", "requests accepted into the queue"),
    InstrumentSpec(
        "service_shed", "counter", "service", "requests dropped (queue cap, deadline, cancel)"
    ),
    InstrumentSpec("service_completed", "counter", "service", "requests that returned a result"),
    InstrumentSpec("service_failed", "counter", "service", "requests that raised mid-run"),
    InstrumentSpec(
        "service_slices", "counter", "service", "tick-sized slices executed by the run scheduler"
    ),
    InstrumentSpec(
        "service_warm_hits", "counter", "service", "runs served a pre-warmed decode engine"
    ),
    InstrumentSpec(
        "service_warm_misses", "counter", "service", "runs that had to build a cold decode engine"
    ),
    InstrumentSpec(
        "service_latency", "histogram", "service", "wall seconds from submit to final frame"
    ),
    InstrumentSpec(
        "service_queue_wait", "histogram", "service", "wall seconds from submit to first slice"
    ),
)


#: Derived headline metrics computed by the ``*_summary`` helpers below —
#: names only ever appear in summaries, never as registry instruments.
DERIVED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("evals_per_sec", "individuals scored per second of evaluation wall time"),
    ("decode_cache_hit_rate", "valid-operation decode-cache hit fraction"),
    ("transition_cache_hit_rate", "transition-table hit fraction (decode engine)"),
    ("vector_genes_per_sec", "genes consumed per second by the vector decode path"),
    ("goal_completion_rate", "completed soak requests over completed + shed"),
    ("replan_latency_p50_ms", "median wall-clock replan latency (soak)"),
    ("replan_latency_p99_ms", "99th-percentile wall-clock replan latency (soak)"),
    ("service_shed_rate", "shed service requests over all submitted requests"),
    ("service_latency_p50_ms", "median wall-clock service request latency"),
    ("service_latency_p99_ms", "99th-percentile wall-clock service request latency"),
)


class Counter:
    """A monotonically growing integer/float count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n=1) -> None:
        """Increment the count by *n* (default 1)."""
        self.value += n


class Timer:
    """Accumulated wall-clock time with call count and min/max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float, count: int = 1) -> None:
        """Add one measurement of *seconds* covering *count* calls."""
        self.count += count
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self):
        """Context manager recording the wall-clock time of its block."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - t0)

    @property
    def mean(self) -> float:
        """Mean seconds per recorded call (0.0 before any record)."""
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Value distribution: count/sum/min/max plus a bounded sample.

    Keeps at most ``sample_size`` values (the earliest ones — enough for
    percentile estimates in tests and summaries without unbounded memory).
    """

    __slots__ = ("name", "count", "total", "min", "max", "sample_size", "_sample")

    def __init__(self, name: str, sample_size: int = 1024) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sample_size = sample_size
        self._sample: List[float] = []

    def observe(self, value: float) -> None:
        """Record one *value* into the distribution."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.sample_size:
            self._sample.append(value)

    @property
    def mean(self) -> float:
        """Mean of all observed values (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the sample."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]


class MetricsRegistry:
    """Named counters/timers/histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def timer(self, name: str) -> Timer:
        """The timer called *name*, created on first use."""
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer(name)
        return t

    def histogram(self, name: str, sample_size: int = 1024) -> Histogram:
        """The histogram called *name*, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, sample_size)
        return h

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry, name by name.

        Counters add, timers combine their accumulations, histograms
        concatenate (the bounded sample keeps the earliest values).  This
        is how per-island registries from concurrent portfolio workers
        reach the run-level registry without sharing mutable state across
        threads; merging in a fixed island order keeps the result
        deterministic.
        """
        for name, counter in other.counters.items():
            self.counter(name).add(counter.value)
        for name, timer in other.timers.items():
            mine = self.timer(name)
            mine.count += timer.count
            mine.total += timer.total
            if timer.min < mine.min:
                mine.min = timer.min
            if timer.max > mine.max:
                mine.max = timer.max
        for name, hist in other.histograms.items():
            mine = self.histogram(name, sample_size=hist.sample_size)
            mine.count += hist.count
            mine.total += hist.total
            if hist.min < mine.min:
                mine.min = hist.min
            if hist.max > mine.max:
                mine.max = hist.max
            room = mine.sample_size - len(mine._sample)
            if room > 0:
                mine._sample.extend(hist._sample[:room])

    def summary(self) -> dict:
        """All instruments as one JSON-friendly dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "timers": {
                n: {"count": t.count, "total_s": t.total, "mean_s": t.mean}
                for n, t in sorted(self.timers.items())
            },
            "histograms": {
                n: {"count": h.count, "mean": h.mean, "min": h.min, "max": h.max}
                for n, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable metrics table."""
        lines = ["metrics:"]
        if self.counters:
            lines.append("  counters:")
            for name, c in sorted(self.counters.items()):
                lines.append(f"    {name:<24} {c.value}")
        if self.timers:
            lines.append("  timers:")
            for name, t in sorted(self.timers.items()):
                lines.append(
                    f"    {name:<24} total {t.total:9.4f}s  n {t.count:<8} mean {t.mean * 1e3:9.4f}ms"
                )
        if self.histograms:
            lines.append("  histograms:")
            for name, h in sorted(self.histograms.items()):
                lines.append(
                    f"    {name:<24} n {h.count:<8} mean {h.mean:9.4f}  "
                    f"min {h.min:9.4f}  max {h.max:9.4f}"
                )
        derived = {**planner_summary(self), **soak_summary(self), **service_summary(self)}
        if derived:
            lines.append("  derived:")
            for name, value in derived.items():
                lines.append(f"    {name:<24} {value}")
        return "\n".join(lines)


def planner_summary(metrics: Optional[MetricsRegistry]) -> dict:
    """Headline planner numbers derived from the canonical instruments.

    Returns ``evals_per_sec`` (individuals scored per second of evaluation
    wall time) plus ``decode_cache_hit_rate`` / ``transition_cache_hit_rate``
    when the underlying instruments recorded anything, and
    ``vector_genes_per_sec`` when the vectorised decode path ran; an empty
    dict otherwise.
    """
    if metrics is None:
        return {}
    out: dict = {}
    evals = metrics.counters.get("evals")
    batch = metrics.timers.get("eval_batch")
    if evals is not None and batch is not None and batch.total > 0:
        out["evals_per_sec"] = round(evals.value / batch.total, 1)
    for rate_name, hit_name, miss_name in (
        ("decode_cache_hit_rate", "decode_cache_hits", "decode_cache_misses"),
        ("transition_cache_hit_rate", "transition_cache_hits", "transition_cache_misses"),
    ):
        hits = metrics.counters.get(hit_name)
        misses = metrics.counters.get(miss_name)
        if hits is not None or misses is not None:
            h = hits.value if hits else 0
            m = misses.value if misses else 0
            if h + m:
                out[rate_name] = round(h / (h + m), 4)
    vgenes = metrics.counters.get("vector_genes")
    decode = metrics.timers.get("decode")
    if vgenes is not None and vgenes.value and decode is not None and decode.total > 0:
        out["vector_genes_per_sec"] = round(vgenes.value / decode.total, 1)
    return out


def soak_summary(metrics: Optional[MetricsRegistry]) -> dict:
    """Headline soak-mode numbers derived from the canonical instruments.

    Returns ``goal_completion_rate`` (completed requests over resolved
    requests, i.e. completed + shed) when the soak counters recorded
    anything, plus ``replan_latency_p50_ms`` / ``replan_latency_p99_ms``
    when churn triggered replans; an empty dict otherwise.
    """
    if metrics is None:
        return {}
    out: dict = {}
    completed = metrics.counters.get("soak_completed")
    shed = metrics.counters.get("soak_shed")
    done = completed.value if completed else 0
    lost = shed.value if shed else 0
    if done + lost:
        out["goal_completion_rate"] = round(done / (done + lost), 4)
    latency = metrics.histograms.get("replan_latency")
    if latency is not None and latency.count:
        out["replan_latency_p50_ms"] = round(latency.percentile(50) * 1e3, 3)
        out["replan_latency_p99_ms"] = round(latency.percentile(99) * 1e3, 3)
    return out


def service_summary(metrics: Optional[MetricsRegistry]) -> dict:
    """Headline planning-service numbers derived from the canonical instruments.

    Returns ``service_shed_rate`` (shed requests over all submitted requests)
    when the service counters recorded anything, plus
    ``service_latency_p50_ms`` / ``service_latency_p99_ms`` when any request
    completed; an empty dict otherwise.
    """
    if metrics is None:
        return {}
    out: dict = {}
    requests = metrics.counters.get("service_requests")
    shed = metrics.counters.get("service_shed")
    total = requests.value if requests else 0
    if total:
        out["service_shed_rate"] = round((shed.value if shed else 0) / total, 4)
    latency = metrics.histograms.get("service_latency")
    if latency is not None and latency.count:
        out["service_latency_p50_ms"] = round(latency.percentile(50) * 1e3, 3)
        out["service_latency_p99_ms"] = round(latency.percentile(99) * 1e3, 3)
    return out
