"""repro.obs — the observability layer: structured events + metrics.

The paper notes that "the fitness evaluation time has a significant impact
on the overall execution time of a GA"; this package is the instrument that
makes such statements measurable in this codebase.  Two orthogonal pieces:

- **Event stream** — every run layer (single-phase GA, multi-phase driver,
  island model, evaluators, checkpointing, grid simulator, GA scheduler)
  emits typed :class:`RunEvent` objects through a :class:`Tracer` with
  pluggable sinks: :class:`JsonlSink` (append-only traces),
  :class:`CsvSummarySink` (stable per-generation columns),
  :class:`MemoryRecorder` (tests/benchmarks), :class:`ProgressSink`
  (human-readable feed).

- **Metrics** — a :class:`MetricsRegistry` of counters/timers/histograms
  wrapped around the hot paths (decode, fitness, selection/variation,
  process-pool chunk dispatch) plus :func:`planner_summary` for the
  headline numbers (evals/sec, decode-cache hit rate).

Instrumented constructors take explicit ``tracer=`` / ``metrics=``
arguments and fall back to the ambient pair installed by :func:`observe`
— which is how the CLI's ``--trace/--metrics/--progress`` flags reach every
subcommand without threading parameters through the analysis drivers.
"""

from repro.obs.events import (
    EVENT_KINDS,
    CheckpointRecovered,
    CheckpointWrite,
    DecodeCacheSnapshot,
    EvaluationBatch,
    EvaluatorDegraded,
    FaultInjected,
    GenerationComplete,
    IncumbentImproved,
    IslandMigration,
    IslandVelocity,
    PhaseEnd,
    PhaseStart,
    PortfolioCancelled,
    PortfolioMigration,
    ReplanTriggered,
    RetryAttempt,
    ReplanLatency,
    RequestArrived,
    RequestCompleted,
    RequestShed,
    RunEvent,
    SchedulerGeneration,
    ServiceAdmitted,
    ServiceCompleted,
    ServiceShed,
    ServiceSlice,
    SimulationComplete,
    SweepProgress,
    TrialFinished,
    TrialStarted,
    event_from_dict,
)
from repro.obs.metrics import (
    CANONICAL_INSTRUMENTS,
    DERIVED_METRICS,
    Counter,
    Histogram,
    InstrumentSpec,
    MetricsRegistry,
    Timer,
    planner_summary,
    service_summary,
    soak_summary,
)
from repro.obs.reference import (
    render_derived_table,
    render_event_table,
    render_instrument_table,
)
from repro.obs.runlog import GenerationLogger, read_log
from repro.obs.sinks import (
    CSV_COLUMNS,
    CsvSummarySink,
    JsonlSink,
    MemoryRecorder,
    ProgressSink,
    read_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Sink,
    Tracer,
    default_metrics,
    default_tracer,
    observe,
)

__all__ = [
    "CANONICAL_INSTRUMENTS",
    "CSV_COLUMNS",
    "CheckpointRecovered",
    "CheckpointWrite",
    "Counter",
    "CsvSummarySink",
    "DERIVED_METRICS",
    "DecodeCacheSnapshot",
    "EVENT_KINDS",
    "EvaluationBatch",
    "EvaluatorDegraded",
    "FaultInjected",
    "GenerationComplete",
    "GenerationLogger",
    "Histogram",
    "IncumbentImproved",
    "InstrumentSpec",
    "IslandMigration",
    "IslandVelocity",
    "JsonlSink",
    "MemoryRecorder",
    "MetricsRegistry",
    "NULL_TRACER",
    "PhaseEnd",
    "PhaseStart",
    "PortfolioCancelled",
    "PortfolioMigration",
    "ProgressSink",
    "ReplanLatency",
    "ReplanTriggered",
    "RequestArrived",
    "RequestCompleted",
    "RequestShed",
    "RetryAttempt",
    "RunEvent",
    "SchedulerGeneration",
    "ServiceAdmitted",
    "ServiceCompleted",
    "ServiceShed",
    "ServiceSlice",
    "SimulationComplete",
    "Sink",
    "SweepProgress",
    "Timer",
    "Tracer",
    "TrialFinished",
    "TrialStarted",
    "default_metrics",
    "default_tracer",
    "event_from_dict",
    "observe",
    "planner_summary",
    "read_log",
    "read_trace",
    "render_derived_table",
    "render_event_table",
    "render_instrument_table",
    "service_summary",
    "soak_summary",
]
