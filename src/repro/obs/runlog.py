"""Legacy-format JSONL run logging on top of the tracer stack.

:class:`GenerationLogger` predates :mod:`repro.obs` and keeps the original
on-disk record format working: one JSON object per generation with the
legacy keys (``run``, ``generation``, ``best_total``, …, ``elapsed_s``),
implemented by emitting :class:`~repro.obs.events.GenerationComplete`
events through a private tracer whose JSONL sink rewrites records into the
legacy shape.  New code should attach a :class:`repro.obs.JsonlSink` to a
tracer (or pass ``tracer=`` / use ``--trace``) instead; see DESIGN.md §7
for the migration note.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, TYPE_CHECKING, Optional, Union

from repro.obs.events import GenerationComplete, RunEvent
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.stats import GenerationStats

__all__ = ["GenerationLogger", "read_log"]


class GenerationLogger:
    """Append per-generation stats to a JSONL file (or any text stream).

    Usable directly as the ``on_generation`` callback; always returns
    ``None`` so it never terminates the run.  Use together with termination
    criteria via a small lambda when both are wanted::

        logger = GenerationLogger(path)
        stop = Stagnation(50)
        run.run(on_generation=lambda s: (logger(s), stop(s))[1])
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        run_id: str = "run",
        flush_every: int = 1,
    ) -> None:
        self.run_id = run_id
        self._sink = JsonlSink(target, flush_every=flush_every, record_fn=self._legacy_record)
        self._tracer = Tracer([self._sink])
        self._t0 = time.perf_counter()

    def _legacy_record(self, event: RunEvent) -> dict:
        assert isinstance(event, GenerationComplete)
        return {
            "run": event.scope,
            "generation": event.generation,
            "best_total": event.best_total,
            "mean_total": event.mean_total,
            "best_goal": event.best_goal,
            "mean_goal": event.mean_goal,
            "mean_length": event.mean_length,
            "solved": event.solved_count,
            "elapsed_s": round(time.perf_counter() - self._t0, 4),
        }

    def __call__(self, stats: "GenerationStats") -> None:
        self._tracer.emit(GenerationComplete.from_stats(stats, scope=self.run_id))
        return None

    def close(self) -> None:
        self._tracer.close()

    def __enter__(self) -> "GenerationLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_log(path: Union[str, Path], run_id: Optional[str] = None) -> list:
    """Load a JSONL trace back, optionally filtered to one run id."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if run_id is None or record.get("run") == run_id:
                records.append(record)
    return records
