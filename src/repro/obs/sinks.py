"""Concrete sinks: JSONL traces, CSV summaries, memory recorder, progress.

All file-backed sinks accept either a path (parent directories are created,
file opened in append mode, closed on ``close()``) or an open text stream
(left open — the caller owns it), matching the contract
:class:`repro.obs.runlog.GenerationLogger` established.
"""

from __future__ import annotations

import csv
import json
import sys
from collections import deque
from pathlib import Path
from typing import IO, Callable, Deque, List, Optional, Union

from repro.obs.events import (
    EvaluationBatch,
    GenerationComplete,
    IslandMigration,
    PhaseEnd,
    PhaseStart,
    RunEvent,
    event_from_dict,
)
from repro.obs.tracer import Sink

__all__ = [
    "JsonlSink",
    "CsvSummarySink",
    "MemoryRecorder",
    "ProgressSink",
    "read_trace",
    "CSV_COLUMNS",
]

Target = Union[str, Path, IO[str]]


def _open_target(target: Target):
    """Return ``(stream, owned)`` for a path-or-stream target."""
    if isinstance(target, (str, Path)):
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        return open(path, "a"), True
    return target, False


class JsonlSink(Sink):
    """One JSON object per event, append-only, safe to ``tail -f``.

    *record_fn* maps an event to the dict actually written; the default is
    :meth:`RunEvent.to_dict`, whose output round-trips through
    :func:`~repro.obs.events.event_from_dict`.
    """

    def __init__(
        self,
        target: Target,
        flush_every: int = 1,
        record_fn: Optional[Callable[[RunEvent], dict]] = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.flush_every = flush_every
        self._record_fn = record_fn or (lambda event: event.to_dict())
        self._count = 0
        self._fh, self._owned = _open_target(target)

    def write(self, event: RunEvent) -> None:
        self._fh.write(json.dumps(self._record_fn(event)) + "\n")
        self._count += 1
        if self._count % self.flush_every == 0:
            self._fh.flush()

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._owned:
            self._fh.close()


def read_trace(path: Union[str, Path], kind: Optional[str] = None) -> List[RunEvent]:
    """Parse a JSONL trace back into events, optionally filtered by kind."""
    events: List[RunEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = event_from_dict(json.loads(line))
            if kind is None or event.kind == kind:
                events.append(event)
    return events


#: Stable column order of the CSV summary (one row per generation event).
CSV_COLUMNS = (
    "scope",
    "generation",
    "best_total",
    "mean_total",
    "best_goal",
    "mean_goal",
    "mean_length",
    "solved_count",
)


class CsvSummarySink(Sink):
    """Per-generation CSV summary with a stable column set.

    Only :class:`GenerationComplete` events produce rows; everything else is
    ignored, so the sink can ride on the same tracer as a full JSONL trace.
    """

    def __init__(self, target: Target) -> None:
        self._fh, self._owned = _open_target(target)
        self._writer = csv.writer(self._fh)
        self._writer.writerow(CSV_COLUMNS)

    def write(self, event: RunEvent) -> None:
        if not isinstance(event, GenerationComplete):
            return
        record = event.to_dict()
        self._writer.writerow([record[column] for column in CSV_COLUMNS])

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._owned:
            self._fh.close()


class MemoryRecorder(Sink):
    """Keep events in memory, in emission order — the test/bench sink.

    ``capacity`` bounds memory for long benchmark sessions: beyond it the
    oldest events are dropped (the total count is still tracked).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: Deque[RunEvent] = deque(maxlen=capacity)
        self.total_written = 0

    @property
    def events(self) -> List[RunEvent]:
        return list(self._events)

    def write(self, event: RunEvent) -> None:
        self._events.append(event)
        self.total_written += 1

    def of_kind(self, kind: str) -> List[RunEvent]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()
        self.total_written = 0

    def __len__(self) -> int:
        return len(self._events)


class ProgressSink(Sink):
    """Human-readable one-line-per-event progress reporting.

    Generation lines are throttled to every ``every``-th generation (plus
    any generation with solutions) to keep long runs readable.
    """

    def __init__(self, stream: Optional[IO[str]] = None, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._stream = stream if stream is not None else sys.stderr

    def write(self, event: RunEvent) -> None:
        line = self._format(event)
        if line is not None:
            self._stream.write(line + "\n")

    def _format(self, event: RunEvent) -> Optional[str]:
        prefix = f"[{event.scope}] " if event.scope else ""
        if isinstance(event, GenerationComplete):
            if event.generation % self.every and not event.solved_count:
                return None
            return (
                f"{prefix}gen {event.generation:>4}  "
                f"best {event.best_total:.4f}  mean {event.mean_total:.4f}  "
                f"len {event.mean_length:.1f}  solved {event.solved_count}"
            )
        if isinstance(event, PhaseStart):
            return f"{prefix}— phase {event.phase} —"
        if isinstance(event, PhaseEnd):
            status = "solved" if event.solved else f"goal {event.goal_fitness:.3f}"
            return (
                f"{prefix}phase {event.phase} done: {event.generations} generations, "
                f"+{event.plan_length} ops, {status}"
            )
        if isinstance(event, IslandMigration):
            return (
                f"{prefix}migration {event.migration} at gen {event.generation} "
                f"({event.migrants_per_island} × {event.n_islands} islands)"
            )
        if isinstance(event, EvaluationBatch):
            return None  # too chatty for a progress feed
        return None

    def flush(self) -> None:
        self._stream.flush()
