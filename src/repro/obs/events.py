"""Structured run events: the vocabulary of the observability layer.

Every significant thing that happens during a planning run — a generation
finishing, a phase starting, islands migrating, an evaluation batch being
dispatched, a decode cache being interrogated, a checkpoint hitting disk —
is one immutable :class:`RunEvent`.  Events are plain frozen dataclasses
with JSON-friendly payloads, so every sink (JSONL, CSV, memory, progress)
consumes the same objects and traces parse back losslessly via
:func:`event_from_dict`.

Events carry a ``scope`` string identifying which sub-run emitted them
(``"phase-2"``, ``"island-0"``, ``"scheduler"``, …); a plain single-phase
run uses the empty scope.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, ClassVar, Dict, Type

if TYPE_CHECKING:  # import at runtime would cycle: repro.core imports repro.obs
    from repro.core.stats import GenerationStats

__all__ = [
    "RunEvent",
    "GenerationComplete",
    "PhaseStart",
    "PhaseEnd",
    "IslandMigration",
    "IslandVelocity",
    "PortfolioMigration",
    "PortfolioCancelled",
    "IncumbentImproved",
    "EvaluationBatch",
    "DecodeCacheSnapshot",
    "CheckpointWrite",
    "CheckpointRecovered",
    "SchedulerGeneration",
    "SimulationComplete",
    "FaultInjected",
    "RetryAttempt",
    "EvaluatorDegraded",
    "ReplanTriggered",
    "RequestArrived",
    "RequestCompleted",
    "RequestShed",
    "ReplanLatency",
    "ServiceAdmitted",
    "ServiceShed",
    "ServiceSlice",
    "ServiceCompleted",
    "TrialStarted",
    "TrialFinished",
    "SweepProgress",
    "EVENT_KINDS",
    "event_from_dict",
]


@dataclass(frozen=True, kw_only=True)
class RunEvent:
    """Base class for all observability events.

    ``kind`` is the stable wire name of the event type (a class attribute,
    not a payload field); ``scope`` names the emitting sub-run.
    """

    kind: ClassVar[str] = "event"
    scope: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable payload, ``kind`` included."""
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True, kw_only=True)
class GenerationComplete(RunEvent):
    """One generation was evaluated (emitted before breeding the next)."""

    kind: ClassVar[str] = "generation"
    generation: int
    best_total: float
    mean_total: float
    best_goal: float
    mean_goal: float
    mean_length: float
    solved_count: int

    @classmethod
    def from_stats(cls, stats: "GenerationStats", scope: str = "") -> "GenerationComplete":
        return cls(
            scope=scope,
            generation=stats.generation,
            best_total=stats.best_total,
            mean_total=stats.mean_total,
            best_goal=stats.best_goal,
            mean_goal=stats.mean_goal,
            mean_length=stats.mean_length,
            solved_count=stats.solved_count,
        )


@dataclass(frozen=True, kw_only=True)
class PhaseStart(RunEvent):
    """A multi-phase driver is starting phase ``phase`` (1-based)."""

    kind: ClassVar[str] = "phase-start"
    phase: int


@dataclass(frozen=True, kw_only=True)
class PhaseEnd(RunEvent):
    """A phase finished; payload summarises its contribution."""

    kind: ClassVar[str] = "phase-end"
    phase: int
    generations: int
    plan_length: int
    goal_fitness: float
    solved: bool


@dataclass(frozen=True, kw_only=True)
class IslandMigration(RunEvent):
    """One ring migration happened across all islands."""

    kind: ClassVar[str] = "island-migration"
    generation: int
    migration: int
    n_islands: int
    migrants_per_island: int


@dataclass(frozen=True, kw_only=True)
class IslandVelocity(RunEvent):
    """One portfolio island's improvement velocity over the last round.

    ``velocity`` is the change in the island's best total fitness across
    the round; ``stagnation`` counts consecutive rounds with no measurable
    improvement (the adaptive-migration controller's steering signal).
    """

    kind: ClassVar[str] = "island-velocity"
    round_index: int
    island: int
    strategy: str
    velocity: float
    best_total: float
    stagnation: int


@dataclass(frozen=True, kw_only=True)
class PortfolioMigration(RunEvent):
    """One directed migration edge executed by the portfolio controller.

    ``reason`` is ``"ring"`` for the baseline ring edge or ``"boost"`` for
    an extra leader→stagnant-island edge added by the adaptive controller.
    """

    kind: ClassVar[str] = "portfolio-migration"
    round_index: int
    source: int
    dest: int
    migrants: int
    reason: str


@dataclass(frozen=True, kw_only=True)
class PortfolioCancelled(RunEvent):
    """First-solution cancellation fired: the race has a winner.

    ``tick`` is the winner's logical tick at its first solution;
    ``cancelled`` counts the islands stopped before exhausting their own
    budgets (after any grace window).
    """

    kind: ClassVar[str] = "portfolio-cancelled"
    winner: int
    strategy: str
    tick: int
    cancelled: int


@dataclass(frozen=True, kw_only=True)
class IncumbentImproved(RunEvent):
    """The portfolio-wide best-so-far plan improved (anytime API).

    Deliberately excludes wall-clock time so serial replay produces a
    byte-identical event log; wall times live on the
    :class:`~repro.core.portfolio.Incumbent` records in the result.
    """

    kind: ClassVar[str] = "incumbent"
    island: int
    strategy: str
    tick: int
    goal_fitness: float
    cost_fitness: float
    plan_length: int
    solved: bool


@dataclass(frozen=True, kw_only=True)
class EvaluationBatch(RunEvent):
    """An evaluator scored a batch of pending individuals."""

    kind: ClassVar[str] = "evaluation-batch"
    n_evaluated: int
    seconds: float
    mode: str  # "serial" | "process"
    chunks: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    evals_skipped: int = 0  # fitness-memo / batch-dedup hits (no decode ran)
    genes_reused: int = 0  # genes satisfied from a retained parent prefix


@dataclass(frozen=True, kw_only=True)
class DecodeCacheSnapshot(RunEvent):
    """Cumulative decode-cache statistics at a point in time."""

    kind: ClassVar[str] = "decode-cache"
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True, kw_only=True)
class CheckpointWrite(RunEvent):
    """A run checkpoint was persisted to disk."""

    kind: ClassVar[str] = "checkpoint"
    path: str
    generation: int


@dataclass(frozen=True, kw_only=True)
class CheckpointRecovered(RunEvent):
    """A corrupted latest checkpoint was skipped for an older good one.

    ``path`` is the checkpoint actually loaded; ``skipped`` counts the newer
    files that failed validation (truncated, bad checksum, wrong version).
    """

    kind: ClassVar[str] = "checkpoint-recovered"
    path: str
    generation: int
    skipped: int


@dataclass(frozen=True, kw_only=True)
class FaultInjected(RunEvent):
    """A fault from the injected timeline was applied to the grid.

    ``fault`` is the grid-event kind (``fail``, ``restore``, ``load``,
    ``link-degrade``, ``partition``, ``link-restore``); ``target`` names the
    machine, or ``"siteA--siteB"`` for link faults; ``at`` is simulated time.
    """

    kind: ClassVar[str] = "fault-injected"
    at: float
    fault: str
    target: str
    value: float = 0.0


@dataclass(frozen=True, kw_only=True)
class RetryAttempt(RunEvent):
    """A fault-tolerant component retried after a failure.

    ``component`` is ``"broker"`` (placement moved to the next-best offer)
    or ``"evaluator"`` (worker-pool batch retried after crash/timeout).
    """

    kind: ClassVar[str] = "retry"
    component: str
    attempt: int
    backoff_s: float
    reason: str


@dataclass(frozen=True, kw_only=True)
class EvaluatorDegraded(RunEvent):
    """A resilient evaluator gave up on its pool and fell back to serial."""

    kind: ClassVar[str] = "evaluator-degraded"
    failures: int
    reason: str


@dataclass(frozen=True, kw_only=True)
class ReplanTriggered(RunEvent):
    """Execution aborted on a grid change; the coordinator is replanning.

    ``at`` is the simulated abort time on the coordinator's global clock and
    ``completed`` the number of activities that survived from the attempt —
    the observed state the next planning round restarts from.
    """

    kind: ClassVar[str] = "replan"
    round_index: int
    at: float
    completed: int
    reason: str


@dataclass(frozen=True, kw_only=True)
class RequestArrived(RunEvent):
    """A workflow request entered the soak loop and was planned (or not).

    ``at`` is simulated arrival time; ``plan_length`` is 0 when no initial
    plan was found (the request is shed immediately); ``estimate`` is the
    estimated completion time (simulated clock) of the admitted plan.
    """

    kind: ClassVar[str] = "request-arrived"
    request_id: int
    at: float
    plan_length: int
    estimate: float


@dataclass(frozen=True, kw_only=True)
class RequestCompleted(RunEvent):
    """A soak request delivered its goal.

    ``duration`` is simulated time from arrival to completion; ``replans``
    counts the churn-triggered replanning rounds the request survived.
    """

    kind: ClassVar[str] = "request-completed"
    request_id: int
    at: float
    duration: float
    replans: int
    deadline_met: bool


@dataclass(frozen=True, kw_only=True)
class RequestShed(RunEvent):
    """The degradation ladder gave up on a soak request.

    ``reason`` is one of ``unplannable`` (no initial plan), ``no-plan``
    (every ladder rung failed after churn), ``deadline`` (best replan
    estimate missed the request's deadline), ``replan-budget`` (too many
    churn-triggered replans) or ``execution-failed``.
    """

    kind: ClassVar[str] = "request-shed"
    request_id: int
    at: float
    reason: str
    replans: int


@dataclass(frozen=True, kw_only=True)
class ReplanLatency(RunEvent):
    """One churn-triggered replanning round finished for a soak request.

    ``rung`` names the degradation-ladder step that produced the plan
    (``repair``, ``ga-warm``, ``ga-cold``, ``greedy``) or ``none`` when
    every rung failed; ``reused``/``repaired`` count operations kept from
    the damaged plan vs newly planned; ``seconds`` is *wall-clock* replan
    latency (the one field excluded from determinism comparisons).
    """

    kind: ClassVar[str] = "replan-latency"
    request_id: int
    at: float
    rung: str
    reused: int
    repaired: int
    plan_length: int
    seconds: float


@dataclass(frozen=True, kw_only=True)
class ServiceAdmitted(RunEvent):
    """The planning service accepted a request into its run queue.

    ``queue_depth`` is the number of queued-or-running requests *after*
    admission (the admission-control signal the next arrival is judged
    against); ``tenant`` is the fair-share accounting key.
    """

    kind: ClassVar[str] = "service-admitted"
    request_id: int
    tenant: str
    domain_hash: str
    queue_depth: int


@dataclass(frozen=True, kw_only=True)
class ServiceShed(RunEvent):
    """Admission control or deadline policy dropped a service request.

    ``reason`` is one of ``queue-full`` (the 429 analogue: queue cap hit at
    submit time), ``deadline-queued`` (the deadline expired before the
    first slice ran), ``cancelled`` (the client disconnected before
    completion) or ``failed`` (the run raised; details in the error frame).
    """

    kind: ClassVar[str] = "service-shed"
    request_id: int
    tenant: str
    reason: str
    queue_depth: int


@dataclass(frozen=True, kw_only=True)
class ServiceSlice(RunEvent):
    """The run scheduler executed one tick-sized slice of a request.

    ``generations`` counts generations evolved in this slice (portfolio
    requests run as a single slice and report their total tick count);
    ``done`` marks the slice that finished the request.
    """

    kind: ClassVar[str] = "service-slice"
    request_id: int
    tenant: str
    slice_index: int
    generations: int
    done: bool


@dataclass(frozen=True, kw_only=True)
class ServiceCompleted(RunEvent):
    """A service request produced its final result frame.

    ``timed_out`` marks anytime completions: the deadline expired while the
    request was running, so the best-so-far plan was returned instead of
    planning to the full budget.  ``seconds`` is wall-clock time from
    arrival to completion (excluded from determinism comparisons, like
    every wall-clock payload).
    """

    kind: ClassVar[str] = "service-completed"
    request_id: int
    tenant: str
    solved: bool
    timed_out: bool
    generations: int
    plan_length: int
    slices: int
    seconds: float


@dataclass(frozen=True, kw_only=True)
class SchedulerGeneration(RunEvent):
    """One generation of the GA task mapper (makespan objective)."""

    kind: ClassVar[str] = "scheduler-generation"
    generation: int
    best_makespan: float
    mean_objective: float


@dataclass(frozen=True, kw_only=True)
class SimulationComplete(RunEvent):
    """A grid simulation finished executing an activity graph."""

    kind: ClassVar[str] = "sim-complete"
    makespan: float
    tasks_done: int
    tasks_failed: int
    success: bool
    seconds: float


@dataclass(frozen=True, kw_only=True)
class TrialStarted(RunEvent):
    """A sweep runner dispatched one experiment trial."""

    kind: ClassVar[str] = "trial-started"
    experiment: str
    trial_id: str
    seed: int


@dataclass(frozen=True, kw_only=True)
class TrialFinished(RunEvent):
    """One experiment trial completed (``status`` is ``ok`` or ``failed``).

    ``attempt`` is the 1-based attempt that produced the result (> 1 when
    the runner's retry ladder re-dispatched the trial).
    """

    kind: ClassVar[str] = "trial-finished"
    experiment: str
    trial_id: str
    seed: int
    status: str
    seconds: float
    attempt: int = 1


@dataclass(frozen=True, kw_only=True)
class SweepProgress(RunEvent):
    """Sweep-level progress: counts over the full trial enumeration."""

    kind: ClassVar[str] = "sweep-progress"
    experiment: str
    done: int
    failed: int
    total: int


EVENT_KINDS: Dict[str, Type[RunEvent]] = {
    cls.kind: cls
    for cls in (
        GenerationComplete,
        PhaseStart,
        PhaseEnd,
        IslandMigration,
        IslandVelocity,
        PortfolioMigration,
        PortfolioCancelled,
        IncumbentImproved,
        EvaluationBatch,
        DecodeCacheSnapshot,
        CheckpointWrite,
        CheckpointRecovered,
        SchedulerGeneration,
        SimulationComplete,
        FaultInjected,
        RetryAttempt,
        EvaluatorDegraded,
        ReplanTriggered,
        RequestArrived,
        RequestCompleted,
        RequestShed,
        ReplanLatency,
        ServiceAdmitted,
        ServiceShed,
        ServiceSlice,
        ServiceCompleted,
        TrialStarted,
        TrialFinished,
        SweepProgress,
    )
}


def event_from_dict(record: dict) -> RunEvent:
    """Inverse of :meth:`RunEvent.to_dict`.

    Unknown payload keys are ignored (forward compatibility: newer traces
    stay readable by older code); an unknown ``kind`` raises ``ValueError``.
    """
    kind = record.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    known = {f.name for f in fields(cls)}
    payload = {k: v for k, v in record.items() if k in known}
    return cls(**payload)
