"""Markdown reference-table renderers for the observability surface.

``docs/observability.md`` carries three generated tables — event types,
canonical instruments, derived metrics — between ``<!-- BEGIN GENERATED:
name -->`` / ``<!-- END GENERATED: name -->`` marker pairs.  The renderers
here are the single source of those tables: a docs-tier test diffs the
committed markdown against the rendered output, so adding an event class
or instrument without regenerating the page fails CI.

Regenerate in place with::

    PYTHONPATH=src python -m repro.obs.reference docs/observability.md
"""

from __future__ import annotations

import dataclasses
import re
import sys
from typing import Dict, List

from repro.obs.events import EVENT_KINDS, RunEvent
from repro.obs.metrics import CANONICAL_INSTRUMENTS, DERIVED_METRICS

__all__ = [
    "render_event_table",
    "render_instrument_table",
    "render_derived_table",
    "GENERATED_SECTIONS",
    "rewrite_generated_sections",
]

_BASE_FIELDS = {f.name for f in dataclasses.fields(RunEvent)}

#: Human-readable layer headings, in the order instrument tables group them.
_LAYER_TITLES = (
    ("core", "Core GA engine"),
    ("grid", "Grid simulator + coordination"),
    ("scheduling", "ETC scheduling study"),
    ("exp", "Experiment orchestration"),
    ("soak", "Soak mode"),
    ("service", "Planning service"),
)


def _first_doc_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0].rstrip(".") if doc else ""


def render_event_table() -> str:
    """Markdown table of every registered :class:`RunEvent` type.

    One row per entry in :data:`repro.obs.events.EVENT_KINDS`, sorted by
    wire kind: the kind string, the event class, its payload fields (base
    ``scope`` excluded) and the first docstring line.
    """
    lines = [
        "| kind | class | payload fields | meaning |",
        "| --- | --- | --- | --- |",
    ]
    for kind in sorted(EVENT_KINDS):
        cls = EVENT_KINDS[kind]
        payload = [f.name for f in dataclasses.fields(cls) if f.name not in _BASE_FIELDS]
        fields = ", ".join(f"`{name}`" for name in payload) or "—"
        lines.append(f"| `{kind}` | `{cls.__name__}` | {fields} | {_first_doc_line(cls)} |")
    return "\n".join(lines)


def render_instrument_table() -> str:
    """Markdown tables of every canonical instrument, grouped by layer.

    Renders :data:`repro.obs.metrics.CANONICAL_INSTRUMENTS` as one table
    per owning layer, preserving declaration order within each group.
    """
    by_layer: Dict[str, List[str]] = {}
    for spec in CANONICAL_INSTRUMENTS:
        by_layer.setdefault(spec.layer, []).append(
            f"| `{spec.name}` | {spec.kind} | {spec.meaning} |"
        )
    chunks: List[str] = []
    for layer, title in _LAYER_TITLES:
        rows = by_layer.pop(layer, None)
        if not rows:
            continue
        chunks.append(
            "\n".join(
                [f"**{title}**", "", "| name | instrument | meaning |", "| --- | --- | --- |"]
                + rows
            )
        )
    for layer in sorted(by_layer):  # pragma: no cover - unknown-layer safety net
        chunks.append(
            "\n".join(
                [f"**{layer}**", "", "| name | instrument | meaning |", "| --- | --- | --- |"]
                + by_layer[layer]
            )
        )
    return "\n\n".join(chunks)


def render_derived_table() -> str:
    """Markdown table of the derived headline metrics.

    One row per entry in :data:`repro.obs.metrics.DERIVED_METRICS`, in
    declaration order; these names appear only in ``*_summary`` outputs,
    never as registry instruments.
    """
    lines = ["| name | meaning |", "| --- | --- |"]
    for name, meaning in DERIVED_METRICS:
        lines.append(f"| `{name}` | {meaning} |")
    return "\n".join(lines)


#: Generated-section name → renderer, as referenced by the markdown markers.
GENERATED_SECTIONS = {
    "events": render_event_table,
    "instruments": render_instrument_table,
    "derived": render_derived_table,
}


def rewrite_generated_sections(text: str) -> str:
    """Return ``text`` with every marked generated section re-rendered.

    Sections are delimited by ``<!-- BEGIN GENERATED: name -->`` /
    ``<!-- END GENERATED: name -->`` pairs whose ``name`` keys
    :data:`GENERATED_SECTIONS`; unknown names raise ``KeyError`` so a typo
    in the markdown cannot silently skip regeneration.
    """

    def _replace(match: "re.Match[str]") -> str:
        name = match.group("name")
        body = GENERATED_SECTIONS[name]()
        return f"<!-- BEGIN GENERATED: {name} -->\n{body}\n<!-- END GENERATED: {name} -->"

    return re.sub(
        r"<!-- BEGIN GENERATED: (?P<name>[\w-]+) -->\n.*?<!-- END GENERATED: (?P=name) -->",
        _replace,
        text,
        flags=re.DOTALL,
    )


def main(argv: List[str]) -> int:
    """Rewrite the generated sections of each markdown file in ``argv``."""
    if not argv:
        print("usage: python -m repro.obs.reference DOC.md [DOC.md ...]", file=sys.stderr)
        return 2
    for path in argv:
        with open(path, encoding="utf-8") as fh:
            original = fh.read()
        updated = rewrite_generated_sections(original)
        if updated != original:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(updated)
            print(f"rewrote {path}")
        else:
            print(f"unchanged {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    raise SystemExit(main(sys.argv[1:]))
