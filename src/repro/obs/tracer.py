"""The Tracer: fan events out to pluggable sinks, plus ambient defaults.

A :class:`Tracer` owns an ordered list of sinks and forwards every emitted
:class:`~repro.obs.events.RunEvent` to each of them.  ``NULL_TRACER`` (a
tracer with no sinks) is the universal "tracing off" value: ``emit`` on it
is a no-op and ``enabled`` is False, so hot paths can skip event
construction entirely.

Ambient defaults
----------------
Deep call stacks (the analysis drivers regenerate whole paper tables
through many layers) would need a ``tracer=`` parameter on every function
to be observable.  Instead the module keeps a process-wide default
tracer/metrics pair, installed with the :func:`observe` context manager;
instrumented constructors (``GARun``, ``GridSimulator``, ``ga_schedule``,
…) fall back to the ambient pair whenever no explicit one is passed.  This
is the same shape as :mod:`logging`'s root logger: explicit wiring wins,
ambient state covers everything else.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional

from repro.obs.events import RunEvent
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Sink",
    "Tracer",
    "NULL_TRACER",
    "observe",
    "default_tracer",
    "default_metrics",
]


class Sink:
    """Receives events from a tracer.  Subclasses override :meth:`write`."""

    def write(self, event: RunEvent) -> None:  # pragma: no cover - interface
        """Handle one emitted event."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output downstream (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink must not be written to afterwards."""


class Tracer:
    """Emit events to zero or more sinks.

    The empty tracer is falsy-cheap: ``enabled`` is False and emitters are
    expected to guard event construction behind it.
    """

    __slots__ = ("sinks",)

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)

    @property
    def enabled(self) -> bool:
        """Whether any sink is attached (guard event construction on this)."""
        return bool(self.sinks)

    def emit(self, event: RunEvent) -> None:
        """Forward *event* to every attached sink, in order."""
        for sink in self.sinks:
            sink.write(event)

    def add_sink(self, sink: Sink) -> None:
        """Attach another sink; subsequent emits include it."""
        self.sinks.append(sink)

    def flush(self) -> None:
        """Flush every attached sink."""
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        """Support ``with Tracer(...) as tracer`` for scoped sink lifetime."""
        return self

    def __exit__(self, *exc) -> None:
        """Close every sink when the ``with`` block exits."""
        self.close()


NULL_TRACER = Tracer()

_ambient_tracer: Tracer = NULL_TRACER
_ambient_metrics: Optional[MetricsRegistry] = None


def default_tracer() -> Tracer:
    """The ambient tracer (``NULL_TRACER`` unless :func:`observe` is active)."""
    return _ambient_tracer


def default_metrics() -> Optional[MetricsRegistry]:
    """The ambient metrics registry, or ``None``."""
    return _ambient_metrics


@contextmanager
def observe(tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None):
    """Install *tracer*/*metrics* as the ambient pair for the block.

    Nested ``observe`` blocks stack; leaving a block restores the previous
    pair.  ``None`` leaves the corresponding slot unchanged, so metrics can
    be added without disturbing an outer tracer (and vice versa).
    """
    global _ambient_tracer, _ambient_metrics
    prev = (_ambient_tracer, _ambient_metrics)
    if tracer is not None:
        _ambient_tracer = tracer
    if metrics is not None:
        _ambient_metrics = metrics
    try:
        yield (_ambient_tracer, _ambient_metrics)
    finally:
        _ambient_tracer, _ambient_metrics = prev
