"""The Tracer: fan events out to pluggable sinks, plus ambient defaults.

A :class:`Tracer` owns an ordered list of sinks and forwards every emitted
:class:`~repro.obs.events.RunEvent` to each of them.  ``NULL_TRACER`` (a
tracer with no sinks) is the universal "tracing off" value: ``emit`` on it
is a no-op and ``enabled`` is False, so hot paths can skip event
construction entirely.

Ambient defaults
----------------
Deep call stacks (the analysis drivers regenerate whole paper tables
through many layers) would need a ``tracer=`` parameter on every function
to be observable.  Instead the module keeps a process-wide default
tracer/metrics pair, installed with the :func:`observe` context manager;
instrumented constructors (``GARun``, ``GridSimulator``, ``ga_schedule``,
…) fall back to the ambient pair whenever no explicit one is passed.  This
is the same shape as :mod:`logging`'s root logger: explicit wiring wins,
ambient state covers everything else.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional

from repro.obs.events import RunEvent
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Sink",
    "Tracer",
    "NULL_TRACER",
    "observe",
    "default_tracer",
    "default_metrics",
]


class Sink:
    """Receives events from a tracer.  Subclasses override :meth:`write`."""

    def write(self, event: RunEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer:
    """Emit events to zero or more sinks.

    The empty tracer is falsy-cheap: ``enabled`` is False and emitters are
    expected to guard event construction behind it.
    """

    __slots__ = ("sinks",)

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)

    @property
    def enabled(self) -> bool:
        return bool(self.sinks)

    def emit(self, event: RunEvent) -> None:
        for sink in self.sinks:
            sink.write(event)

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


NULL_TRACER = Tracer()

_ambient_tracer: Tracer = NULL_TRACER
_ambient_metrics: Optional[MetricsRegistry] = None


def default_tracer() -> Tracer:
    """The ambient tracer (``NULL_TRACER`` unless :func:`observe` is active)."""
    return _ambient_tracer


def default_metrics() -> Optional[MetricsRegistry]:
    """The ambient metrics registry, or ``None``."""
    return _ambient_metrics


@contextmanager
def observe(tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None):
    """Install *tracer*/*metrics* as the ambient pair for the block.

    Nested ``observe`` blocks stack; leaving a block restores the previous
    pair.  ``None`` leaves the corresponding slot unchanged, so metrics can
    be added without disturbing an outer tracer (and vice versa).
    """
    global _ambient_tracer, _ambient_metrics
    prev = (_ambient_tracer, _ambient_metrics)
    if tracer is not None:
        _ambient_tracer = tracer
    if metrics is not None:
        _ambient_metrics = metrics
    try:
        yield (_ambient_tracer, _ambient_metrics)
    finally:
        _ambient_tracer, _ambient_metrics = prev
