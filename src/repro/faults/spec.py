"""Fault-spec grammar: a compact, parseable description of an unreliable grid.

A fault spec is a ``;``-separated list of clauses, each a fault kind with
``,``-separated ``key=value`` parameters::

    machine-crash:p=0.02;slowdown:factor=4;worker-crash:n=2;eval-timeout:s=5

The grammar is deliberately tiny so the same string works as a CLI flag
(``--faults``), a config field, and a test parameter.  Clauses divide into
three families:

- **grid clauses** (``machine-crash``, ``slowdown``, ``link-degrade``,
  ``partition``) are materialised by :class:`~repro.faults.injector.
  FaultInjector` into a deterministic :class:`~repro.grid.simulator.
  GridEvent` timeline for the simulator;
- **execution clauses** (``worker-crash``, ``worker-hang``,
  ``eval-timeout``) configure the fault-tolerant evaluation path
  (:class:`~repro.core.resilient.ResilientEvaluator`);
- **workload clauses** (``arrival``) describe an open-ended request
  stream for the long-running soak mode: ``arrival:rate=0.2`` is a
  Poisson arrival process of workflow requests at 0.2 requests per
  simulated second, materialised deterministically by
  :class:`~repro.soak.arrivals.ArrivalStream` (optional ``n`` caps the
  number of requests; 0 means unbounded).

Parsing is strict: unknown kinds, unknown parameters, missing required
parameters and out-of-range values all raise ``ValueError`` naming the
offending clause — a fault plan that silently differs from what the user
typed would defeat the whole point of deterministic chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["FaultClause", "FaultSpec", "parse_fault_spec", "FAULT_KINDS"]


#: kind -> (required params, optional params with defaults)
FAULT_KINDS: Dict[str, Tuple[Tuple[str, ...], Dict[str, float]]] = {
    # grid-level faults (materialised into GridEvents)
    "machine-crash": (("p",), {"restore": 0.0}),
    "slowdown": (("factor",), {"p": 1.0, "duration": 0.0}),
    "link-degrade": (("factor",), {"p": 1.0}),
    "partition": (("p",), {}),
    # execution-level faults (consumed by the resilient evaluation path)
    "worker-crash": (("n",), {}),
    "worker-hang": (("n",), {"s": 30.0}),
    "eval-timeout": (("s",), {}),
    # workload clauses (consumed by the soak mode's arrival stream)
    "arrival": (("rate",), {"n": 0.0}),
}

_GRID_KINDS = ("machine-crash", "slowdown", "link-degrade", "partition")
_WORKLOAD_KINDS = ("arrival",)


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause: a fault kind plus its full parameter map."""

    fault: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise ValueError(f"unknown fault kind {self.fault!r}; known kinds: {known}")
        required, optional = FAULT_KINDS[self.fault]
        params = dict(self.params)
        for name in params:
            if name not in required and name not in optional:
                allowed = ", ".join((*required, *optional)) or "(none)"
                raise ValueError(
                    f"fault {self.fault!r}: unknown parameter {name!r} (allowed: {allowed})"
                )
        for name in required:
            if name not in params:
                raise ValueError(f"fault {self.fault!r}: missing required parameter {name!r}")
        for name, default in optional.items():
            params.setdefault(name, default)
        self._validate(params)
        object.__setattr__(self, "params", params)

    def _validate(self, params: Dict[str, float]) -> None:
        p = params.get("p")
        if p is not None and not (0.0 <= p <= 1.0):
            raise ValueError(f"fault {self.fault!r}: p must be in [0, 1], got {p}")
        factor = params.get("factor")
        if factor is not None and factor <= 1.0:
            raise ValueError(f"fault {self.fault!r}: factor must be > 1, got {factor}")
        n = params.get("n")
        if n is not None and (n != int(n) or n < 0):
            raise ValueError(f"fault {self.fault!r}: n must be a non-negative integer, got {n}")
        s = params.get("s")
        if s is not None and s <= 0:
            raise ValueError(f"fault {self.fault!r}: s must be positive, got {s}")
        rate = params.get("rate")
        if rate is not None and rate <= 0:
            raise ValueError(f"fault {self.fault!r}: rate must be positive, got {rate}")
        for name in ("restore", "duration"):
            v = params.get(name)
            if v is not None and v < 0:
                raise ValueError(f"fault {self.fault!r}: {name} must be non-negative, got {v}")

    def __getitem__(self, name: str) -> float:
        return self.params[name]

    def __str__(self) -> str:
        required, optional = FAULT_KINDS[self.fault]
        parts = []
        for name in (*required, *optional):
            value = self.params[name]
            if name in optional and value == optional[name]:
                continue  # canonical form drops defaults
            parts.append(f"{name}={value:g}")
        return f"{self.fault}:{','.join(parts)}" if parts else self.fault


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault spec: an ordered tuple of clauses plus typed views."""

    clauses: Tuple[FaultClause, ...]

    @property
    def grid_clauses(self) -> Tuple[FaultClause, ...]:
        return tuple(c for c in self.clauses if c.fault in _GRID_KINDS)

    @property
    def arrival_clauses(self) -> Tuple[FaultClause, ...]:
        return tuple(c for c in self.clauses if c.fault in _WORKLOAD_KINDS)

    @property
    def worker_crashes(self) -> int:
        return sum(int(c["n"]) for c in self.clauses if c.fault == "worker-crash")

    @property
    def worker_hangs(self) -> int:
        return sum(int(c["n"]) for c in self.clauses if c.fault == "worker-hang")

    @property
    def hang_seconds(self) -> float:
        hangs = [c for c in self.clauses if c.fault == "worker-hang"]
        return max((c["s"] for c in hangs), default=30.0)

    @property
    def eval_timeout_s(self) -> Optional[float]:
        timeouts = [c["s"] for c in self.clauses if c.fault == "eval-timeout"]
        return min(timeouts) if timeouts else None

    def __str__(self) -> str:
        return ";".join(str(c) for c in self.clauses)

    def __iter__(self) -> Iterable[FaultClause]:
        return iter(self.clauses)


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse a spec string; see module docstring for the grammar."""
    clauses = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        fault, _, arg_str = raw.partition(":")
        params: Dict[str, float] = {}
        for pair in filter(None, (p.strip() for p in arg_str.split(","))):
            name, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(
                    f"fault clause {raw!r}: expected key=value parameters, got {pair!r}"
                )
            try:
                params[name.strip()] = float(value)
            except ValueError:
                raise ValueError(
                    f"fault clause {raw!r}: parameter {name.strip()!r} is not a number: "
                    f"{value!r}"
                ) from None
        clauses.append(FaultClause(fault=fault.strip(), params=params))
    if not clauses:
        raise ValueError(f"fault spec {spec!r} contains no clauses")
    return FaultSpec(clauses=tuple(clauses))
