"""repro.faults — deterministic fault injection for the unreliable grid.

The paper plans *because* grids are unreliable; this package supplies the
unreliability on demand.  A compact spec string (see
:func:`parse_fault_spec`) describes a fault mix::

    machine-crash:p=0.02;slowdown:factor=4;worker-crash:n=2;eval-timeout:s=5

and :class:`FaultInjector` materialises it — deterministically, from a
seed — into a :class:`FaultPlan`: a grid-event timeline (machine crashes,
transient slowdowns, link degradation, partitions) for the simulator and
coordination service, plus execution-fault directives (worker crashes and
hangs, evaluation timeouts) for the resilient evaluation path in
:mod:`repro.core.resilient`.

Everything downstream is exercised by this one front door: the broker's
next-best-offer retries, the coordinator's replan-from-failure-state loop,
the evaluator's pool-rebuild/serial-degradation ladder, and checkpoint
recovery all have a seeded adversary to prove themselves against, with the
``fault-injected`` / ``retry`` / ``evaluator-degraded`` / ``replan``
events and ``faults_injected`` / ``retries`` / ``degradations`` counters
flowing through :mod:`repro.obs`.
"""

from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.spec import FAULT_KINDS, FaultClause, FaultSpec, parse_fault_spec

__all__ = [
    "FAULT_KINDS",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "parse_fault_spec",
]
