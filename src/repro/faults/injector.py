"""Deterministic fault injection: spec + seed → reproducible fault plan.

The paper's premise is a *dynamic, unreliable* grid — "resources may join
or leave at will" — so every execution path that claims fault tolerance
needs an adversary to prove itself against.  :class:`FaultInjector` is that
adversary: given a parsed :class:`~repro.faults.spec.FaultSpec` and a seed,
it materialises a :class:`FaultPlan` whose grid-event timeline and
execution-fault directives are a pure function of ``(spec, seed,
topology, horizon)``.  Two runs with the same inputs see byte-identical
fault timelines, which is what makes chaos runs assertable in tests and
comparable across optimisation PRs.

Determinism discipline: machines and links are visited in sorted order and
every random draw goes through one :func:`repro.core.rng.make_rng` stream,
so adding a clause never perturbs the draws of clauses before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.rng import make_rng
from repro.faults.spec import FaultClause, FaultSpec, parse_fault_spec
from repro.grid.resources import GridTopology
from repro.grid.simulator import GridEvent

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """A materialised, fully deterministic fault plan for one run.

    ``grid_events`` feed :class:`~repro.grid.simulator.GridSimulator` /
    :class:`~repro.grid.coordination.CoordinationService`; the remaining
    fields configure :class:`~repro.core.resilient.ResilientEvaluator`
    (``worker_crashes`` pool kills, ``worker_hangs`` stuck workers of
    ``hang_seconds`` each, and an optional per-batch evaluation timeout).
    """

    spec: str
    seed: int
    grid_events: Tuple[GridEvent, ...] = ()
    worker_crashes: int = 0
    worker_hangs: int = 0
    hang_seconds: float = 30.0
    eval_timeout_s: Optional[float] = None

    def describe(self) -> str:
        """Human-readable timeline, one fault per line."""
        lines = [f"fault plan (spec={self.spec!r}, seed={self.seed})"]
        for ev in self.grid_events:
            target = ev.machine if not ev.peer else f"{ev.machine}--{ev.peer}"
            extra = f" value={ev.value:g}" if ev.kind in ("load", "link-degrade") else ""
            lines.append(f"  t={ev.time:8.2f}  {ev.kind:<12} {target}{extra}")
        if self.worker_crashes:
            lines.append(f"  worker crashes: {self.worker_crashes}")
        if self.worker_hangs:
            lines.append(f"  worker hangs:   {self.worker_hangs} x {self.hang_seconds:g}s")
        if self.eval_timeout_s is not None:
            lines.append(f"  eval timeout:   {self.eval_timeout_s:g}s per batch")
        return "\n".join(lines)


class FaultInjector:
    """Builds deterministic :class:`FaultPlan`\\ s from a spec and seed."""

    def __init__(self, spec: Union[str, FaultSpec], seed: int = 0) -> None:
        self.spec = parse_fault_spec(spec) if isinstance(spec, str) else spec
        self.seed = seed

    def plan(
        self, topology: Optional[GridTopology] = None, horizon: float = 60.0
    ) -> FaultPlan:
        """Materialise the plan over *topology* within ``[0, horizon)``.

        *topology* may be ``None`` when the spec has only execution clauses
        (worker-crash / worker-hang / eval-timeout); grid clauses then
        contribute nothing.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = make_rng(self.seed)
        events: List[GridEvent] = []
        if topology is not None:
            for clause in self.spec.grid_clauses:
                events.extend(self._grid_events(clause, topology, horizon, rng))
        events.sort(key=lambda e: (e.time, e.kind, e.machine, e.peer))
        return FaultPlan(
            spec=str(self.spec),
            seed=self.seed,
            grid_events=tuple(events),
            worker_crashes=self.spec.worker_crashes,
            worker_hangs=self.spec.worker_hangs,
            hang_seconds=self.spec.hang_seconds,
            eval_timeout_s=self.spec.eval_timeout_s,
        )

    # -- per-clause materialisation -----------------------------------------

    def _grid_events(
        self, clause: FaultClause, topology: GridTopology, horizon: float, rng
    ) -> List[GridEvent]:
        events: List[GridEvent] = []
        if clause.fault == "machine-crash":
            for name in topology.machine_names():
                if rng.random() >= clause["p"]:
                    continue
                t = float(rng.uniform(0.0, horizon))
                events.append(GridEvent(time=t, kind="fail", machine=name))
                if clause["restore"] > 0:
                    events.append(
                        GridEvent(time=t + clause["restore"], kind="restore", machine=name)
                    )
        elif clause.fault == "slowdown":
            extra_load = clause["factor"] - 1.0
            for name in topology.machine_names():
                if rng.random() >= clause["p"]:
                    continue
                t = float(rng.uniform(0.0, horizon))
                base = topology.machines[name].load
                events.append(
                    GridEvent(time=t, kind="load", machine=name, value=base + extra_load)
                )
                if clause["duration"] > 0:
                    events.append(
                        GridEvent(
                            time=t + clause["duration"], kind="load", machine=name, value=base
                        )
                    )
        elif clause.fault in ("link-degrade", "partition"):
            for a, b in topology.link_pairs():
                if rng.random() >= clause["p"]:
                    continue
                t = float(rng.uniform(0.0, horizon))
                if clause.fault == "link-degrade":
                    events.append(
                        GridEvent(
                            time=t, kind="link-degrade", machine=a, peer=b,
                            value=clause["factor"],
                        )
                    )
                else:
                    events.append(GridEvent(time=t, kind="partition", machine=a, peer=b))
        else:  # pragma: no cover - grid_clauses filters to the kinds above
            raise ValueError(f"not a grid fault: {clause.fault!r}")
        return events
