"""Expected-time-to-compute (ETC) matrix generation — Braun et al. (2001).

The paper's related work ([4, 19, 20]) maps independent tasks onto
heterogeneous machines; the standard benchmark parameterises an ETC matrix
``etc[task, machine]`` by *task heterogeneity*, *machine heterogeneity*, and
*consistency*:

- **consistent** — machine columns are sorted per task: a machine faster on
  one task is faster on all;
- **inconsistent** — no such structure;
- **semi-consistent** — a consistent sub-matrix embedded in an inconsistent
  one (even-indexed columns sorted).

Generation follows the range-based method: ``etc[i, j] = tau_i * u_ij`` with
``tau_i ~ U(1, R_task)`` and ``u_ij ~ U(1, R_mach)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = ["ETCParams", "generate_etc", "CONSISTENCY_KINDS", "HETEROGENEITY_RANGES"]

CONSISTENCY_KINDS = ("consistent", "semi", "inconsistent")

#: Braun et al.'s hi/lo heterogeneity ranges.
HETEROGENEITY_RANGES = {"lo": 10.0, "hi": 100.0, "hi-task": 3000.0}


@dataclass(frozen=True)
class ETCParams:
    """Parameters of one ETC instance."""

    n_tasks: int = 512
    n_machines: int = 16
    task_heterogeneity: float = 3000.0
    machine_heterogeneity: float = 100.0
    consistency: str = "inconsistent"

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.n_machines < 1:
            raise ValueError("need at least one task and one machine")
        if self.task_heterogeneity <= 1 or self.machine_heterogeneity <= 1:
            raise ValueError("heterogeneity ranges must exceed 1")
        if self.consistency not in CONSISTENCY_KINDS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_KINDS}, got {self.consistency!r}"
            )


def generate_etc(params: ETCParams, rng: np.random.Generator) -> np.ndarray:
    """An ``(n_tasks, n_machines)`` ETC matrix per the range-based method."""
    tau = rng.uniform(1.0, params.task_heterogeneity, size=(params.n_tasks, 1))
    u = rng.uniform(1.0, params.machine_heterogeneity, size=(params.n_tasks, params.n_machines))
    etc = tau * u
    if params.consistency == "consistent":
        etc.sort(axis=1)
    elif params.consistency == "semi":
        sub = etc[:, ::2]
        sub.sort(axis=1)
        etc[:, ::2] = sub
    return etc
