"""GA task mapper for heterogeneous machines (Wang et al. 1997 style).

This is the *prior* use of GAs in heterogeneous computing the paper builds
on: the activity graph is given (here: independent tasks), and the GA
searches over assignments.  Contrast with :mod:`repro.core`, which evolves
the plan itself.

Encoding: a fixed-length integer chromosome ``assign[task] = machine``.
Fitness: negative makespan (optionally blended with flowtime).  Operators:
tournament selection, uniform assignment crossover, per-gene reassignment
mutation, Min-min seeding, and elitism — the standard recipe from the
eleven-heuristics study's GA entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.events import SchedulerGeneration
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, default_metrics, default_tracer
from repro.scheduling.heuristics import min_min
from repro.scheduling.metrics import flowtime, machine_loads, makespan

__all__ = ["GASchedulerConfig", "GASchedulerResult", "ga_schedule"]


@dataclass(frozen=True)
class GASchedulerConfig:
    population_size: int = 100
    generations: int = 200
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    tournament_size: int = 2
    elitism: int = 2
    seed_min_min: bool = True
    flowtime_weight: float = 0.0  # 0 = pure makespan objective

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if not 0.0 <= self.flowtime_weight <= 1.0:
            raise ValueError("flowtime_weight must be in [0, 1]")


@dataclass
class GASchedulerResult:
    assignment: np.ndarray
    makespan: float
    flowtime: float
    history: List[float]  # best makespan per generation

    @property
    def generations(self) -> int:
        return len(self.history)


def _objective(etc: np.ndarray, pop: np.ndarray, w_flow: float) -> np.ndarray:
    """Vectorised makespan (and optional flowtime) over a population."""
    n_pop, n_tasks = pop.shape
    n_machines = etc.shape[1]
    exec_times = etc[np.arange(n_tasks)[None, :], pop]  # (pop, tasks)
    loads = np.zeros((n_pop, n_machines))
    rows = np.repeat(np.arange(n_pop), n_tasks)
    np.add.at(loads, (rows, pop.ravel()), exec_times.ravel())
    spans = loads.max(axis=1)
    if w_flow == 0.0:
        return spans
    flows = loads.sum(axis=1)  # proxy: total busy time (lower bound of flowtime)
    return (1.0 - w_flow) * spans + w_flow * flows


def ga_schedule(
    etc: np.ndarray,
    config: GASchedulerConfig,
    rng: np.random.Generator,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> GASchedulerResult:
    """Evolve a task→machine mapping minimising makespan for *etc*.

    Emits one ``scheduler-generation`` event per generation (scope
    ``"scheduler"``) and records the ``sched_objective`` timer plus a
    ``sched_evals`` counter; defaults to the ambient observability pair.
    """
    tracer = tracer if tracer is not None else default_tracer()
    metrics = metrics if metrics is not None else default_metrics()
    n_tasks, n_machines = etc.shape
    pop = rng.integers(0, n_machines, size=(config.population_size, n_tasks))
    if config.seed_min_min:
        pop[0] = min_min(etc)

    history: List[float] = []
    best_assign: Optional[np.ndarray] = None
    best_obj = np.inf

    for _gen in range(config.generations):
        t0 = time.perf_counter()
        obj = _objective(etc, pop, config.flowtime_weight)
        if metrics is not None:
            metrics.timer("sched_objective").record(time.perf_counter() - t0)
            metrics.counter("sched_evals").add(config.population_size)
        gen_best = int(np.argmin(obj))
        if obj[gen_best] < best_obj:
            best_obj = float(obj[gen_best])
            best_assign = pop[gen_best].copy()
        history.append(float(makespan(etc, pop[gen_best])))
        if tracer.enabled:
            tracer.emit(
                SchedulerGeneration(
                    scope="scheduler",
                    generation=_gen,
                    best_makespan=history[-1],
                    mean_objective=float(obj.mean()),
                )
            )

        # Tournament selection (vectorised): k random contestants per slot.
        draws = rng.integers(0, config.population_size, size=(config.population_size, config.tournament_size))
        winners = draws[np.arange(config.population_size), np.argmin(obj[draws], axis=1)]
        parents = pop[winners]

        # Uniform crossover on consecutive pairs.
        children = parents.copy()
        for i in range(0, config.population_size - 1, 2):
            if rng.random() < config.crossover_rate:
                mask = rng.random(n_tasks) < 0.5
                a, b = children[i].copy(), children[i + 1].copy()
                children[i][mask], children[i + 1][mask] = b[mask], a[mask]

        # Per-gene reassignment mutation.
        mut = rng.random(children.shape) < config.mutation_rate
        children[mut] = rng.integers(0, n_machines, size=int(mut.sum()))

        # Elitism: keep the best of the evaluated generation.
        if config.elitism:
            elite_idx = np.argsort(obj)[: config.elitism]
            children[: config.elitism] = pop[elite_idx]
        pop = children

    assert best_assign is not None
    return GASchedulerResult(
        assignment=best_assign,
        makespan=makespan(etc, best_assign),
        flowtime=flowtime(etc, best_assign),
        history=history,
    )
