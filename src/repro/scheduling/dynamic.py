"""Dynamic mapping of arriving independent tasks (Maheswaran et al. 1999).

The paper's reference [12]: tasks arrive over time and are mapped on-line.
Two modes are implemented:

- **Immediate mode** — each task is mapped the moment it arrives:
  MCT (minimum completion time), MET (minimum execution time), OLB
  (earliest-free machine), KPB (k-percent best: MCT restricted to the
  task's k% fastest machines), and SA (switching algorithm: alternates
  between MCT and MET based on the machine load-balance ratio).
- **Batch mode** — arrivals are buffered and mapped together at regular
  mapping events using Min-min, Max-min, or Sufferage over the batch.

All functions consume an arrival schedule plus an ETC matrix and return a
:class:`DynamicScheduleResult` with per-task completion times and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "TaskArrival",
    "DynamicScheduleResult",
    "immediate_mode",
    "batch_mode",
    "poisson_arrivals",
    "IMMEDIATE_HEURISTICS",
    "BATCH_HEURISTICS",
]


@dataclass(frozen=True)
class TaskArrival:
    """One task: its ETC row index and its arrival time."""

    task: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass
class DynamicScheduleResult:
    """Outcome of a dynamic mapping run."""

    assignment: np.ndarray  # task -> machine
    start: np.ndarray
    completion: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.completion.max()) if self.completion.size else 0.0

    @property
    def mean_response(self) -> float:
        """Mean task turnaround (completion - arrival is tracked by caller)."""
        return float(self.completion.mean()) if self.completion.size else 0.0


def poisson_arrivals(
    n_tasks: int, rate: float, rng: np.random.Generator
) -> List[TaskArrival]:
    """Poisson arrival process: exponential inter-arrival times at *rate*."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    times = np.cumsum(rng.exponential(1.0 / rate, size=n_tasks))
    return [TaskArrival(task=i, time=float(t)) for i, t in enumerate(times)]


def _validate(etc: np.ndarray, arrivals: Sequence[TaskArrival]) -> None:
    if etc.ndim != 2 or etc.size == 0:
        raise ValueError("ETC must be a non-empty 2-D matrix")
    tasks = sorted(a.task for a in arrivals)
    if tasks != list(range(len(arrivals))) or len(arrivals) != etc.shape[0]:
        raise ValueError(
            "arrivals must reference each ETC row exactly once "
            f"(got {len(arrivals)} arrivals for {etc.shape[0]} tasks)"
        )


# -- immediate mode -------------------------------------------------------------


def _pick_mct(etc, task, ready, now, _state) -> int:
    completion = np.maximum(ready, now) + etc[task]
    return int(np.argmin(completion))


def _pick_met(etc, task, ready, now, _state) -> int:
    return int(np.argmin(etc[task]))


def _pick_olb(etc, task, ready, now, _state) -> int:
    return int(np.argmin(np.maximum(ready, now)))


def _make_pick_kpb(percent: float) -> Callable:
    if not 0 < percent <= 100:
        raise ValueError("percent must be in (0, 100]")

    def pick(etc, task, ready, now, _state) -> int:
        n_machines = etc.shape[1]
        k = max(1, int(round(n_machines * percent / 100.0)))
        best = np.argsort(etc[task])[:k]  # the task's k% fastest machines
        completion = np.maximum(ready[best], now) + etc[task, best]
        return int(best[int(np.argmin(completion))])

    return pick


def _make_pick_sa(low: float = 0.6, high: float = 0.9) -> Callable:
    """Switching algorithm: MET while load is balanced, MCT when it skews.

    The balance ratio is min(ready)/max(ready) in [0, 1]; MET piles work on
    fast machines (ratio drops), MCT rebalances (ratio rises) — SA hysteresis
    switches between them at the *low*/*high* thresholds.
    """
    if not 0 <= low <= high <= 1:
        raise ValueError("thresholds must satisfy 0 <= low <= high <= 1")

    def pick(etc, task, ready, now, state) -> int:
        max_ready = float(np.maximum(ready, now).max())
        ratio = 1.0 if max_ready == 0 else float(np.maximum(ready, now).min()) / max_ready
        mode = state.setdefault("mode", "mct")
        if mode == "mct" and ratio >= high:
            state["mode"] = mode = "met"
        elif mode == "met" and ratio <= low:
            state["mode"] = mode = "mct"
        picker = _pick_met if mode == "met" else _pick_mct
        return picker(etc, task, ready, now, state)

    return pick


IMMEDIATE_HEURISTICS: Dict[str, Callable] = {
    "MCT": _pick_mct,
    "MET": _pick_met,
    "OLB": _pick_olb,
    "KPB": _make_pick_kpb(25.0),
    "SA": _make_pick_sa(),
}


def immediate_mode(
    etc: np.ndarray,
    arrivals: Sequence[TaskArrival],
    heuristic: str | Callable = "MCT",
) -> DynamicScheduleResult:
    """Map each task the instant it arrives."""
    _validate(etc, arrivals)
    pick = IMMEDIATE_HEURISTICS[heuristic] if isinstance(heuristic, str) else heuristic
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.int64)
    start = np.empty(n_tasks)
    completion = np.empty(n_tasks)
    state: dict = {}
    for arrival in sorted(arrivals, key=lambda a: a.time):
        t = arrival.task
        m = pick(etc, t, ready, arrival.time, state)
        begin = max(float(ready[m]), arrival.time)
        assignment[t] = m
        start[t] = begin
        completion[t] = begin + etc[t, m]
        ready[m] = completion[t]
    return DynamicScheduleResult(assignment=assignment, start=start, completion=completion)


# -- batch mode ------------------------------------------------------------------


def _batch_min_min(etc, batch, ready, now):
    return _batch_list(etc, batch, ready, now, prefer_max=False, sufferage=False)


def _batch_max_min(etc, batch, ready, now):
    return _batch_list(etc, batch, ready, now, prefer_max=True, sufferage=False)


def _batch_sufferage(etc, batch, ready, now):
    return _batch_list(etc, batch, ready, now, prefer_max=False, sufferage=True)


def _batch_list(etc, batch, ready, now, prefer_max: bool, sufferage: bool):
    """Shared batched list-scheduling core over pending task ids."""
    pending = list(batch)
    out = []
    ready = ready.copy()
    while pending:
        rows = np.array(pending)
        completion = np.maximum(ready, now)[None, :] + etc[rows]
        best_m = completion.argmin(axis=1)
        best_t = completion[np.arange(len(rows)), best_m]
        if sufferage and etc.shape[1] > 1:
            part = np.partition(completion, 1, axis=1)
            criterion = part[:, 1] - part[:, 0]
            idx = int(np.argmax(criterion))
        elif prefer_max:
            idx = int(np.argmax(best_t))
        else:
            idx = int(np.argmin(best_t))
        task = pending.pop(idx)
        machine = int(best_m[idx])
        begin = max(float(ready[machine]), now)
        ready[machine] = begin + etc[task, machine]
        out.append((task, machine, begin))
    return out


BATCH_HEURISTICS: Dict[str, Callable] = {
    "Min-min": _batch_min_min,
    "Max-min": _batch_max_min,
    "Sufferage": _batch_sufferage,
}


def batch_mode(
    etc: np.ndarray,
    arrivals: Sequence[TaskArrival],
    interval: float,
    heuristic: str | Callable = "Min-min",
) -> DynamicScheduleResult:
    """Buffer arrivals and map the batch at every mapping event.

    Mapping events occur every *interval* seconds (plus a final event after
    the last arrival).  Already-running work is modelled through machine
    ready times; batch tasks may start only at or after their mapping event.
    """
    _validate(etc, arrivals)
    if interval <= 0:
        raise ValueError("interval must be positive")
    mapper = BATCH_HEURISTICS[heuristic] if isinstance(heuristic, str) else heuristic
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.int64)
    start = np.empty(n_tasks)
    completion = np.empty(n_tasks)

    ordered = sorted(arrivals, key=lambda a: a.time)
    last_arrival = ordered[-1].time if ordered else 0.0
    events = list(np.arange(interval, last_arrival + interval, interval))
    if not events or events[-1] < last_arrival:
        events.append(last_arrival)

    i = 0
    for event_time in events:
        batch = []
        while i < len(ordered) and ordered[i].time <= event_time:
            batch.append(ordered[i].task)
            i += 1
        if not batch:
            continue
        for task, machine, begin in mapper(etc, batch, ready, event_time):
            assignment[task] = machine
            start[task] = begin
            completion[task] = begin + etc[task, machine]
            ready[machine] = completion[task]
    return DynamicScheduleResult(assignment=assignment, start=start, completion=completion)
