"""Static mapping heuristics for independent tasks (Braun et al. 2001).

Each heuristic returns a mapping vector ``assign[task] = machine`` for an
ETC matrix.  Implemented: OLB, MET, MCT, Min-min, Max-min, and Sufferage —
the non-evolutionary core of the eleven-heuristic comparison the paper
cites as prior GA work in heterogeneous computing.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["olb", "met", "mct", "min_min", "max_min", "sufferage", "HEURISTICS"]


def _check(etc: np.ndarray) -> None:
    if etc.ndim != 2 or etc.size == 0:
        raise ValueError(f"ETC must be a non-empty 2-D matrix, got shape {etc.shape}")
    if (etc <= 0).any():
        raise ValueError("ETC entries must be positive")


def olb(etc: np.ndarray) -> np.ndarray:
    """Opportunistic Load Balancing: next task to the earliest-free machine,
    ignoring execution times entirely."""
    _check(etc)
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    assign = np.empty(n_tasks, dtype=np.int64)
    for t in range(n_tasks):
        m = int(np.argmin(ready))
        assign[t] = m
        ready[m] += etc[t, m]
    return assign


def met(etc: np.ndarray) -> np.ndarray:
    """Minimum Execution Time: each task to its fastest machine, ignoring
    load — degenerates badly on consistent matrices (everything piles onto
    the globally fastest machine)."""
    _check(etc)
    return etc.argmin(axis=1).astype(np.int64)


def mct(etc: np.ndarray) -> np.ndarray:
    """Minimum Completion Time: each task (arrival order) to the machine
    that completes it earliest given current load."""
    _check(etc)
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    assign = np.empty(n_tasks, dtype=np.int64)
    for t in range(n_tasks):
        completion = ready + etc[t]
        m = int(np.argmin(completion))
        assign[t] = m
        ready[m] = completion[m]
    return assign


def _list_schedule(etc: np.ndarray, pick: Callable[[np.ndarray, np.ndarray], int]) -> np.ndarray:
    """Shared Min-min / Max-min / Sufferage skeleton.

    Repeatedly computes, for every unmapped task, its best completion time
    over machines; *pick* chooses which task to commit next.
    """
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    unmapped = np.ones(n_tasks, dtype=bool)
    assign = np.empty(n_tasks, dtype=np.int64)
    for _ in range(n_tasks):
        completion = ready[None, :] + etc  # (tasks, machines)
        best_machine = completion.argmin(axis=1)
        best_time = completion[np.arange(n_tasks), best_machine]
        t = pick(np.where(unmapped)[0], completion)
        m = int(best_machine[t])
        assign[t] = m
        ready[m] += etc[t, m]
        unmapped[t] = False
    return assign


def min_min(etc: np.ndarray) -> np.ndarray:
    """Min-min: commit the unmapped task with the smallest best completion
    time first — keeps machines short, the strongest simple heuristic."""
    _check(etc)

    def pick(unmapped_idx: np.ndarray, completion: np.ndarray) -> int:
        best = completion[unmapped_idx].min(axis=1)
        return int(unmapped_idx[int(np.argmin(best))])

    return _list_schedule(etc, pick)


def max_min(etc: np.ndarray) -> np.ndarray:
    """Max-min: commit the unmapped task with the *largest* best completion
    time first — protects long tasks from being stranded."""
    _check(etc)

    def pick(unmapped_idx: np.ndarray, completion: np.ndarray) -> int:
        best = completion[unmapped_idx].min(axis=1)
        return int(unmapped_idx[int(np.argmax(best))])

    return _list_schedule(etc, pick)


def sufferage(etc: np.ndarray) -> np.ndarray:
    """Sufferage: commit the task that would suffer most if denied its best
    machine (largest second-best minus best completion gap)."""
    _check(etc)
    n_machines = etc.shape[1]

    def pick(unmapped_idx: np.ndarray, completion: np.ndarray) -> int:
        sub = completion[unmapped_idx]
        if n_machines == 1:
            return int(unmapped_idx[int(np.argmin(sub[:, 0]))])
        part = np.partition(sub, 1, axis=1)
        suffer = part[:, 1] - part[:, 0]
        return int(unmapped_idx[int(np.argmax(suffer))])

    return _list_schedule(etc, pick)


HEURISTICS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "OLB": olb,
    "MET": met,
    "MCT": mct,
    "Min-min": min_min,
    "Max-min": max_min,
    "Sufferage": sufferage,
}
