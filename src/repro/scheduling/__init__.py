"""Heterogeneous-computing scheduling substrate (Braun et al. benchmark)."""

from repro.scheduling.etc import CONSISTENCY_KINDS, ETCParams, HETEROGENEITY_RANGES, generate_etc
from repro.scheduling.ga_scheduler import GASchedulerConfig, GASchedulerResult, ga_schedule
from repro.scheduling.heuristics import HEURISTICS, max_min, mct, met, min_min, olb, sufferage
from repro.scheduling.metrics import flowtime, machine_loads, makespan

__all__ = [
    "CONSISTENCY_KINDS", "ETCParams", "GASchedulerConfig", "GASchedulerResult",
    "HETEROGENEITY_RANGES", "HEURISTICS", "flowtime", "ga_schedule", "generate_etc",
    "machine_loads", "makespan", "max_min", "mct", "met", "min_min", "olb", "sufferage",
]

from repro.scheduling.dynamic import (  # noqa: E402
    BATCH_HEURISTICS,
    IMMEDIATE_HEURISTICS,
    DynamicScheduleResult,
    TaskArrival,
    batch_mode,
    immediate_mode,
    poisson_arrivals,
)

__all__ += [
    "BATCH_HEURISTICS", "DynamicScheduleResult", "IMMEDIATE_HEURISTICS",
    "TaskArrival", "batch_mode", "immediate_mode", "poisson_arrivals",
]

from repro.scheduling.dag import DagProblem, DagSchedule, heft, random_layered_dag  # noqa: E402

__all__ += ["DagProblem", "DagSchedule", "heft", "random_layered_dag"]
