"""Schedule quality metrics: makespan and flowtime."""

from __future__ import annotations

import numpy as np

__all__ = ["makespan", "flowtime", "machine_loads"]


def _validate(etc: np.ndarray, assign: np.ndarray) -> None:
    if assign.shape != (etc.shape[0],):
        raise ValueError(
            f"assignment length {assign.shape} does not match {etc.shape[0]} tasks"
        )
    if assign.min(initial=0) < 0 or assign.max(initial=0) >= etc.shape[1]:
        raise ValueError("assignment references machines outside the ETC matrix")


def machine_loads(etc: np.ndarray, assign: np.ndarray) -> np.ndarray:
    """Total execution time placed on each machine."""
    _validate(etc, assign)
    loads = np.zeros(etc.shape[1])
    np.add.at(loads, assign, etc[np.arange(etc.shape[0]), assign])
    return loads


def makespan(etc: np.ndarray, assign: np.ndarray) -> float:
    """Completion time of the last machine to finish."""
    return float(machine_loads(etc, assign).max())


def flowtime(etc: np.ndarray, assign: np.ndarray) -> float:
    """Sum of task completion times under per-machine FIFO order.

    Tasks on a machine run in index order; each task's completion time is
    the cumulative load up to and including it.
    """
    _validate(etc, assign)
    n_machines = etc.shape[1]
    total = 0.0
    for m in range(n_machines):
        tasks = np.where(assign == m)[0]
        total += float(np.cumsum(etc[tasks, m]).sum())
    return total
