"""DAG scheduling of workflows onto heterogeneous machines (HEFT).

The grid planner decides *placements* during planning; an alternative
pipeline — the "robust scheduling of metaprograms" line of the paper's
reference [2] — takes the activity graph as given and optimises the
mapping.  This module implements HEFT (Heterogeneous Earliest Finish Time,
Topcuoglu et al.), the standard list scheduler for that problem:

1. rank every task by *upward rank* — its critical-path distance to the
   exit, using mean execution and communication costs;
2. in decreasing rank order, place each task on the machine minimising its
   earliest finish time, accounting for data-arrival times from the
   machines its predecessors ran on.

Inputs are abstract: a DAG (networkx), per-task computation costs per
machine, and per-edge data volumes; :func:`activity_graph_to_dag_problem`
bridges from a grid :class:`ActivityGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = ["DagSchedule", "heft", "DagProblem", "random_layered_dag"]


@dataclass(frozen=True)
class DagProblem:
    """A DAG-scheduling instance.

    Attributes
    ----------
    graph:
        Dependency DAG over task ids.
    compute:
        ``compute[task][machine] -> seconds``; every task must list every
        machine (use ``inf`` for machines that cannot host a task).
    comm:
        ``comm[(u, v)] -> seconds`` to move u's output to v when they run
        on *different* machines (same-machine transfers are free).  Missing
        edges default to 0.
    machines:
        Machine ids, fixed order.
    """

    graph: nx.DiGraph
    compute: Dict[Hashable, Dict[Hashable, float]]
    comm: Dict[Tuple[Hashable, Hashable], float]
    machines: tuple

    def __post_init__(self) -> None:
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("task graph must be a DAG")
        for task in self.graph.nodes:
            if task not in self.compute:
                raise ValueError(f"task {task!r} has no compute costs")
            missing = [m for m in self.machines if m not in self.compute[task]]
            if missing:
                raise ValueError(f"task {task!r} missing costs for machines {missing}")


@dataclass
class DagSchedule:
    """A complete schedule: assignment plus per-task timing."""

    assignment: Dict[Hashable, Hashable]
    start: Dict[Hashable, float]
    finish: Dict[Hashable, float]

    @property
    def makespan(self) -> float:
        return max(self.finish.values(), default=0.0)


def _upward_ranks(problem: DagProblem) -> Dict[Hashable, float]:
    """Mean-cost critical-path-to-exit rank for every task."""
    mean_compute = {
        t: float(np.mean([c for c in problem.compute[t].values() if np.isfinite(c)] or [0.0]))
        for t in problem.graph.nodes
    }
    ranks: Dict[Hashable, float] = {}
    for task in reversed(list(nx.topological_sort(problem.graph))):
        best_succ = 0.0
        for succ in problem.graph.successors(task):
            comm = problem.comm.get((task, succ), 0.0)
            best_succ = max(best_succ, comm + ranks[succ])
        ranks[task] = mean_compute[task] + best_succ
    return ranks


def heft(problem: DagProblem) -> DagSchedule:
    """Run HEFT; raises if some task has no finite-cost machine."""
    ranks = _upward_ranks(problem)
    order = sorted(problem.graph.nodes, key=lambda t: ranks[t], reverse=True)

    machine_free: Dict[Hashable, float] = {m: 0.0 for m in problem.machines}
    assignment: Dict[Hashable, Hashable] = {}
    start: Dict[Hashable, float] = {}
    finish: Dict[Hashable, float] = {}

    for task in order:
        best: Optional[Tuple[float, float, Hashable]] = None  # (finish, start, machine)
        for m in problem.machines:
            cost = problem.compute[task][m]
            if not np.isfinite(cost):
                continue
            # Data-ready time: predecessors' finish plus transfer when the
            # predecessor ran elsewhere.
            ready = 0.0
            for pred in problem.graph.predecessors(task):
                arrival = finish[pred]
                if assignment[pred] != m:
                    arrival += problem.comm.get((pred, task), 0.0)
                ready = max(ready, arrival)
            begin = max(ready, machine_free[m])
            end = begin + cost
            if best is None or end < best[0]:
                best = (end, begin, m)
        if best is None:
            raise ValueError(f"task {task!r} has no machine able to host it")
        end, begin, m = best
        assignment[task] = m
        start[task] = begin
        finish[task] = end
        machine_free[m] = end
    return DagSchedule(assignment=assignment, start=start, finish=finish)


def random_layered_dag(
    n_tasks: int,
    n_layers: int,
    rng: np.random.Generator,
    edge_probability: float = 0.5,
) -> nx.DiGraph:
    """A random layered DAG: edges only flow from layer k to layer k+1.

    The classic synthetic-workflow generator shape; every non-first-layer
    task gets at least one predecessor so the DAG is connected front to
    back.
    """
    if n_tasks < n_layers or n_layers < 1:
        raise ValueError("need at least one task per layer")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_tasks))
    # Spread tasks over layers as evenly as possible.
    layers: List[List[int]] = [[] for _ in range(n_layers)]
    for t in range(n_tasks):
        layers[t % n_layers].append(t)
    for k in range(1, n_layers):
        for task in layers[k]:
            preds = [p for p in layers[k - 1] if rng.random() < edge_probability]
            if not preds:
                preds = [layers[k - 1][int(rng.integers(0, len(layers[k - 1])))]]
            for p in preds:
                graph.add_edge(p, task)
    return graph
