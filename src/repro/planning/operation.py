"""STRIPS-like operations: preconditions, postconditions, and a cost.

The paper's operations carry "a set of preconditions, a set of
postconditions, and a cost".  We use the standard STRIPS split of
postconditions into an *add list* and a *delete list*; the union view is
exposed as :attr:`Operation.postconditions` for fidelity with the paper's
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.planning.conditions import Atom, State, format_atom

__all__ = ["Operation"]


@dataclass(frozen=True)
class Operation:
    """A ground operation.

    Parameters
    ----------
    name:
        Unique human-readable identifier, e.g. ``"move(d1, A, B)"``.
    preconditions:
        Atoms that must hold for the operation to be valid.
    add:
        Atoms asserted by the operation.
    delete:
        Atoms retracted by the operation.
    cost:
        Non-negative execution cost (latency, arithmetic work, data volume
        transferred, ... — problem specific; the paper's experiments use
        unit cost).
    """

    name: str
    preconditions: frozenset = field(default_factory=frozenset)
    add: frozenset = field(default_factory=frozenset)
    delete: frozenset = field(default_factory=frozenset)
    cost: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "preconditions", frozenset(self.preconditions))
        object.__setattr__(self, "add", frozenset(self.add))
        object.__setattr__(self, "delete", frozenset(self.delete))
        if self.cost < 0:
            raise ValueError(f"operation {self.name!r} has negative cost {self.cost}")
        overlap = self.add & self.delete
        if overlap:
            raise ValueError(
                f"operation {self.name!r} both adds and deletes "
                f"{sorted(format_atom(a) for a in overlap)}"
            )

    @property
    def postconditions(self) -> frozenset:
        """The paper's single postcondition set: everything the op asserts."""
        return self.add

    def applicable(self, state: State) -> bool:
        """True iff the operation is valid in *state* (pre ⊆ state)."""
        return self.preconditions <= state

    def apply(self, state: State) -> State:
        """Successor state ``(state - delete) | add``.

        Raises ``ValueError`` when the operation is not applicable; callers
        on hot paths should check :meth:`applicable` themselves and use
        :meth:`apply_unchecked`.
        """
        if not self.applicable(state):
            missing = self.preconditions - state
            raise ValueError(
                f"operation {self.name!r} is invalid: missing preconditions "
                f"{sorted(format_atom(a) for a in missing)}"
            )
        return self.apply_unchecked(state)

    def apply_unchecked(self, state: State) -> State:
        """Successor state without the applicability check (hot path)."""
        return (state - self.delete) | self.add

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def check_operations(operations: Iterable[Operation], universe: frozenset) -> None:
    """Validate that every atom mentioned by *operations* is in *universe*.

    The paper's problem definition fixes the finite condition set up front;
    this catches typos in hand-built domains early.
    """
    for op in operations:
        for label, atoms in (
            ("precondition", op.preconditions),
            ("add", op.add),
            ("delete", op.delete),
        ):
            stray = atoms - universe
            if stray:
                raise ValueError(
                    f"operation {op.name!r} references unknown {label} atoms "
                    f"{sorted(format_atom(a) for a in stray)}"
                )
