"""Lifted operator schemas and grounding (a mini STRIPS/PDDL layer).

The paper assumes ontologies describing programs, data and resources; a
schema here plays the role of a lifted program description whose parameters
are instantiated against the object universe to produce the finite ground
operation set of a :class:`~repro.planning.problem.PlanningProblem`.

A schema's condition templates are atoms whose arguments may be *variables*
(strings starting with ``"?"``).  Grounding substitutes every type-compatible
combination of objects for the variables, skipping bindings rejected by the
schema's ``constraint`` predicate (e.g. "the two pegs must differ").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.planning.conditions import Atom
from repro.planning.operation import Operation

__all__ = ["Variable", "OperatorSchema", "ground_schema", "ground_all", "is_variable"]

Variable = str


def is_variable(token: object) -> bool:
    """Variables are strings beginning with ``?`` (PDDL convention)."""
    return isinstance(token, str) and token.startswith("?")


def _substitute(template: Atom, binding: Mapping[str, object]) -> Atom:
    out = []
    for tok in template:
        if is_variable(tok):
            try:
                out.append(binding[tok])
            except KeyError:
                raise ValueError(f"unbound variable {tok!r} in template {template!r}") from None
        else:
            out.append(tok)
    return tuple(out)


@dataclass(frozen=True)
class OperatorSchema:
    """A lifted operator.

    Parameters
    ----------
    name:
        Schema name; ground operation names are ``name(arg1, arg2, ...)``.
    parameters:
        Ordered ``(variable, type)`` pairs.  Types index into the object
        universe passed to :func:`ground_schema`.
    preconditions / add / delete:
        Atom templates over the parameters.
    constraint:
        Optional predicate over the binding dict; bindings where it returns
        ``False`` are not grounded (static inequality constraints etc.).
    cost:
        Either a constant float or a callable mapping the binding to a cost —
        this is how heterogeneous per-placement costs enter grid domains.
    """

    name: str
    parameters: tuple
    preconditions: tuple = ()
    add: tuple = ()
    delete: tuple = ()
    constraint: Optional[Callable[[Mapping[str, object]], bool]] = None
    cost: float | Callable[[Mapping[str, object]], float] = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", tuple(self.parameters))
        object.__setattr__(self, "preconditions", tuple(self.preconditions))
        object.__setattr__(self, "add", tuple(self.add))
        object.__setattr__(self, "delete", tuple(self.delete))
        seen = set()
        for var, _typ in self.parameters:
            if not is_variable(var):
                raise ValueError(f"schema {self.name!r}: parameter {var!r} must start with '?'")
            if var in seen:
                raise ValueError(f"schema {self.name!r}: duplicate parameter {var!r}")
            seen.add(var)

    def instantiate(self, binding: Mapping[str, object]) -> Operation:
        """Ground this schema with a complete binding."""
        args = [binding[var] for var, _ in self.parameters]
        cost = self.cost(binding) if callable(self.cost) else float(self.cost)
        return Operation(
            name=f"{self.name}({', '.join(str(a) for a in args)})",
            preconditions=frozenset(_substitute(t, binding) for t in self.preconditions),
            add=frozenset(_substitute(t, binding) for t in self.add),
            delete=frozenset(_substitute(t, binding) for t in self.delete),
            cost=cost,
        )


def ground_schema(
    schema: OperatorSchema, objects: Mapping[str, Sequence[object]]
) -> list:
    """All ground operations of *schema* over typed object universe *objects*."""
    domains = []
    for var, typ in schema.parameters:
        try:
            pool = objects[typ]
        except KeyError:
            raise ValueError(
                f"schema {schema.name!r}: no objects of type {typ!r} "
                f"(known types: {sorted(objects)})"
            ) from None
        domains.append([(var, obj) for obj in pool])
    ops = []
    for combo in itertools.product(*domains):
        binding = dict(combo)
        if schema.constraint is not None and not schema.constraint(binding):
            continue
        ops.append(schema.instantiate(binding))
    return ops


def ground_all(
    schemas: Iterable[OperatorSchema], objects: Mapping[str, Sequence[object]]
) -> list:
    """Ground every schema, preserving schema order then binding order."""
    out = []
    for schema in schemas:
        out.extend(ground_schema(schema, objects))
    return out
