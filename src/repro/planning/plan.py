"""Plans: finite sequences of operations, with validation and simulation.

A plan *solves* an instance of P iff every operation in it is valid when it
is reached and applying the sequence leads from the initial state to a state
satisfying every goal condition (paper, Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.planning.conditions import State, format_atom
from repro.planning.operation import Operation
from repro.planning.problem import PlanningProblem

__all__ = ["Plan", "SimulationResult", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of stepping a plan through a problem.

    Attributes
    ----------
    states:
        Visited states, ``len(plan) + 1`` entries when the plan is fully
        valid, fewer when execution stopped at an invalid operation.
    executed:
        Number of operations actually applied.
    invalid_index:
        Index of the first invalid operation, or ``None`` if all were valid.
    reaches_goal:
        Whether the final reached state satisfies the goal.
    first_goal_index:
        The smallest number of operations after which the goal held, or
        ``None`` if the goal was never reached along the trajectory.
    cost:
        Total cost of the executed prefix.
    """

    states: tuple
    executed: int
    invalid_index: Optional[int]
    reaches_goal: bool
    first_goal_index: Optional[int]
    cost: float

    @property
    def final_state(self) -> State:
        return self.states[-1]

    @property
    def is_valid(self) -> bool:
        return self.invalid_index is None

    @property
    def solves(self) -> bool:
        return self.is_valid and self.reaches_goal


@dataclass(frozen=True)
class Plan:
    """An immutable sequence of ground operations."""

    operations: tuple
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "operations", tuple(self.operations))

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __getitem__(self, i):
        return self.operations[i]

    @property
    def cost(self) -> float:
        return float(sum(op.cost for op in self.operations))

    def concat(self, other: "Plan") -> "Plan":
        """Concatenation — how the multi-phase GA assembles its final plan."""
        return Plan(self.operations + other.operations, name=self.name)

    def prefix(self, n: int) -> "Plan":
        return Plan(self.operations[:n], name=self.name)

    def simulate(self, problem: PlanningProblem, stop_at_invalid: bool = True) -> SimulationResult:
        return simulate(self, problem, stop_at_invalid=stop_at_invalid)

    def solves(self, problem: PlanningProblem) -> bool:
        """True iff this plan is valid and reaches the goal (paper's criterion)."""
        return self.simulate(problem).solves

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ; ".join(op.name for op in self.operations)


def simulate(plan: Plan, problem: PlanningProblem, stop_at_invalid: bool = True) -> SimulationResult:
    """Step *plan* through *problem* from its initial state.

    With ``stop_at_invalid=False``, invalid operations are skipped (the state
    "stays at the current state", as in the paper's preliminary
    direct-encoding match-fitness computation) instead of aborting.
    """
    state = problem.initial
    states = [state]
    invalid_index: Optional[int] = None
    first_goal: Optional[int] = 0 if problem.is_goal(state) else None
    executed = 0
    cost = 0.0
    for i, op in enumerate(plan.operations):
        if not op.applicable(state):
            if stop_at_invalid:
                invalid_index = i
                break
            if invalid_index is None:
                invalid_index = i
            continue
        state = op.apply_unchecked(state)
        states.append(state)
        executed += 1
        cost += op.cost
        if first_goal is None and problem.is_goal(state):
            first_goal = executed
    return SimulationResult(
        states=tuple(states),
        executed=executed,
        invalid_index=invalid_index,
        reaches_goal=problem.is_goal(state),
        first_goal_index=first_goal,
        cost=cost,
    )
