"""A PDDL-lite text frontend for STRIPS domains and problems.

Supports the classic STRIPS fragment of PDDL — typed parameters,
conjunctive preconditions with ``not`` only in effects, ``:action``
definitions — plus a non-standard ``:cost <number>`` slot per action.
Enough to express every bundled domain as text and to let downstream users
author new ones without writing Python.

Grammar (s-expressions)::

    (define (domain blocks)
      (:predicates (on ?x ?y) (ontable ?x) (clear ?x) (handempty) (holding ?x))
      (:action pickup
        :parameters (?b - block)
        :precondition (and (clear ?b) (ontable ?b) (handempty))
        :effect (and (holding ?b)
                     (not (clear ?b)) (not (ontable ?b)) (not (handempty)))
        :cost 1))

    (define (problem stack-two)
      (:domain blocks)
      (:objects a b - block)
      (:init (ontable a) (ontable b) (clear a) (clear b) (handempty))
      (:goal (and (on a b))))

Untyped parameters/objects fall into the pseudo-type ``object``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.planning.conditions import Atom
from repro.planning.grounding import OperatorSchema, ground_all
from repro.planning.problem import PlanningProblem

__all__ = ["parse_domain", "parse_problem", "load_problem", "PddlDomain", "PddlError"]


class PddlError(ValueError):
    """Raised on malformed PDDL-lite input."""


# -- tokenizer / s-expression reader ---------------------------------------------


def _tokenize(text: str) -> List[str]:
    out: List[str] = []
    token = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == ";":  # comment to end of line
            while i < len(text) and text[i] != "\n":
                i += 1
            continue
        if ch in "()":
            if token:
                out.append("".join(token))
                token = []
            out.append(ch)
        elif ch.isspace():
            if token:
                out.append("".join(token))
                token = []
        else:
            token.append(ch)
        i += 1
    if token:
        out.append("".join(token))
    return out


def _read(tokens: List[str], pos: int = 0):
    """Recursive-descent s-expression reader -> (tree, next_pos)."""
    if pos >= len(tokens):
        raise PddlError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _read(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise PddlError("unbalanced parentheses")
        return items, pos + 1
    if tok == ")":
        raise PddlError("unexpected ')'")
    return tok, pos + 1


def _parse_sexpr(text: str):
    tokens = _tokenize(text)
    tree, pos = _read(tokens)
    if pos != len(tokens):
        raise PddlError("trailing tokens after the top-level form")
    return tree


# -- domain ------------------------------------------------------------------------


@dataclass
class PddlDomain:
    """A parsed domain: name, declared predicates, and lifted schemas."""

    name: str
    predicates: Dict[str, int]  # name -> arity
    schemas: List[OperatorSchema]

    def ground(self, objects: Dict[str, Sequence[str]]) -> list:
        """All ground operations over a typed object universe.

        Bindings that repeat an object in a way that makes the ground
        effects self-contradictory (the same atom added and deleted, e.g.
        ``stack(a, a)``) are silently dropped — they can never appear in a
        meaningful plan and PDDL imposes no implicit inequality.
        """
        import itertools

        from repro.planning.grounding import ground_schema

        ops = []
        for schema in self.schemas:
            safe = OperatorSchema(
                name=schema.name,
                parameters=schema.parameters,
                preconditions=schema.preconditions,
                add=schema.add,
                delete=schema.delete,
                cost=schema.cost,
                constraint=_effects_consistent(schema),
            )
            ops.extend(ground_schema(safe, objects))
        return ops


def _effects_consistent(schema: OperatorSchema):
    """Binding filter: reject groundings whose add and delete lists overlap."""

    def ok(binding) -> bool:
        def subst(template):
            return tuple(binding.get(t, t) if isinstance(t, str) else t for t in template)

        added = {subst(t) for t in schema.add}
        deleted = {subst(t) for t in schema.delete}
        return not (added & deleted)

    return ok


def _typed_list(items: Sequence[str]) -> List[Tuple[str, str]]:
    """Parse ``a b - t1 c - t2 d`` into [(a, t1), (b, t1), (c, t2), (d, object)]."""
    out: List[Tuple[str, str]] = []
    pending: List[str] = []
    i = 0
    while i < len(items):
        tok = items[i]
        if tok == "-":
            if i + 1 >= len(items):
                raise PddlError("dangling '-' in typed list")
            typ = items[i + 1]
            out.extend((name, typ) for name in pending)
            pending = []
            i += 2
        else:
            pending.append(tok)
            i += 1
    out.extend((name, "object") for name in pending)
    return out


def _atom_from(tree) -> Atom:
    if not isinstance(tree, list) or not tree or not isinstance(tree[0], str):
        raise PddlError(f"expected an atom, got {tree!r}")
    return tuple(tree)


def _conjunction(tree) -> List:
    """``(and ...)`` or a single atom -> list of sub-trees."""
    if isinstance(tree, list) and tree and tree[0] == "and":
        return tree[1:]
    return [tree]


def _parse_action(tree) -> OperatorSchema:
    if tree[0] != ":action" or len(tree) < 2:
        raise PddlError(f"malformed action {tree!r}")
    name = tree[1]
    slots: Dict[str, object] = {}
    i = 2
    while i < len(tree):
        key = tree[i]
        if not isinstance(key, str) or not key.startswith(":"):
            raise PddlError(f"expected a :keyword in action {name!r}, got {key!r}")
        if i + 1 >= len(tree):
            raise PddlError(f"missing value for {key} in action {name!r}")
        slots[key] = tree[i + 1]
        i += 2

    params = _typed_list(slots.get(":parameters", []))
    for var, _typ in params:
        if not var.startswith("?"):
            raise PddlError(f"action {name!r}: parameter {var!r} must start with '?'")

    preconditions = []
    for sub in _conjunction(slots.get(":precondition", ["and"])):
        if isinstance(sub, list) and sub and sub[0] == "not":
            raise PddlError(
                f"action {name!r}: negative preconditions are not supported "
                "in the STRIPS fragment"
            )
        preconditions.append(_atom_from(sub))

    add, delete = [], []
    for sub in _conjunction(slots.get(":effect", ["and"])):
        if isinstance(sub, list) and sub and sub[0] == "not":
            if len(sub) != 2:
                raise PddlError(f"action {name!r}: malformed (not ...) effect")
            delete.append(_atom_from(sub[1]))
        else:
            add.append(_atom_from(sub))
    if not add and not delete:
        raise PddlError(f"action {name!r} has no effect")

    cost = 1.0
    if ":cost" in slots:
        try:
            cost = float(slots[":cost"])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise PddlError(f"action {name!r}: :cost must be a number") from None

    return OperatorSchema(
        name=name,
        parameters=tuple(params),
        preconditions=tuple(preconditions),
        add=tuple(add),
        delete=tuple(delete),
        cost=cost,
    )


def parse_domain(text: str) -> PddlDomain:
    """Parse a ``(define (domain ...) ...)`` form."""
    tree = _parse_sexpr(text)
    if not (isinstance(tree, list) and len(tree) >= 2 and tree[0] == "define"):
        raise PddlError("expected (define (domain ...) ...)")
    head = tree[1]
    if not (isinstance(head, list) and len(head) == 2 and head[0] == "domain"):
        raise PddlError("expected (domain <name>) after define")
    name = head[1]
    predicates: Dict[str, int] = {}
    schemas: List[OperatorSchema] = []
    for section in tree[2:]:
        if not isinstance(section, list) or not section:
            raise PddlError(f"malformed domain section {section!r}")
        if section[0] == ":predicates":
            for pred in section[1:]:
                p = _atom_from(pred)
                # Arity counts parameters only (typed markers stripped).
                args = [a for a in p[1:] if a != "-"]
                predicates[p[0]] = len(_typed_list(list(p[1:])))
        elif section[0] == ":action":
            schemas.append(_parse_action(section))
        elif section[0] == ":requirements":
            unsupported = [r for r in section[1:] if r not in (":strips", ":typing")]
            if unsupported:
                raise PddlError(f"unsupported requirements: {unsupported}")
        else:
            raise PddlError(f"unsupported domain section {section[0]!r}")
    if not schemas:
        raise PddlError(f"domain {name!r} declares no actions")
    return PddlDomain(name=name, predicates=predicates, schemas=schemas)


# -- problem ------------------------------------------------------------------------


def parse_problem(text: str, domain: PddlDomain) -> PlanningProblem:
    """Parse a ``(define (problem ...) ...)`` form against *domain*."""
    tree = _parse_sexpr(text)
    if not (isinstance(tree, list) and len(tree) >= 2 and tree[0] == "define"):
        raise PddlError("expected (define (problem ...) ...)")
    head = tree[1]
    if not (isinstance(head, list) and len(head) == 2 and head[0] == "problem"):
        raise PddlError("expected (problem <name>) after define")
    name = head[1]

    objects: Dict[str, List[str]] = {}
    initial: List[Atom] = []
    goal: List[Atom] = []
    domain_name: Optional[str] = None
    for section in tree[2:]:
        if not isinstance(section, list) or not section:
            raise PddlError(f"malformed problem section {section!r}")
        key = section[0]
        if key == ":domain":
            domain_name = section[1]
        elif key == ":objects":
            for obj, typ in _typed_list(section[1:]):
                objects.setdefault(typ, []).append(obj)
        elif key == ":init":
            initial = [_atom_from(a) for a in section[1:]]
        elif key == ":goal":
            if len(section) != 2:
                raise PddlError("goal must be a single (and ...) or atom")
            goal = [_atom_from(a) for a in _conjunction(section[1])]
        else:
            raise PddlError(f"unsupported problem section {key!r}")
    if domain_name is not None and domain_name != domain.name:
        raise PddlError(
            f"problem {name!r} targets domain {domain_name!r}, got {domain.name!r}"
        )

    # Untyped objects are also visible to untyped ("object") parameters.
    if "object" not in objects:
        objects["object"] = sorted({o for pool in objects.values() for o in pool})

    operations = domain.ground(objects)
    conditions = set(initial) | set(goal)
    for op in operations:
        conditions |= op.preconditions | op.add | op.delete
    return PlanningProblem(
        conditions=frozenset(conditions),
        operations=tuple(operations),
        initial=frozenset(initial),
        goal=frozenset(goal),
        name=name,
    )


def load_problem(domain_text: str, problem_text: str) -> PlanningProblem:
    """Convenience: parse domain + problem in one call."""
    return parse_problem(problem_text, parse_domain(domain_text))
