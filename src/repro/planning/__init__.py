"""STRIPS-like planning substrate: conditions, operations, problems, plans."""

from repro.planning.adapter import StripsDomainAdapter
from repro.planning.conditions import Atom, State, atom, format_atom, format_state, make_state, satisfies
from repro.planning.grounding import OperatorSchema, ground_all, ground_schema, is_variable
from repro.planning.operation import Operation
from repro.planning.pddl import PddlDomain, PddlError, load_problem, parse_domain, parse_problem
from repro.planning.reuse import ReuseResult, reuse_plan, valid_prefix
from repro.planning.plan import Plan, SimulationResult, simulate
from repro.planning.problem import PlanningProblem

__all__ = [
    "Atom", "State", "atom", "format_atom", "format_state", "make_state", "satisfies",
    "Operation", "OperatorSchema", "ground_all", "ground_schema", "is_variable",
    "PddlDomain", "PddlError", "Plan", "PlanningProblem", "ReuseResult",
    "SimulationResult", "StripsDomainAdapter", "load_problem", "parse_domain",
    "parse_problem", "reuse_plan", "simulate", "valid_prefix",
]
