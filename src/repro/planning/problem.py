"""The planning problem four-tuple P = (C, O, s0, g).

Matches the paper's Section 1 definition: a finite set of ground atomic
conditions ``C``, a finite set of operations ``O`` (each with preconditions,
postconditions, and a cost), an initial state ``s0`` and a goal state ``g``
(a set of conditions that must all hold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

from repro.planning.conditions import Atom, State, format_atom, make_state
from repro.planning.operation import Operation, check_operations

__all__ = ["PlanningProblem"]


@dataclass(frozen=True)
class PlanningProblem:
    """An instance of a STRIPS-like planning problem.

    Operations are stored in a fixed order; :meth:`valid_operations` preserves
    that order, which the GA's indirect encoding relies on (the gene→operation
    mapping must be deterministic for a given state).
    """

    conditions: frozenset
    operations: tuple
    initial: State
    goal: frozenset
    name: str = "problem"

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", frozenset(self.conditions))
        object.__setattr__(self, "operations", tuple(self.operations))
        object.__setattr__(self, "initial", make_state(self.initial))
        object.__setattr__(self, "goal", frozenset(self.goal))
        stray = self.initial - self.conditions
        if stray:
            raise ValueError(
                f"initial state contains atoms outside the condition universe: "
                f"{sorted(format_atom(a) for a in stray)}"
            )
        stray = self.goal - self.conditions
        if stray:
            raise ValueError(
                f"goal contains atoms outside the condition universe: "
                f"{sorted(format_atom(a) for a in stray)}"
            )
        check_operations(self.operations, self.conditions)
        names = [op.name for op in self.operations]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate operation names: {dupes}")

    @cached_property
    def operation_by_name(self) -> dict:
        return {op.name: op for op in self.operations}

    def valid_operations(self, state: State) -> list:
        """All operations applicable in *state*, in definition order."""
        return [op for op in self.operations if op.preconditions <= state]

    def is_goal(self, state: State) -> bool:
        """True iff *state* satisfies every goal condition."""
        return self.goal <= state

    def goal_satisfaction(self, state: State) -> float:
        """Fraction of goal conditions satisfied by *state* (1.0 at the goal)."""
        if not self.goal:
            return 1.0
        return len(self.goal & state) / len(self.goal)

    def successors(self, state: State) -> list:
        """``(operation, next_state)`` pairs for every valid operation."""
        return [(op, op.apply_unchecked(state)) for op in self.valid_operations(state)]

    def restarted_from(self, new_initial: Iterable[Atom]) -> "PlanningProblem":
        """The same problem with a different initial state.

        Used by the multi-phase GA, which threads the best solution's final
        state into the next phase, and by dynamic replanning, which restarts
        from the observed grid state.
        """
        return PlanningProblem(
            conditions=self.conditions,
            operations=self.operations,
            initial=make_state(new_initial),
            goal=self.goal,
            name=self.name,
        )

    def with_goal(self, new_goal: Iterable[Atom]) -> "PlanningProblem":
        """The same problem with a different goal (e.g. computation steering)."""
        return PlanningProblem(
            conditions=self.conditions,
            operations=self.operations,
            initial=self.initial,
            goal=frozenset(new_goal),
            name=self.name,
        )
