"""Ground atomic conditions and system states for STRIPS-like planning.

The paper defines a planning problem over "a finite set of ground atomic
conditions (elementary conditions instantiated by constants) used to define
the system state".  We represent an atom as a tuple whose first element is
the predicate name and whose remaining elements are constant arguments, e.g.
``("on", "d1", "d2")``.  A system state is the frozenset of atoms that hold.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Atom", "State", "atom", "make_state", "satisfies", "format_atom", "format_state"]

# An atom is a tuple: (predicate, arg1, arg2, ...).  Tuples are hashable,
# comparable, and cheap, which matters because states are built and hashed in
# the decoder's inner loop.
Atom = tuple
State = frozenset


def atom(predicate: str, *args: object) -> Atom:
    """Build a ground atom ``(predicate, *args)``.

    >>> atom("on", "d1", "d2")
    ('on', 'd1', 'd2')
    """
    if not isinstance(predicate, str) or not predicate:
        raise ValueError(f"predicate must be a non-empty string, got {predicate!r}")
    return (predicate, *args)


def make_state(atoms: Iterable[Atom]) -> State:
    """Build a state from an iterable of atoms."""
    s = frozenset(atoms)
    for a in s:
        if not isinstance(a, tuple) or not a:
            raise ValueError(f"state atoms must be non-empty tuples, got {a!r}")
    return s


def satisfies(state: State, conditions: Iterable[Atom]) -> bool:
    """True iff every atom in *conditions* holds in *state*."""
    return set(conditions) <= state


def format_atom(a: Atom) -> str:
    """Human-readable rendering, e.g. ``on(d1, d2)``."""
    head, *args = a
    if not args:
        return str(head)
    return f"{head}({', '.join(str(x) for x in args)})"


def format_state(state: State) -> str:
    """Deterministic (sorted) rendering of a state, for logs and tests."""
    return "{" + ", ".join(sorted(format_atom(a) for a in state)) + "}"
