"""Adapter exposing a STRIPS :class:`PlanningProblem` as a GA-plannable domain.

Any problem built from ground operations (hand-written or grounded from
schemas) becomes searchable by both the GA planner and the classical
baselines through this one class, so cross-validation between planners needs
no per-domain glue.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.protocol import PlanningDomain
from repro.planning.conditions import State
from repro.planning.operation import Operation
from repro.planning.plan import Plan
from repro.planning.problem import PlanningProblem

__all__ = ["StripsDomainAdapter"]


class StripsDomainAdapter(PlanningDomain):
    """Wraps a :class:`PlanningProblem` in the :class:`PlanningDomain` protocol.

    Parameters
    ----------
    problem:
        The STRIPS problem.
    goal_fitness_fn:
        Optional custom goal fitness ``f(problem, state) -> [0, 1]``; the
        default is the fraction of goal atoms satisfied.  Experiments in the
        paper use domain-tuned functions (weighted disks, Manhattan
        distance); this hook is where those plug in for STRIPS encodings.
    """

    def __init__(
        self,
        problem: PlanningProblem,
        goal_fitness_fn: Optional[Callable[[PlanningProblem, State], float]] = None,
    ) -> None:
        self.problem = problem
        self.name = problem.name
        self._goal_fitness_fn = goal_fitness_fn
        # Cache valid-op lists per state: grounded problems re-visit states
        # heavily during decoding and the applicability scan is O(|O|).
        self._valid_cache: dict = {}

    @property
    def initial_state(self) -> State:
        return self.problem.initial

    def valid_operations(self, state: State) -> Sequence[Operation]:
        ops = self._valid_cache.get(state)
        if ops is None:
            ops = self.problem.valid_operations(state)
            self._valid_cache[state] = ops
        return ops

    def apply(self, state: State, op: Operation) -> State:
        return op.apply_unchecked(state)

    def goal_fitness(self, state: State) -> float:
        if self._goal_fitness_fn is not None:
            value = float(self._goal_fitness_fn(self.problem, state))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"goal fitness {value} outside [0, 1]")
            return value
        return self.problem.goal_satisfaction(state)

    def is_goal(self, state: State) -> bool:
        return self.problem.is_goal(state)

    def operation_cost(self, op: Operation) -> float:
        return op.cost

    def state_key(self, state: State) -> Hashable:
        return state

    def to_plan(self, ops: Sequence[Operation], name: str = "plan") -> Plan:
        """Package an operation sequence as a :class:`Plan` for validation."""
        return Plan(tuple(ops), name=name)
