"""Local-search and randomized planners: HSP-style hill climbing, greedy
best-first (HSP2-style), and a Stocplan-like randomized planner.

Bonet & Geffner's HSP is a forward hill-climbing planner and HSP2 a
best-first planner, both driving on heuristic estimates; Jonsson et al.'s
Stocplan shows randomized plan construction is competitive under restricted
conditions.  These are the paper's non-GA stochastic/heuristic comparison
points.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

import numpy as np

from repro.protocol import PlanningDomain
from repro.planning.search.classical import SearchResult, astar

__all__ = ["hill_climbing", "greedy_best_first", "random_walk_planner"]

Heuristic = Callable[[object], float]


def hill_climbing(
    domain: PlanningDomain,
    heuristic: Heuristic,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    max_steps: int = 10_000,
    max_restarts: int = 20,
    plateau_patience: int = 100,
) -> SearchResult:
    """HSP-style forward hill climbing with random restarts.

    From the current state, move to the best-scoring successor (ties broken
    randomly); sideways moves are allowed for up to *plateau_patience*
    consecutive steps, after which the search restarts from the initial
    state.  Inadmissible heuristics are fine — completeness comes from the
    restarts, not the heuristic.
    """
    t0 = time.perf_counter()
    root = start_state if start_state is not None else domain.initial_state
    expanded = generated = 0
    best_plan: Optional[tuple] = None

    for _restart in range(max_restarts):
        state = root
        plan: list = []
        h_here = heuristic(state)
        plateau = 0
        visited = {domain.state_key(state)}
        while len(plan) < max_steps:
            if domain.is_goal(state):
                best_plan = tuple(plan)
                return SearchResult(
                    best_plan,
                    domain.plan_cost(best_plan),
                    expanded,
                    generated,
                    False,
                    time.perf_counter() - t0,
                )
            expanded += 1
            candidates = []
            for op in domain.valid_operations(state):
                nxt = domain.apply(state, op)
                nkey = domain.state_key(nxt)
                generated += 1
                if nkey in visited:
                    continue
                candidates.append((heuristic(nxt), op, nxt, nkey))
            if not candidates:
                break  # dead end: restart
            best_h = min(c[0] for c in candidates)
            pool = [c for c in candidates if c[0] <= best_h + 1e-12]
            _h, op, state, nkey = pool[int(rng.integers(0, len(pool)))]
            visited.add(nkey)
            plan.append(op)
            if best_h >= h_here - 1e-12:
                plateau += 1
                if plateau > plateau_patience:
                    break  # stuck on a plateau: restart
            else:
                plateau = 0
            h_here = best_h
    return SearchResult(None, math.inf, expanded, generated, False, time.perf_counter() - t0)


def greedy_best_first(
    domain: PlanningDomain,
    heuristic: Heuristic,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """HSP2-style best-first search: expand by ``h`` alone (f = h).

    Implemented as weighted A* in the limit — we pass a large weight so the
    g-term only breaks ties toward shorter plans.
    """
    return astar(
        domain,
        heuristic=heuristic,
        start_state=start_state,
        max_expansions=max_expansions,
        weight=1e6,
    )


def random_walk_planner(
    domain: PlanningDomain,
    rng: np.random.Generator,
    start_state: Optional[object] = None,
    walk_length: int = 1_000,
    max_walks: int = 100,
    greedy_bias: float = 0.0,
    heuristic: Optional[Heuristic] = None,
) -> SearchResult:
    """Stocplan-flavoured randomized planning: repeated bounded random walks.

    Each walk takes up to *walk_length* uniformly random valid operations;
    with probability *greedy_bias* a step instead follows the best
    *heuristic* successor (pure Stocplan uses bias 0).  Polynomial time and
    space per walk; success is probabilistic, exactly the trade the paper's
    related-work section describes.
    """
    if not 0.0 <= greedy_bias <= 1.0:
        raise ValueError(f"greedy_bias must be in [0, 1], got {greedy_bias}")
    if greedy_bias > 0.0 and heuristic is None:
        raise ValueError("greedy_bias > 0 requires a heuristic")
    t0 = time.perf_counter()
    root = start_state if start_state is not None else domain.initial_state
    expanded = generated = 0
    for _walk in range(max_walks):
        state = root
        plan: list = []
        for _ in range(walk_length):
            if domain.is_goal(state):
                p = tuple(plan)
                return SearchResult(
                    p, domain.plan_cost(p), expanded, generated, False, time.perf_counter() - t0
                )
            ops = list(domain.valid_operations(state))
            if not ops:
                break
            expanded += 1
            generated += len(ops)
            if greedy_bias > 0.0 and rng.random() < greedy_bias:
                scored = [(heuristic(domain.apply(state, op)), i) for i, op in enumerate(ops)]
                best = min(scored)[1]
                op = ops[best]
            else:
                op = ops[int(rng.integers(0, len(ops)))]
            plan.append(op)
            state = domain.apply(state, op)
        if domain.is_goal(state):
            p = tuple(plan)
            return SearchResult(
                p, domain.plan_cost(p), expanded, generated, False, time.perf_counter() - t0
            )
    return SearchResult(None, math.inf, expanded, generated, False, time.perf_counter() - t0)
