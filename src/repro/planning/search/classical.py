"""Classical deterministic planners: BFS, uniform-cost, A*, weighted A*, IDA*.

These are the "general search strategies" and "forward-chaining" baselines
the paper contrasts with (Section 1: they "perform well only on small
problems with a very limited search space").  All operate on the
:class:`PlanningDomain` protocol, so the exact same domain instance the GA
plans over can be searched exhaustively — that is how tests cross-validate
GA plans against known optima.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.protocol import PlanningDomain

__all__ = ["SearchResult", "breadth_first_search", "uniform_cost_search", "astar", "weighted_astar", "idastar"]

Heuristic = Callable[[object], float]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search run.

    ``plan`` is ``None`` when the search failed (exhausted, or hit its
    expansion budget — distinguished by ``exhausted``).
    """

    plan: Optional[tuple]
    cost: float
    expanded: int
    generated: int
    exhausted: bool
    elapsed_seconds: float

    @property
    def solved(self) -> bool:
        return self.plan is not None

    @property
    def plan_length(self) -> int:
        return 0 if self.plan is None else len(self.plan)


def _reconstruct(parents: dict, key) -> tuple:
    ops = []
    while True:
        entry = parents[key]
        if entry is None:
            break
        key, op = entry
        ops.append(op)
    ops.reverse()
    return tuple(ops)


def breadth_first_search(
    domain: PlanningDomain,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Plain BFS; optimal for unit-cost domains."""
    t0 = time.perf_counter()
    state = start_state if start_state is not None else domain.initial_state
    key = domain.state_key(state)
    if domain.is_goal(state):
        return SearchResult((), 0.0, 0, 1, False, time.perf_counter() - t0)
    frontier = deque([(state, key)])
    parents = {key: None}
    expanded = generated = 0
    while frontier:
        if expanded >= max_expansions:
            return SearchResult(None, math.inf, expanded, generated, False, time.perf_counter() - t0)
        state, key = frontier.popleft()
        expanded += 1
        for op in domain.valid_operations(state):
            nxt = domain.apply(state, op)
            nkey = domain.state_key(nxt)
            if nkey in parents:
                continue
            parents[nkey] = (key, op)
            generated += 1
            if domain.is_goal(nxt):
                plan = _reconstruct(parents, nkey)
                return SearchResult(
                    plan, domain.plan_cost(plan), expanded, generated, False, time.perf_counter() - t0
                )
            frontier.append((nxt, nkey))
    return SearchResult(None, math.inf, expanded, generated, True, time.perf_counter() - t0)


def astar(
    domain: PlanningDomain,
    heuristic: Optional[Heuristic] = None,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
    weight: float = 1.0,
) -> SearchResult:
    """A* (or weighted A* for ``weight > 1``) over the domain protocol.

    Optimal when the heuristic is admissible and ``weight == 1``.
    """
    if weight < 1.0:
        raise ValueError(f"weight must be >= 1, got {weight}")
    t0 = time.perf_counter()
    h = heuristic or (lambda s: 0.0)
    state = start_state if start_state is not None else domain.initial_state
    key = domain.state_key(state)
    counter = itertools.count()  # FIFO tie-break keeps the queue stable
    open_heap = [(weight * h(state), next(counter), state, key)]
    g_cost = {key: 0.0}
    parents = {key: None}
    closed = set()
    expanded = generated = 0
    while open_heap:
        if expanded >= max_expansions:
            return SearchResult(None, math.inf, expanded, generated, False, time.perf_counter() - t0)
        _f, _, state, key = heapq.heappop(open_heap)
        if key in closed:
            continue
        if domain.is_goal(state):
            plan = _reconstruct(parents, key)
            return SearchResult(
                plan, g_cost[key], expanded, generated, False, time.perf_counter() - t0
            )
        closed.add(key)
        expanded += 1
        g = g_cost[key]
        for op in domain.valid_operations(state):
            nxt = domain.apply(state, op)
            nkey = domain.state_key(nxt)
            ng = g + domain.operation_cost(op)
            if nkey in closed or ng >= g_cost.get(nkey, math.inf):
                continue
            g_cost[nkey] = ng
            parents[nkey] = (key, op)
            generated += 1
            hv = h(nxt)
            if hv == math.inf:
                continue
            heapq.heappush(open_heap, (ng + weight * hv, next(counter), nxt, nkey))
    return SearchResult(None, math.inf, expanded, generated, True, time.perf_counter() - t0)


def uniform_cost_search(
    domain: PlanningDomain,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Dijkstra over the state space (A* with h ≡ 0)."""
    return astar(domain, heuristic=None, start_state=start_state, max_expansions=max_expansions)


def weighted_astar(
    domain: PlanningDomain,
    heuristic: Heuristic,
    weight: float = 2.0,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Weighted A*: ``f = g + w·h`` — bounded-suboptimal, far fewer expansions."""
    return astar(
        domain,
        heuristic=heuristic,
        start_state=start_state,
        max_expansions=max_expansions,
        weight=weight,
    )


def idastar(
    domain: PlanningDomain,
    heuristic: Heuristic,
    start_state: Optional[object] = None,
    max_expansions: int = 5_000_000,
) -> SearchResult:
    """Iterative-deepening A* (Korf) — linear memory, for puzzle domains."""
    t0 = time.perf_counter()
    root = start_state if start_state is not None else domain.initial_state
    bound = heuristic(root)
    expanded = 0
    generated = 0
    path_keys = {domain.state_key(root)}

    def dfs(state, g: float, bound: float, ops: list):
        nonlocal expanded, generated
        f = g + heuristic(state)
        if f > bound + 1e-12:
            return f, None
        if domain.is_goal(state):
            return f, tuple(ops)
        if expanded >= max_expansions:
            return math.inf, None
        expanded += 1
        minimum = math.inf
        for op in domain.valid_operations(state):
            nxt = domain.apply(state, op)
            nkey = domain.state_key(nxt)
            if nkey in path_keys:
                continue  # avoid cycles along the current path
            generated += 1
            path_keys.add(nkey)
            ops.append(op)
            t, plan = dfs(nxt, g + domain.operation_cost(op), bound, ops)
            ops.pop()
            path_keys.discard(nkey)
            if plan is not None:
                return t, plan
            minimum = min(minimum, t)
        return minimum, None

    while True:
        t, plan = dfs(root, 0.0, bound, [])
        if plan is not None:
            return SearchResult(
                plan, domain.plan_cost(plan), expanded, generated, False, time.perf_counter() - t0
            )
        if t == math.inf:
            exhausted = expanded < max_expansions
            return SearchResult(None, math.inf, expanded, generated, exhausted, time.perf_counter() - t0)
        bound = t
