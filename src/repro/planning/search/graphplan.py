"""Graphplan (Blum & Furst 1997) over propositional STRIPS problems.

Builds the layered planning graph — alternating proposition and action
levels with binary mutex relations — then extracts a parallel plan by
levelled backward search with memoised failure sets.  The returned plan is
serialised (actions within a level in arbitrary order: they are pairwise
non-mutex, so any order is valid).

This is the strongest deterministic baseline the paper cites ("Graphplan
outperforms other general planning algorithms in some problem domains").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.planning.conditions import Atom, State
from repro.planning.operation import Operation
from repro.planning.problem import PlanningProblem
from repro.planning.search.classical import SearchResult

__all__ = ["graphplan", "PlanningGraph"]


@dataclass
class _Level:
    """One action level and the proposition level it produces."""

    actions: List[Operation]
    action_mutex: Set[Tuple[int, int]]  # indices into ``actions``
    props: List[Atom]
    prop_index: Dict[Atom, int]
    prop_mutex: Set[Tuple[int, int]]  # indices into ``props``
    achievers: Dict[Atom, List[int]]  # prop -> action indices that add it


def _noop(prop: Atom) -> Operation:
    """Maintenance (frame) action: carries *prop* forward one level."""
    return Operation(
        name=f"__noop__{prop!r}",
        preconditions=frozenset([prop]),
        add=frozenset([prop]),
        delete=frozenset(),
        cost=0.0,
    )


def _pair(i: int, j: int) -> Tuple[int, int]:
    return (i, j) if i < j else (j, i)


class PlanningGraph:
    """The layered graph; grown one level at a time by :meth:`expand`."""

    def __init__(self, problem: PlanningProblem) -> None:
        self.problem = problem
        props = sorted(problem.initial, key=repr)  # deterministic ordering
        self.levels: List[_Level] = [
            _Level(
                actions=[],
                action_mutex=set(),
                props=props,
                prop_index={p: i for i, p in enumerate(props)},
                prop_mutex=set(),
                achievers={},
            )
        ]

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def _interfere(self, a: Operation, b: Operation) -> bool:
        """Static interference: one deletes a precondition or add of the other."""
        if a.delete & (b.preconditions | b.add):
            return True
        if b.delete & (a.preconditions | a.add):
            return True
        return False

    def expand(self) -> None:
        """Add one action level + the following proposition level."""
        prev = self.levels[-1]
        prev_props = set(prev.props)
        # Applicable actions: preconditions present and pairwise non-mutex.
        actions: List[Operation] = []
        for op in self.problem.operations:
            if not op.preconditions <= prev_props:
                continue
            if self._pre_mutex(prev, op.preconditions):
                continue
            actions.append(op)
        for p in prev.props:
            actions.append(_noop(p))

        # Action mutexes: interference, or competing needs (mutex precs).
        action_mutex: Set[Tuple[int, int]] = set()
        for i in range(len(actions)):
            for j in range(i + 1, len(actions)):
                a, b = actions[i], actions[j]
                if self._interfere(a, b) or self._precs_mutex(prev, a, b):
                    action_mutex.add((i, j))

        # Next proposition level.
        achievers: Dict[Atom, List[int]] = {}
        for idx, a in enumerate(actions):
            for p in a.add:
                achievers.setdefault(p, []).append(idx)
        props = sorted(achievers, key=repr)
        prop_index = {p: i for i, p in enumerate(props)}

        # Proposition mutexes: every pair of achievers is mutex.
        prop_mutex: Set[Tuple[int, int]] = set()
        for i in range(len(props)):
            for j in range(i + 1, len(props)):
                ach_i = achievers[props[i]]
                ach_j = achievers[props[j]]
                all_mutex = True
                for ai in ach_i:
                    for aj in ach_j:
                        if ai == aj or _pair(ai, aj) not in action_mutex:
                            all_mutex = False
                            break
                    if not all_mutex:
                        break
                if all_mutex:
                    prop_mutex.add((i, j))

        self.levels.append(
            _Level(
                actions=actions,
                action_mutex=action_mutex,
                props=props,
                prop_index=prop_index,
                prop_mutex=prop_mutex,
                achievers=achievers,
            )
        )

    def _pre_mutex(self, level: _Level, preconditions: FrozenSet[Atom]) -> bool:
        pres = sorted(preconditions, key=repr)
        for i in range(len(pres)):
            for j in range(i + 1, len(pres)):
                pi = level.prop_index.get(pres[i])
                pj = level.prop_index.get(pres[j])
                if pi is None or pj is None:
                    return True
                if _pair(pi, pj) in level.prop_mutex:
                    return True
        return False

    def _precs_mutex(self, prev: _Level, a: Operation, b: Operation) -> bool:
        for pa in a.preconditions:
            ia = prev.prop_index.get(pa)
            for pb in b.preconditions:
                ib = prev.prop_index.get(pb)
                if ia is not None and ib is not None and ia != ib:
                    if _pair(ia, ib) in prev.prop_mutex:
                        return True
        return False

    def goals_reachable(self) -> bool:
        last = self.levels[-1]
        goal = sorted(self.problem.goal, key=repr)
        for g in goal:
            if g not in last.prop_index:
                return False
        for i in range(len(goal)):
            for j in range(i + 1, len(goal)):
                gi, gj = last.prop_index[goal[i]], last.prop_index[goal[j]]
                if _pair(gi, gj) in last.prop_mutex:
                    return False
        return True

    def levelled_off(self) -> bool:
        """Fixpoint test: two identical consecutive proposition levels."""
        if len(self.levels) < 2:
            return False
        a, b = self.levels[-2], self.levels[-1]
        return a.props == b.props and a.prop_mutex == b.prop_mutex


def _extract(
    graph: PlanningGraph,
    goals: FrozenSet[Atom],
    level: int,
    nogood: Dict[int, Set[FrozenSet[Atom]]],
) -> Optional[List[List[Operation]]]:
    """Backward plan extraction with memoised unsatisfiable goal sets."""
    if level == 0:
        return [] if goals <= set(graph.levels[0].props) else None
    if goals in nogood.setdefault(level, set()):
        return None
    lvl = graph.levels[level]

    goal_list = sorted(goals, key=repr)

    def choose(i: int, chosen: List[int], achieved: Set[Atom]):
        if i == len(goal_list):
            subgoals = frozenset().union(*(lvl.actions[a].preconditions for a in chosen)) if chosen else frozenset()
            rest = _extract(graph, frozenset(subgoals), level - 1, nogood)
            if rest is None:
                return None
            step = [lvl.actions[a] for a in chosen if not lvl.actions[a].name.startswith("__noop__")]
            return rest + [step]
        g = goal_list[i]
        if g in achieved:
            return choose(i + 1, chosen, achieved)
        for a in lvl.achievers.get(g, ()):
            if any(_pair(a, c) in lvl.action_mutex for c in chosen if c != a):
                continue
            result = choose(i + 1, chosen + [a], achieved | set(lvl.actions[a].add))
            if result is not None:
                return result
        return None

    result = choose(0, [], set())
    if result is None:
        nogood[level].add(goals)
    return result


def graphplan(
    problem: PlanningProblem,
    max_levels: int = 50,
) -> SearchResult:
    """Run Graphplan; returns a serialised plan in a :class:`SearchResult`.

    ``expanded`` counts graph levels built; ``generated`` counts actions
    instantiated across all levels.
    """
    t0 = time.perf_counter()
    graph = PlanningGraph(problem)
    nogood: Dict[int, Set[FrozenSet[Atom]]] = {}
    levels_built = 0
    prev_nogood_at_leveloff: Optional[int] = None
    while True:
        if graph.goals_reachable():
            steps = _extract(graph, frozenset(problem.goal), graph.n_levels - 1, nogood)
            if steps is not None:
                plan = tuple(op for step in steps for op in step)
                generated = sum(len(l.actions) for l in graph.levels)
                return SearchResult(
                    plan,
                    float(sum(op.cost for op in plan)),
                    levels_built,
                    generated,
                    False,
                    time.perf_counter() - t0,
                )
        if graph.levelled_off():
            # Standard termination (Blum & Furst): the graph has levelled off
            # AND the memoised-failure table at the last level has stopped
            # growing between consecutive extraction attempts.
            n_nogood = len(nogood.get(graph.n_levels - 1, ()))
            if prev_nogood_at_leveloff is not None and n_nogood == prev_nogood_at_leveloff:
                generated = sum(len(l.actions) for l in graph.levels)
                return SearchResult(
                    None, math.inf, levels_built, generated, True, time.perf_counter() - t0
                )
            prev_nogood_at_leveloff = n_nogood
        if graph.n_levels > max_levels:
            generated = sum(len(l.actions) for l in graph.levels)
            return SearchResult(None, math.inf, levels_built, generated, False, time.perf_counter() - t0)
        graph.expand()
        levels_built += 1
