"""Resumable best-first search: classical search in tick-sized slices.

The classical planners in :mod:`repro.planning.search.classical` run to
completion inside one call, which makes them unusable as *racing islands*
in the portfolio engine (DESIGN.md §14): an island must advance a bounded
amount of work per tick, yield control so the driver can check the shared
stop token and migrate GA islands, then resume from exactly where it left
off.  :class:`ResumableSearch` keeps the frontier, cost map and parent
pointers as instance state and exposes :meth:`step`, which performs at most
``budget`` node expansions per call.

One class covers the whole best-first family by parameterising the
priority: A* (``f = g + h``), weighted A* (``f = g + w·h``), greedy
best-first (``f = h``) and uniform-cost / Dijkstra (``h ≡ 0``).  Expansion
order is deterministic: the open heap breaks ties FIFO via a monotone
counter, exactly like :func:`repro.planning.search.classical.astar`, so a
resumable run expands the same nodes in the same order as the one-shot
version regardless of how the budget is sliced.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

from repro.planning.search.heuristics import goal_gap
from repro.protocol import PlanningDomain

__all__ = ["SEARCH_ALGORITHMS", "ResumableSearch", "make_resumable_search"]

#: Algorithm names accepted by :func:`make_resumable_search` (and by
#: ``StrategySpec(kind="search", algorithm=...)`` in the portfolio spec).
SEARCH_ALGORITHMS = ("astar", "wastar", "gbfs", "ucs")

Heuristic = Callable[[object], float]


class ResumableSearch:
    """Best-first search over a :class:`PlanningDomain`, advanced in slices.

    Parameters
    ----------
    domain:
        The planning domain to search.
    heuristic:
        State-value estimate; ``None`` means ``h ≡ 0`` (uniform-cost).
    weight:
        Heuristic weight ``w`` in ``f = g + w·h``.  Must be >= 0; ``0``
        reduces to uniform-cost regardless of the heuristic.
    greedy:
        Order the frontier by ``h`` alone (greedy best-first).  ``g`` is
        still tracked so the reported plan cost is exact.
    start_state:
        Where to search from; defaults to ``domain.initial_state``.
    max_expansions:
        Hard budget across all :meth:`step` calls; the search reports
        itself done (unsolved) once it is exceeded.
    """

    def __init__(
        self,
        domain: PlanningDomain,
        heuristic: Optional[Heuristic] = None,
        *,
        weight: float = 1.0,
        greedy: bool = False,
        start_state: Optional[object] = None,
        max_expansions: int = 1_000_000,
    ) -> None:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        if max_expansions < 1:
            raise ValueError(f"max_expansions must be >= 1, got {max_expansions}")
        self.domain = domain
        self.h: Heuristic = heuristic or (lambda s: 0.0)
        self.weight = weight
        self.greedy = greedy
        self.max_expansions = max_expansions
        self.expanded = 0
        self.generated = 0
        self.exhausted = False
        self.plan: Optional[tuple] = None
        self.cost = math.inf
        state = start_state if start_state is not None else domain.initial_state
        key = domain.state_key(state)
        self._counter = itertools.count()  # FIFO tie-break keeps the heap stable
        self._open = [(self._priority(0.0, state), next(self._counter), state, key)]
        self._g = {key: 0.0}
        self._parents: dict = {key: None}
        self._closed: set = set()
        if domain.is_goal(state):
            self.plan = ()
            self.cost = 0.0

    def _priority(self, g: float, state) -> float:
        hv = self.h(state)
        return hv if self.greedy else g + self.weight * hv

    @property
    def solved(self) -> bool:
        """True once a plan to the goal has been found."""
        return self.plan is not None

    @property
    def done(self) -> bool:
        """True when no further :meth:`step` call can change the outcome."""
        return (
            self.solved
            or self.exhausted
            or not self._open
            or self.expanded >= self.max_expansions
        )

    def _reconstruct(self, key) -> tuple:
        ops = []
        while True:
            entry = self._parents[key]
            if entry is None:
                break
            key, op = entry
            ops.append(op)
        ops.reverse()
        return tuple(ops)

    def step(self, budget: int) -> Optional[tuple]:
        """Expand up to *budget* nodes; return the plan if the goal is hit.

        Returns ``None`` while the search is still inconclusive.  Calling
        :meth:`step` after :attr:`done` is a no-op returning the plan (or
        ``None`` when the space was exhausted / the budget ran out).
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        domain = self.domain
        spent = 0
        while self._open and spent < budget:
            if self.solved or self.expanded >= self.max_expansions:
                break
            _f, _, state, key = heapq.heappop(self._open)
            if key in self._closed:
                continue
            if domain.is_goal(state):
                self.plan = self._reconstruct(key)
                self.cost = self._g[key]
                break
            self._closed.add(key)
            self.expanded += 1
            spent += 1
            g = self._g[key]
            for op in domain.valid_operations(state):
                nxt = domain.apply(state, op)
                nkey = domain.state_key(nxt)
                ng = g + domain.operation_cost(op)
                if nkey in self._closed or ng >= self._g.get(nkey, math.inf):
                    continue
                self._g[nkey] = ng
                self._parents[nkey] = (key, op)
                self.generated += 1
                prio = self._priority(ng, nxt)
                if prio == math.inf:
                    continue
                heapq.heappush(self._open, (prio, next(self._counter), nxt, nkey))
        if not self._open and not self.solved:
            self.exhausted = True
        return self.plan


def make_resumable_search(
    domain: PlanningDomain,
    algorithm: str = "gbfs",
    *,
    weight: float = 2.0,
    heuristic_scale: float = 1.0,
    start_state: Optional[object] = None,
    max_expansions: int = 1_000_000,
) -> ResumableSearch:
    """Build a :class:`ResumableSearch` from an algorithm name.

    ``algorithm`` is one of :data:`SEARCH_ALGORITHMS`: ``"astar"`` (A*,
    w=1), ``"wastar"`` (weighted A* with *weight*), ``"gbfs"`` (greedy
    best-first) or ``"ucs"`` (uniform-cost, no heuristic).  All but
    ``"ucs"`` use :func:`repro.planning.search.heuristics.goal_gap` scaled
    by *heuristic_scale*, which works on any :class:`PlanningDomain` — the
    same goal-distance signal the GA's fitness rewards.
    """
    if algorithm not in SEARCH_ALGORITHMS:
        raise ValueError(f"algorithm must be one of {SEARCH_ALGORITHMS}, got {algorithm!r}")
    h = None if algorithm == "ucs" else goal_gap(domain, scale=heuristic_scale)
    if algorithm == "astar":
        w, greedy = 1.0, False
    elif algorithm == "wastar":
        w, greedy = weight, False
    elif algorithm == "gbfs":
        w, greedy = 1.0, True
    else:  # ucs
        w, greedy = 0.0, False
    return ResumableSearch(
        domain,
        heuristic=h,
        weight=w,
        greedy=greedy,
        start_state=start_state,
        max_expansions=max_expansions,
    )
