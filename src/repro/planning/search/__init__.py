"""Baseline planners: classical, local/randomized, and Graphplan."""

from repro.planning.search.classical import (
    SearchResult,
    astar,
    breadth_first_search,
    idastar,
    uniform_cost_search,
    weighted_astar,
)
from repro.planning.search.graphplan import PlanningGraph, graphplan
from repro.planning.search.heuristics import (
    goal_count,
    goal_gap,
    make_h_add,
    make_h_max,
    zero_heuristic,
)
from repro.planning.search.local import greedy_best_first, hill_climbing, random_walk_planner
from repro.planning.search.resumable import (
    SEARCH_ALGORITHMS,
    ResumableSearch,
    make_resumable_search,
)

__all__ = [
    "PlanningGraph", "ResumableSearch", "SEARCH_ALGORITHMS", "SearchResult", "astar",
    "breadth_first_search", "goal_count", "goal_gap", "graphplan", "greedy_best_first",
    "hill_climbing", "idastar", "make_h_add", "make_h_max", "make_resumable_search",
    "random_walk_planner", "uniform_cost_search", "weighted_astar", "zero_heuristic",
]
