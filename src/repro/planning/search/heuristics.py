"""Heuristic functions for the classical baseline planners.

Two families:

- **Domain-protocol heuristics** work on any :class:`PlanningDomain` via its
  goal fitness: ``goal_gap(domain)`` turns ``1 - goal_fitness`` into an
  (inadmissible, but informative) heuristic — the same signal the GA's goal
  fitness provides, which makes GA-vs-heuristic-search comparisons apples to
  apples.

- **STRIPS heuristics** exploit add/delete structure on a
  :class:`PlanningProblem`: the goal-count heuristic, and the classic
  delete-relaxation estimates ``h_max`` (admissible) and ``h_add``
  (inadmissible; the HSP planner's heuristic, Bonet & Geffner 2001).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, Hashable

from repro.protocol import PlanningDomain
from repro.planning.conditions import Atom, State
from repro.planning.problem import PlanningProblem

__all__ = ["goal_gap", "goal_count", "make_h_add", "make_h_max", "zero_heuristic"]

Heuristic = Callable[[object], float]


def zero_heuristic(state: object) -> float:
    """h ≡ 0: turns A* into uniform-cost search."""
    return 0.0


def goal_gap(domain: PlanningDomain, scale: float = 1.0) -> Heuristic:
    """``scale * (1 - goal_fitness(state))`` — the GA's own goal signal.

    Not admissible in general; pick *scale* ≈ the typical plan length for a
    usefully weighted greedy/WA* search.
    """

    def h(state: object) -> float:
        return scale * (1.0 - float(domain.goal_fitness(state)))

    return h


def goal_count(problem: PlanningProblem) -> Heuristic:
    """Number of unsatisfied goal atoms (admissible only for unit add-lists)."""
    goal = problem.goal

    def h(state: State) -> float:
        return float(len(goal - state))

    return h


def _relaxed_costs(problem: PlanningProblem, state: State, combine) -> Dict[Atom, float]:
    """Generalised delete-relaxation fixpoint via a Dijkstra-style sweep.

    *combine* aggregates precondition costs: ``sum`` gives h_add, ``max``
    gives h_max.  Returns cost-to-achieve for every reachable atom.
    """
    cost: Dict[Atom, float] = {a: 0.0 for a in state}
    # For each operation, how many of its preconditions remain unachieved.
    remaining = {}
    by_pre: Dict[Atom, list] = {}
    # Heap entries carry a counter so mixed-type atoms are never compared.
    counter = itertools.count()
    queue: list = [(0.0, next(counter), a) for a in state]
    heapq.heapify(queue)
    for op in problem.operations:
        remaining[op] = len(op.preconditions)
        for p in op.preconditions:
            by_pre.setdefault(p, []).append(op)
    done = set()

    def op_cost(op) -> float:
        pres = [cost[p] for p in op.preconditions]
        base = combine(pres) if pres else 0.0
        return base + op.cost

    # Operations with no preconditions fire immediately.
    for op in problem.operations:
        if remaining[op] == 0:
            c = op_cost(op)
            for a in op.add:
                if c < cost.get(a, math.inf):
                    cost[a] = c
                    heapq.heappush(queue, (c, next(counter), a))

    while queue:
        c, _, atom_ = heapq.heappop(queue)
        if atom_ in done or c > cost.get(atom_, math.inf):
            continue
        done.add(atom_)
        for op in by_pre.get(atom_, ()):
            remaining[op] -= 1
            if remaining[op] == 0:
                oc = op_cost(op)
                for a in op.add:
                    if oc < cost.get(a, math.inf):
                        cost[a] = oc
                        heapq.heappush(queue, (oc, next(counter), a))
    return cost


def make_h_add(problem: PlanningProblem) -> Heuristic:
    """HSP's additive heuristic: sum of relaxed atom costs over the goal.

    Assumes subgoal independence, so it can overestimate (inadmissible) but
    is highly informative — "the function is admissible and never
    overestimates" in the paper's related-work summary refers to h_max-style
    bounds; h_add trades admissibility for guidance.
    """

    def h(state: State) -> float:
        costs = _relaxed_costs(problem, state, sum)
        total = 0.0
        for g in problem.goal:
            c = costs.get(g)
            if c is None:
                return math.inf
            total += c
        return total

    return h


def make_h_max(problem: PlanningProblem) -> Heuristic:
    """The admissible max-relaxation heuristic: max relaxed goal-atom cost."""

    def h(state: State) -> float:
        costs = _relaxed_costs(problem, state, max)
        worst = 0.0
        for g in problem.goal:
            c = costs.get(g)
            if c is None:
                return math.inf
            worst = max(worst, c)
        return worst

    return h
