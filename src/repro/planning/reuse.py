"""Plan reuse: adapt an existing plan to a changed problem (paper §2).

Nebel & Koehler (1995) showed plan reuse is not cheaper than planning from
scratch in the worst case, but pays off "when the new planning problem is
sufficiently close to the old one".  This module implements the two-step
scheme their analysis assumes:

1. **Plan matching** — find the longest prefix of the old plan that is
   still valid in the new problem, then the suffix position whose simulated
   state is closest (by goal fitness) to the new goal.
2. **Plan modification** — keep the valid prefix, discard the rest, and
   replan from the prefix's end state with any planner (the GA, a
   classical baseline, ...), concatenating the repair onto the prefix.

Works over the :class:`PlanningDomain` protocol, so the same machinery
repairs puzzle plans and grid workflows — the latter is what dynamic
replanning on resource change amounts to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.protocol import PlanningDomain

__all__ = ["ReuseResult", "reuse_plan", "valid_prefix"]

#: A planner over the domain protocol: (domain, start_state) -> plan or None.
Replanner = Callable[[PlanningDomain, object], Optional[Sequence]]


@dataclass(frozen=True)
class ReuseResult:
    """Outcome of a plan-reuse attempt.

    ``reused`` counts the operations kept from the old plan; ``repaired``
    counts the newly planned suffix; ``plan`` is their concatenation (or
    ``None`` when repair failed).
    """

    plan: Optional[tuple]
    reused: int
    repaired: int
    solved: bool
    elapsed_seconds: float

    @property
    def reuse_fraction(self) -> float:
        total = self.reused + self.repaired
        return self.reused / total if total else 0.0


def valid_prefix(domain: PlanningDomain, plan: Sequence, start_state: object) -> int:
    """Length of the longest prefix of *plan* that is valid from *start_state*.

    Validity is checked against the (possibly changed) domain: an operation
    must literally be offered by ``valid_operations`` at its position.
    """
    state = start_state
    for i, op in enumerate(plan):
        if op not in list(domain.valid_operations(state)):
            return i
        state = domain.apply(state, op)
    return len(plan)


def _best_cut(
    domain: PlanningDomain, plan: Sequence, start_state: object, prefix_len: int
) -> int:
    """Pick the prefix cut whose end state scores highest on goal fitness.

    Keeping the *entire* valid prefix can be wrong — the old plan may have
    been heading somewhere that no longer helps — so every cut in
    ``[0, prefix_len]`` competes on the new problem's goal fitness, earlier
    cuts winning ties (they leave more freedom to the repair planner).
    """
    state = start_state
    best_cut, best_fit = 0, float(domain.goal_fitness(state))
    for i in range(prefix_len):
        state = domain.apply(state, plan[i])
        fit = float(domain.goal_fitness(state))
        if fit > best_fit:
            best_cut, best_fit = i + 1, fit
    return best_cut


def reuse_plan(
    domain: PlanningDomain,
    old_plan: Sequence,
    replanner: Replanner,
    start_state: Optional[object] = None,
) -> ReuseResult:
    """Adapt *old_plan* to *domain* (the new problem) by prefix reuse + repair."""
    t0 = time.perf_counter()
    start = start_state if start_state is not None else domain.initial_state
    prefix_len = valid_prefix(domain, old_plan, start)
    cut = _best_cut(domain, old_plan, start, prefix_len)

    state = start
    for op in old_plan[:cut]:
        state = domain.apply(state, op)

    if domain.is_goal(state):
        return ReuseResult(
            plan=tuple(old_plan[:cut]),
            reused=cut,
            repaired=0,
            solved=True,
            elapsed_seconds=time.perf_counter() - t0,
        )

    repair = replanner(domain, state)
    if repair is None:
        return ReuseResult(
            plan=None,
            reused=cut,
            repaired=0,
            solved=False,
            elapsed_seconds=time.perf_counter() - t0,
        )
    full = tuple(old_plan[:cut]) + tuple(repair)
    final = state
    for op in repair:
        final = domain.apply(final, op)
    return ReuseResult(
        plan=full,
        reused=cut,
        repaired=len(tuple(repair)),
        solved=domain.is_goal(final),
        elapsed_seconds=time.perf_counter() - t0,
    )
