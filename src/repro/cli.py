"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``solve``       — run the GA planner on a built-in domain
- ``table``       — regenerate one of the paper's tables (1–5)
- ``figure``      — print one of the paper's figures (1–3)
- ``ablation``    — run one of the ablation studies
- ``compare``     — the planner comparison table
- ``schedule``    — the scheduling-heuristics table
- ``chaos``       — grid workflow under an injected fault plan
- ``exp``         — declarative experiment sweeps: list/run/status/resume/report

Examples
--------
::

    python -m repro solve hanoi --size 5 --phases 5 --seed 7
    python -m repro solve hanoi --faults "worker-crash:n=2;eval-timeout:s=10" --seed 7
    python -m repro table 2 --scaled
    python -m repro figure 3
    python -m repro ablation fitness
    python -m repro chaos --faults "machine-crash:p=0.5;slowdown:factor=4" --seed 11
    python -m repro exp run table2-hanoi --trials 5 --workers 4
    python -m repro exp resume table2-hanoi
    python -m repro exp report --check
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    ExperimentScale,
    crossover_on_hanoi,
    figure1,
    figure2,
    figure3,
    fitness_accuracy_study,
    hanoi_max_len,
    hanoi_parameter_table,
    maxlen_sweep,
    phase_budget_sweep,
    planner_comparison,
    run_hanoi_table2,
    run_tile_table4,
    run_tile_table5,
    seeding_study,
    tile_init_length,
    tile_max_len,
    tile_parameter_table,
    weight_sweep,
)
from repro.core import GAConfig, GAPlanner
from repro.domains import registry as domain_registry
from repro.exp.defaults import ABLATION_SEEDS, PAPER_SEED, SCHEDULE_SEED
from repro.obs import JsonlSink, MetricsRegistry, ProgressSink, Tracer, observe

__all__ = ["main"]


def _scale(args) -> ExperimentScale:
    return ExperimentScale.scaled() if args.scaled else ExperimentScale.paper()


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags, available on every subcommand."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="PATH", default=None,
        help="append a JSONL event trace (generations, phases, evaluation batches, ...)",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="collect counters/timers and print a metrics summary at exit",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="human-readable per-generation progress on stderr",
    )


def _build_observability(args):
    """Tracer + metrics registry from the parsed obs flags."""
    sinks = []
    if getattr(args, "trace", None):
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink(sys.stderr))
    tracer = Tracer(sinks) if sinks else None
    metrics = MetricsRegistry() if getattr(args, "metrics", False) else None
    return tracer, metrics


def _resolve_solve_evaluator(args):
    """Evaluator spec for ``solve``: fault flags imply a resilient wrapper.

    ``--faults``, ``--retry-max`` and ``--eval-timeout`` all require the
    recovery ladder, so any of them upgrades the evaluator to a
    :class:`~repro.core.resilient.ResilientEvaluator` factory carrying the
    fault plan's worker crash/hang injections.
    """
    wants_faults = (
        args.faults is not None
        or args.retry_max is not None
        or args.eval_timeout is not None
    )
    if args.evaluator != "resilient" and not wants_faults:
        return args.evaluator

    from repro.core import ResiliencePolicy, ResilientEvaluator
    from repro.faults import FaultInjector

    plan = FaultInjector(args.faults, seed=args.seed).plan() if args.faults else None
    timeout = args.eval_timeout
    if timeout is None and plan is not None:
        timeout = plan.eval_timeout_s
    policy_kwargs = {"eval_timeout_s": timeout}
    if args.retry_max is not None:
        policy_kwargs["retry_max"] = args.retry_max
    policy = ResiliencePolicy(**policy_kwargs)

    def factory():
        return ResilientEvaluator(
            policy=policy,
            worker_crashes=plan.worker_crashes if plan else 0,
            worker_hangs=plan.worker_hangs if plan else 0,
            hang_seconds=plan.hang_seconds if plan else 30.0,
        )

    return factory


def _cmd_solve(args) -> int:
    domain = domain_registry.create(args.domain, args.size)
    if args.domain == "hanoi":
        max_len = hanoi_max_len(args.size)
        init = domain.optimal_length
    elif args.domain == "tile":
        max_len = tile_max_len(args.size)
        init = tile_init_length(args.size)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.domain)
    config = GAConfig(
        population_size=args.population,
        generations=args.generations,
        crossover=args.crossover,
        max_len=max_len,
        init_length=init,
        decode_backend=args.decode_backend,
    )
    mode = args.mode
    multiphase = None
    islands = None
    portfolio = None
    if mode == "islands":
        islands = args.islands
    elif mode == "portfolio":
        from repro.core import parse_portfolio

        portfolio = parse_portfolio(
            args.portfolio, config, grace_ms=args.grace_ms
        )
    elif mode == "multiphase" or (mode is None and args.phases > 1):
        multiphase = args.phases
    outcome = GAPlanner(
        domain,
        config,
        multiphase=multiphase,
        seed=args.seed,
        islands=islands,
        portfolio=portfolio,
        portfolio_serial=args.portfolio_serial,
        mode=mode,
        evaluator=_resolve_solve_evaluator(args),
    ).solve()
    print(f"domain:        {domain.name}")
    print(f"mode:          {outcome.mode}")
    print(f"solved:        {outcome.solved}")
    print(f"goal fitness:  {outcome.goal_fitness:.3f}")
    print(f"plan length:   {outcome.plan_length}")
    print(f"generations:   {outcome.generations}")
    print(f"wall clock:    {outcome.elapsed_seconds:.1f}s")
    if outcome.mode == "portfolio":
        result = outcome.detail
        winner = (
            f"island {result.winner} ({result.strategies[result.winner]})"
            if result.winner is not None
            else "none"
        )
        print(f"winner:        {winner}")
        print(f"cancelled:     {result.cancelled} island(s)")
        if result.first_solution_wall_s is not None:
            print(f"first solve:   {result.first_solution_wall_s:.3f}s")
        print(f"incumbents:    {len(outcome.incumbents)}")
    if args.show_plan and outcome.plan:
        print("plan:")
        for op in outcome.plan:
            print(f"  {op}")
    return 0 if outcome.solved else 1


def _cmd_table(args) -> int:
    scale = _scale(args)
    drivers = {
        1: lambda: hanoi_parameter_table(scale),
        2: lambda: run_hanoi_table2(scale, seed=args.seed),
        3: lambda: tile_parameter_table(scale),
        4: lambda: run_tile_table4(scale, seed=args.seed),
        5: lambda: run_tile_table5(scale, seed=args.seed),
    }
    print(drivers[args.number]())
    return 0


def _cmd_figure(args) -> int:
    print({1: figure1, 2: figure2, 3: figure3}[args.number]())
    return 0


def _cmd_ablation(args) -> int:
    scale = _scale(args)
    seed = args.seed if args.seed is not None else ABLATION_SEEDS[args.study]
    drivers = {
        "crossover": lambda: crossover_on_hanoi(scale, seed=seed),
        "maxlen": lambda: maxlen_sweep(scale, seed=seed),
        "weights": lambda: weight_sweep(scale, seed=seed),
        "phases": lambda: phase_budget_sweep(scale, seed=seed),
        "seeding": lambda: seeding_study(scale, seed=seed),
        "fitness": lambda: fitness_accuracy_study(scale, seed=seed),
    }
    print(drivers[args.study]())
    return 0


def _cmd_compare(args) -> int:
    print(planner_comparison(_scale(args), seed=args.seed))
    return 0


def _cmd_schedule(args) -> int:
    import numpy as np

    from repro.analysis import Table
    from repro.core import make_rng
    from repro.scheduling import (
        ETCParams,
        GASchedulerConfig,
        HEURISTICS,
        ga_schedule,
        generate_etc,
        makespan,
    )

    table = Table(
        f"Scheduling heuristics ({args.tasks} tasks, {args.machines} machines)",
        ["Consistency", *HEURISTICS.keys(), "GA"],
    )
    for consistency in ("consistent", "semi", "inconsistent"):
        etc = generate_etc(
            ETCParams(n_tasks=args.tasks, n_machines=args.machines, consistency=consistency),
            make_rng(args.seed),
        )
        spans = [round(makespan(etc, h(etc)), 1) for h in HEURISTICS.values()]
        ga = ga_schedule(etc, GASchedulerConfig(generations=args.generations), make_rng(args.seed + 1))
        table.add_row(consistency, *spans, round(ga.makespan, 1))
    print(table)
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultInjector
    from repro.grid import (
        CoordinationService,
        ga_grid_planner,
        greedy_grid_planner,
        imaging_pipeline,
    )
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs.tracer import default_metrics, default_tracer

    onto, domain = imaging_pipeline()
    injector = FaultInjector(args.faults, seed=args.seed)
    plan = injector.plan(topology=onto.topology, horizon=args.horizon)
    print(plan.describe())

    # Counters are the whole point of this command, so collect them even
    # without --metrics (reusing the ambient pair when observe() set one up).
    tracer = default_tracer() if default_tracer().enabled else Tracer([])
    metrics = default_metrics() or MetricsRegistry()
    planner = (
        ga_grid_planner(seed=args.seed) if args.planner == "ga" else greedy_grid_planner()
    )
    service = CoordinationService(
        onto, planner, max_replans=args.max_replans, tracer=tracer, metrics=metrics
    )
    report = service.run(domain, events=plan.grid_events)

    print(f"\nsuccess:         {report.success}")
    print(f"rounds:          {len(report.attempts)}")
    print(f"total makespan:  {report.total_makespan:.1f}s")
    print(f"activities run:  {report.total_activities_run}")
    print("\nfault/recovery counters:")
    for name in ("faults_injected", "retries", "replans", "degradations"):
        print(f"  {name:16s} {metrics.counter(name).value}")
    return 0 if report.success else 1


def _cmd_soak(args) -> int:
    from repro.soak import SoakConfig, run_soak

    config = SoakConfig(
        duration=args.duration,
        arrival=args.arrival,
        faults=args.faults,
        seed=args.seed,
        n_sites=args.sites,
        machines_per_site=args.machines_per_site,
        deadline_factor=args.deadline,
        replan_mode=args.replan_mode,
        replan_budget_s=args.replan_budget,
        max_replans=args.max_replans,
    )
    report = run_soak(config)
    if args.show_log:
        print(report.event_log(), end="")
    print(f"duration:         {report.duration:g}s simulated (seed {report.seed})")
    print(f"requests arrived: {report.arrived}")
    print(f"completed:        {report.completed}")
    print(f"shed:             {report.shed}")
    print(f"still in flight:  {report.inflight}")
    print(f"replan rounds:    {report.replans}")
    print(f"completion rate:  {report.completion_rate:.3f}")
    derived = report.metrics_summary.get("derived", {})
    for name in ("replan_latency_p50_ms", "replan_latency_p99_ms"):
        if name in derived:
            print(f"{name}: {derived[name]}")
    return 0 if report.completed + report.inflight > 0 or report.arrived == 0 else 1


def _exp_scale(args) -> ExperimentScale:
    """Scale for ``exp`` commands: flags win, else ``REPRO_FULL`` decides."""
    from repro.analysis.experiments import scale_from_env

    if getattr(args, "full", False):
        return ExperimentScale.paper()
    if getattr(args, "scaled", False):
        return ExperimentScale.scaled()
    return scale_from_env()


def _exp_out_dir(args, name: str):
    from pathlib import Path

    from repro.exp import default_out_dir

    return Path(args.out) if getattr(args, "out", None) else default_out_dir(name)


def _cmd_exp_list(args) -> int:
    from repro.exp import list_specs

    scale = _exp_scale(args)
    for spec in list_specs():
        n_cells = len(spec.cells(scale))
        n_trials = spec.trials_for(scale)
        print(f"{spec.name:16s} {spec.title}")
        print(
            f"{'':16s} {n_cells} cells x {n_trials} trials = "
            f"{n_cells * n_trials} runs at {scale.label} scale"
        )
    return 0


def _cmd_exp_run(args, resume: bool = False) -> int:
    from repro.exp import SweepRunner

    runner = SweepRunner(
        args.experiment,
        _exp_out_dir(args, args.experiment),
        scale=_exp_scale(args),
        trials=args.trials,
        workers=args.workers,
    )
    result = runner.run(
        resume=resume or getattr(args, "resume", False),
        limit=getattr(args, "limit", None),
        force=getattr(args, "force", False),
    )
    print(
        f"{result.spec.name}: {len(result.new_records)} trial(s) run, "
        f"{result.skipped} skipped, {len(result.failed)} failed "
        f"-> {runner.records_path}"
    )
    if result.complete:
        print()
        print(result.table())
    else:
        print(f"{result.total - len(result.records)} trial(s) still pending; "
              f"re-run with `repro exp resume {result.spec.name}`")
    return 1 if result.failed else 0


def _cmd_exp_resume(args) -> int:
    return _cmd_exp_run(args, resume=True)


def _cmd_exp_status(args) -> int:
    from repro.exp import get_spec, sweep_status

    spec = get_spec(args.experiment)
    status = sweep_status(
        spec, _exp_out_dir(args, args.experiment),
        scale=_exp_scale(args), trials=args.trials,
    )
    print(f"{spec.name}: {status.done}/{status.total} trials recorded, "
          f"{status.failed} failed, {status.stale} stale")
    print("complete" if status.complete else f"{status.pending} pending")
    return 0 if status.complete else 1


def _cmd_exp_report(args) -> int:
    from pathlib import Path

    from repro.exp import (
        default_out_dir,
        experiment_report,
        get_spec,
        load_records,
        read_manifest,
        spec_names,
        update_experiments_md,
    )
    from repro.exp.records import RECORDS_NAME
    from repro.exp.report import REPORT_NAME
    from repro.exp.runner import scale_from_dict

    names = args.experiments or spec_names()
    reports = {}
    for name in names:
        spec = get_spec(name)
        out_dir = Path(args.out) / name if args.out else default_out_dir(name)
        records_path = out_dir / RECORDS_NAME
        if not records_path.exists():
            if args.experiments:
                print(f"error: no records at {records_path}", file=sys.stderr)
                return 2
            continue
        records, skipped = load_records(records_path)
        if skipped:
            print(f"warning: {name}: skipped {skipped} torn record line(s)",
                  file=sys.stderr)
        manifest = read_manifest(out_dir)
        scale = (
            scale_from_dict(manifest["scale"])
            if manifest and "scale" in manifest
            else _exp_scale(args)
        )
        report = experiment_report(spec, records, scale, manifest)
        reports[spec.doc_section] = report
        report_path = out_dir / REPORT_NAME
        if args.check:
            if not report_path.exists() or report_path.read_text(encoding="utf-8") != report:
                print(f"stale: {report_path}", file=sys.stderr)
                return 1
        else:
            report_path.write_text(report, encoding="utf-8")
            print(f"wrote {report_path}")
    if not reports:
        print("no recorded sweeps found; run `repro exp run <name>` first",
              file=sys.stderr)
        return 2
    stale = update_experiments_md(Path(args.experiments_md), reports, check=args.check)
    if args.check:
        if stale:
            print(f"stale sections in {args.experiments_md}: {', '.join(stale)}",
                  file=sys.stderr)
            return 1
        print(f"{args.experiments_md} is in sync with recorded results")
    elif stale:
        print(f"updated sections in {args.experiments_md}: {', '.join(stale)}")
    else:
        print(f"{args.experiments_md} already up to date")
    return 0


def _cmd_serve(args) -> int:
    from repro.obs import default_metrics, default_tracer
    from repro.service import serve

    tracer = default_tracer()
    serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_cap=args.queue_cap,
        fair_share=not args.no_fair_share,
        slice_gens=args.slice_gens,
        warm_cache=not args.no_warm_cache,
        metrics=default_metrics(),
        tracer=tracer if tracer is not None and tracer.enabled else None,
    )
    return 0


def _cmd_client(args) -> int:
    from repro.service import PlanRequest, ServiceClient

    if args.stats:
        with ServiceClient(host=args.host, port=args.port, timeout=args.timeout) as client:
            stats = client.stats()
        print(f"queues:    {stats['queues']}")
        print(f"running:   {stats['running']}")
        for name, value in stats["counters"].items():
            print(f"{name + ':':<24} {value}")
        for name, value in stats["derived"].items():
            print(f"{name + ':':<24} {value}")
        print(f"cache:     {stats['cache']}")
        return 0
    if args.domain is None:
        print("error: a domain argument is required unless --stats is given")
        return 2
    request = PlanRequest(
        domain=args.domain,
        size=args.size,
        tenant=args.tenant,
        seed=args.seed,
        population=args.population,
        budget=args.budget,
        max_len=args.max_len,
        deadline_s=args.deadline,
        mode="portfolio" if args.portfolio else "ga",
        portfolio=args.portfolio,
        stream=args.stream,
        evaluator=args.evaluator,
        vector=args.vector,
        backend=args.decode_backend,
    )

    def on_frame(frame: dict) -> None:
        kind = frame["type"]
        if kind == "accepted":
            print(f"accepted:      id {frame['id']} (queue depth {frame['queue_depth']})")
        elif kind == "incumbent":
            print(
                f"incumbent:     tick {frame['tick']} goal {frame['goal_fitness']:.3f} "
                f"length {frame['plan_length']} solved {frame['solved']}"
            )
        elif kind == "event" and args.stream:
            event = frame["event"]
            if event.get("kind") == "service-slice":
                print(
                    f"slice:         #{event['slice_index']} "
                    f"(+{event['generations']} generations)"
                )

    with ServiceClient(host=args.host, port=args.port, timeout=args.timeout) as client:
        final = client.plan(request, on_frame=on_frame)
    kind = final["type"]
    if kind == "shed":
        print(f"shed:          {final['reason']}")
        return 2
    if kind == "error":
        print(f"error:         {final['message']}")
        return 2
    print(f"solved:        {final['solved']}")
    print(f"timed out:     {final['timed_out']}")
    print(f"goal fitness:  {final['goal_fitness']:.3f}")
    print(f"plan length:   {final['plan_length']}")
    print(f"generations:   {final['generations']}")
    print(f"slices:        {final['slices']}")
    print(f"warm engine:   {final['warm']}")
    if final.get("backend"):
        print(f"backend:       {final['backend']}")
    print(f"wall clock:    {final['seconds']:.3f}s")
    if args.show_plan and final["plan"]:
        print("plan:")
        for op in final["plan"]:
            print(f"  {op}")
    return 0 if final["solved"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GA planning for heterogeneous computing (IPPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="run the GA planner on a built-in domain")
    p.add_argument("domain", choices=("hanoi", "tile"))
    p.add_argument("--size", type=int, default=5, help="disks (hanoi) or board edge (tile)")
    p.add_argument("--population", type=int, default=200)
    p.add_argument("--generations", type=int, default=100, help="per phase")
    p.add_argument("--phases", type=int, default=5, help="1 = single-phase")
    p.add_argument("--crossover", choices=("random", "state-aware", "mixed"), default="random")
    p.add_argument("--seed", type=int, default=PAPER_SEED)
    p.add_argument("--show-plan", action="store_true")
    p.add_argument(
        "--mode", choices=("single", "multiphase", "islands", "portfolio"),
        default=None,
        help="run mode (default: multiphase when --phases > 1, else single)",
    )
    p.add_argument("--islands", type=int, default=4, help="island count for --mode islands")
    p.add_argument(
        "--portfolio", metavar="SPEC", default="ga,ga:state-aware,search:gbfs",
        help="portfolio strategy list for --mode portfolio: comma-separated "
        "ga[:crossover] and search[:algorithm] items",
    )
    p.add_argument(
        "--portfolio-serial", action="store_true",
        help="run portfolio islands serially (deterministic replay "
        "verification mode; same race outcome as the concurrent run)",
    )
    p.add_argument(
        "--grace-ms", type=float, default=0.0, metavar="MS",
        help="let losing islands improve the incumbent for MS wall-clock "
        "milliseconds after the first solution before cancellation",
    )
    p.add_argument(
        "--evaluator", choices=("serial", "process", "resilient"), default="serial",
        help="population evaluation strategy (process = worker pool, "
        "resilient = worker pool with retry/degradation ladder)",
    )
    p.add_argument(
        "--decode-backend", choices=("numpy", "fused"), default=None,
        help="vector-decode walk implementation (default: auto — fused "
        "compiled per-row loops when numba is installed, numpy otherwise)",
    )
    fault_group = p.add_argument_group("fault injection")
    fault_group.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault plan, e.g. 'worker-crash:n=2;eval-timeout:s=10' "
        "(implies --evaluator resilient)",
    )
    fault_group.add_argument(
        "--retry-max", type=int, default=None, metavar="N",
        help="pool retries per evaluation batch before serial fallback",
    )
    fault_group.add_argument(
        "--eval-timeout", type=float, default=None, metavar="S",
        help="per-batch evaluation timeout in seconds",
    )
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p.add_argument("--scaled", action="store_true", help="fast scaled-down parameters")
    p.add_argument("--seed", type=int, default=PAPER_SEED)
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("figure", help="print a paper figure")
    p.add_argument("number", type=int, choices=(1, 2, 3))
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("ablation", help="run an ablation study")
    p.add_argument(
        "study",
        choices=("crossover", "maxlen", "weights", "phases", "seeding", "fitness"),
    )
    p.add_argument("--scaled", action="store_true")
    p.add_argument("--seed", type=int, default=None,
                   help="RNG seed (default: the study's seed from repro.exp.defaults)")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("compare", help="GA vs classical planners")
    p.add_argument("--scaled", action="store_true")
    p.add_argument("--seed", type=int, default=ABLATION_SEEDS["baselines"])
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("schedule", help="heterogeneous scheduling heuristics")
    p.add_argument("--tasks", type=int, default=128)
    p.add_argument("--machines", type=int, default=8)
    p.add_argument("--generations", type=int, default=100)
    p.add_argument("--seed", type=int, default=SCHEDULE_SEED)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("chaos", help="grid workflow under an injected fault plan")
    p.add_argument(
        "--faults", metavar="SPEC",
        default="machine-crash:p=0.35,restore=20;slowdown:factor=3,p=0.3",
        help="fault spec (see repro.faults.parse_fault_spec)",
    )
    p.add_argument("--seed", type=int, default=3, help="fault-timeline seed")
    p.add_argument("--horizon", type=float, default=60.0, help="fault window in sim seconds")
    p.add_argument("--max-replans", type=int, default=3)
    p.add_argument(
        "--planner", choices=("greedy", "ga"), default="greedy",
        help="replanner used after each fault (ga = the paper's multi-phase GA)",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("soak", help="long-running digital-twin soak under churn")
    p.add_argument(
        "--duration", type=float, default=300.0,
        help="simulated horizon in seconds (default 300)",
    )
    p.add_argument(
        "--arrival", metavar="SPEC", default="arrival:rate=0.05",
        help="arrival clauses, e.g. 'arrival:rate=0.1' (see repro.faults grammar)",
    )
    p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="churn timeline spec, e.g. 'machine-crash:p=0.5,restore=60'",
    )
    p.add_argument(
        "--deadline", type=float, default=4.0, metavar="FACTOR",
        help="deadline = arrival + FACTOR x initial makespan estimate (default 4)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=int, default=3)
    p.add_argument("--machines-per-site", type=int, default=2)
    p.add_argument(
        "--replan-mode", choices=("incremental", "cold"), default="incremental",
        help="incremental = repair/warm-GA ladder; cold = from-scratch GA baseline",
    )
    p.add_argument(
        "--replan-budget", type=float, default=2.0, metavar="S",
        help="per-request wall-clock planning budget gating the GA rung",
    )
    p.add_argument("--max-replans", type=int, default=5)
    p.add_argument(
        "--show-log", action="store_true",
        help="print the canonical deterministic event log before the summary",
    )
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser("serve", help="run the planning service (TCP/JSON-lines)")
    p.add_argument("--host", default="127.0.0.1", help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7421, help="TCP port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2, help="worker threads slicing requests")
    p.add_argument(
        "--queue-cap", type=int, default=8, metavar="N",
        help="max queued+running requests before submits are shed (429 analogue)",
    )
    p.add_argument(
        "--slice-gens", type=int, default=4, metavar="G",
        help="generations per scheduling slice (the fair-share tick size)",
    )
    p.add_argument(
        "--no-fair-share", action="store_true",
        help="pick runs global-FIFO instead of per-tenant deficit round-robin",
    )
    p.add_argument(
        "--no-warm-cache", action="store_true",
        help="disable cross-request engine reuse (every request cold-starts)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("client", help="submit one planning request to a running service")
    p.add_argument("domain", nargs="?", default=None,
                   help="registered domain name (see repro.domains.registry)")
    p.add_argument("--size", type=int, default=5, help="domain size argument")
    p.add_argument("--host", default="127.0.0.1", help="service host")
    p.add_argument("--port", type=int, default=7421, help="service port")
    p.add_argument("--tenant", default="default", help="fair-share accounting key")
    p.add_argument("--seed", type=int, default=0, help="GA seed (same seed = same plan)")
    p.add_argument("--population", type=int, default=30)
    p.add_argument("--budget", type=int, default=40, metavar="GENS",
                   help="generation budget for the request")
    p.add_argument("--max-len", type=int, default=None,
                   help="plan-length bound (required for domains without a derived bound)")
    p.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="seconds from arrival before the request is shed (queued) or "
        "returns its best-so-far plan (running)",
    )
    p.add_argument(
        "--portfolio", metavar="SPEC", default=None,
        help="race a portfolio instead of one GA, e.g. 'ga,ga:state-aware,search:gbfs'",
    )
    p.add_argument("--stream", action="store_true",
                   help="print per-slice progress events as they happen")
    p.add_argument(
        "--evaluator", choices=("serial", "resilient"), default="serial",
        help="serial shares the warm engine; resilient adds the retry/degrade ladder",
    )
    p.add_argument(
        "--vector", action="store_true",
        help="use the vectorised decode (faster cold, but skips warm-cache reuse)",
    )
    p.add_argument(
        "--decode-backend", choices=("numpy", "fused"), default=None,
        help="vector-decode walk implementation (requires --vector; "
        "default: server auto-probes numba)",
    )
    p.add_argument("--timeout", type=float, default=60.0, help="socket timeout in seconds")
    p.add_argument("--show-plan", action="store_true")
    p.add_argument("--stats", action="store_true",
                   help="print the server's live counters instead of planning")
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser("exp", help="declarative experiment sweeps")
    exp_sub = p.add_subparsers(dest="exp_command", required=True)

    def _exp_scale_flags(sp):
        group = sp.add_mutually_exclusive_group()
        group.add_argument(
            "--full", action="store_true",
            help="paper-scale parameters (default: REPRO_FULL env decides)",
        )
        group.add_argument("--scaled", action="store_true", help="fast scaled-down parameters")

    sp = exp_sub.add_parser("list", help="registered experiments and their grids")
    _exp_scale_flags(sp)
    sp.set_defaults(func=_cmd_exp_list)

    sp = exp_sub.add_parser("run", help="run a sweep, recording JSONL trials")
    sp.add_argument("experiment", help="registered experiment name (see `exp list`)")
    sp.add_argument("--trials", type=int, default=None, help="per-cell trial count override")
    sp.add_argument("--out", default=None, metavar="DIR",
                    help="output directory (default benchmarks/results/exp/<name>)")
    sp.add_argument("--workers", type=int, default=1, help="worker processes")
    sp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="run at most N trials this invocation")
    sp.add_argument("--resume", action="store_true", help="continue a previous sweep")
    sp.add_argument("--force", action="store_true", help="discard existing records first")
    _exp_scale_flags(sp)
    sp.set_defaults(func=_cmd_exp_run)

    sp = exp_sub.add_parser("resume", help="continue a previously started sweep")
    sp.add_argument("experiment")
    sp.add_argument("--trials", type=int, default=None)
    sp.add_argument("--out", default=None, metavar="DIR")
    sp.add_argument("--workers", type=int, default=1)
    sp.add_argument("--limit", type=int, default=None, metavar="N")
    _exp_scale_flags(sp)
    sp.set_defaults(func=_cmd_exp_resume)

    sp = exp_sub.add_parser("status", help="progress of a recorded sweep")
    sp.add_argument("experiment")
    sp.add_argument("--trials", type=int, default=None)
    sp.add_argument("--out", default=None, metavar="DIR")
    _exp_scale_flags(sp)
    sp.set_defaults(func=_cmd_exp_status)

    sp = exp_sub.add_parser(
        "report", help="regenerate reports + EXPERIMENTS.md from recorded sweeps"
    )
    sp.add_argument("experiments", nargs="*", help="experiment names (default: all recorded)")
    sp.add_argument("--out", default=None, metavar="DIR",
                    help="results root holding <name>/records.jsonl subdirectories")
    sp.add_argument("--experiments-md", default="EXPERIMENTS.md", metavar="PATH",
                    help="Markdown file whose marked sections to regenerate")
    sp.add_argument("--check", action="store_true",
                    help="verify reports are in sync; exit 1 when stale, write nothing")
    _exp_scale_flags(sp)
    sp.set_defaults(func=_cmd_exp_report)

    for subparser in sub.choices.values():
        _add_obs_flags(subparser)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tracer, metrics = _build_observability(args)
    try:
        with observe(tracer=tracer, metrics=metrics):
            code = args.func(args)
    finally:
        if tracer is not None:
            tracer.close()
    if metrics is not None:
        print(metrics.render())
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
