"""Wire protocol for the planning service: JSON-lines frames over TCP.

Every frame is one JSON object on one ``\\n``-terminated line, UTF-8
encoded, at most :data:`MAX_FRAME_BYTES` long.  The ``type`` key routes the
frame; request frames (client → server) are ``plan`` / ``stats`` /
``ping``, response frames (server → client) are ``accepted`` / ``shed`` /
``event`` / ``incumbent`` / ``result`` / ``error`` / ``stats`` / ``pong``.
``docs/service.md`` documents every frame with worked examples.

This module is purely syntactic: it parses and validates frame *shape*
(types, ranges) and leaves semantic checks — does the domain exist, can a
``max_len`` be derived — to the run scheduler, which answers them with
``error`` frames instead of exceptions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "PlanRequest",
    "parse_plan_request",
    "encode_frame",
    "decode_frame",
    "FrameReader",
]

#: Wire protocol revision; servers echo it in ``accepted`` frames.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded frame — oversized lines poison a JSON-lines
#: stream, so both ends refuse them instead of buffering without bound.
MAX_FRAME_BYTES = 1 << 20

_MODES = ("ga", "portfolio")
_EVALUATORS = ("serial", "resilient")
_BACKENDS = ("numpy", "fused")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (shape, types or ranges)."""


def encode_frame(frame: dict) -> bytes:
    """Serialise *frame* to one newline-terminated JSON line.

    Raises :class:`ProtocolError` if the encoded frame exceeds
    :data:`MAX_FRAME_BYTES` or contains non-JSON values.
    """
    try:
        line = json.dumps(frame, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serialisable: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return data


def decode_frame(data: Union[bytes, str]) -> dict:
    """Parse one JSON-lines frame; the result is always a dict with ``type``.

    Raises :class:`ProtocolError` on malformed JSON, non-object payloads and
    missing/non-string ``type`` keys.
    """
    if isinstance(data, bytes):
        if len(data) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
        data = data.decode("utf-8", errors="replace")
    try:
        frame = json.loads(data)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    kind = frame.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame is missing a string 'type' key")
    return frame


class FrameReader:
    """Incremental splitter turning a byte stream into decoded frames.

    Feed arbitrary chunks (as received from a socket) and iterate the
    complete frames they finish; a partial trailing line stays buffered for
    the next feed.  Raises :class:`ProtocolError` when the buffered partial
    line outgrows :data:`MAX_FRAME_BYTES`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[dict]:
        """Append *chunk* and return every frame it completed, in order."""
        self._buffer.extend(chunk)
        frames: List[dict] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > MAX_FRAME_BYTES:
                    raise ProtocolError("unterminated frame exceeds MAX_FRAME_BYTES")
                return frames
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if line.strip():
                frames.append(decode_frame(line))

    def __iter__(self) -> Iterator[dict]:  # pragma: no cover - convenience
        """Frames are produced by :meth:`feed`; an empty reader yields none."""
        return iter(())


@dataclass(frozen=True)
class PlanRequest:
    """One validated planning request, as carried by a ``plan`` frame.

    ``domain``/``size`` name a registered domain the way ``repro solve``
    does; ``max_len`` may be omitted for domains the service can derive a
    plan-length bound for (hanoi, tile).  ``deadline_s`` is measured from
    arrival and covers queueing *and* planning; ``budget`` is the
    generation budget.  ``mode`` is ``ga`` (sliced, fair-shared) or
    ``portfolio`` (one slice, racing islands per ``portfolio`` spec).
    ``stream`` opts into per-generation ``event`` frames; ``evaluator``
    selects ``serial`` or the fault-tolerant ``resilient`` ladder.

    ``vector`` opts into the whole-population vectorised decode: faster
    for one-off requests on kernel-backed domains, but stateless — it
    bypasses the warm cross-request engine cache, which is why the service
    defaults to the (warmable) decode-engine path instead.

    ``backend`` picks the vector path's walk implementation (requires
    ``vector``): ``None`` auto-probes numba for the fused compiled loop,
    ``"numpy"`` / ``"fused"`` force one.  The fused walk releases the GIL,
    so service workers decode concurrent requests on real cores.
    """

    domain: str
    size: int
    tenant: str = "default"
    seed: int = 0
    population: int = 30
    budget: int = 40
    max_len: Optional[int] = None
    deadline_s: Optional[float] = None
    mode: str = "ga"
    portfolio: Optional[str] = None
    stream: bool = False
    evaluator: str = "serial"
    vector: bool = False
    backend: Optional[str] = None


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


def parse_plan_request(frame: dict) -> PlanRequest:
    """Validate a ``plan`` frame into a :class:`PlanRequest`.

    Raises :class:`ProtocolError` naming the offending field; semantic
    errors (unknown domain, missing ``max_len``) are left to the scheduler.
    """
    _require(frame.get("type") == "plan", "expected a 'plan' frame")
    known = {
        "type",
        "domain",
        "size",
        "tenant",
        "seed",
        "population",
        "budget",
        "max_len",
        "deadline_s",
        "mode",
        "portfolio",
        "stream",
        "evaluator",
        "vector",
        "backend",
    }
    unknown = sorted(set(frame) - known)
    _require(not unknown, f"unknown plan fields: {', '.join(unknown)}")
    domain = frame.get("domain")
    _require(isinstance(domain, str) and bool(domain), "'domain' must be a non-empty string")
    size = frame.get("size")
    _require(isinstance(size, int) and not isinstance(size, bool) and size >= 1,
             "'size' must be an integer >= 1")
    tenant = frame.get("tenant", "default")
    _require(isinstance(tenant, str) and bool(tenant), "'tenant' must be a non-empty string")
    seed = frame.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
             "'seed' must be a non-negative integer")
    population = frame.get("population", 30)
    _require(isinstance(population, int) and not isinstance(population, bool) and population >= 2,
             "'population' must be an integer >= 2")
    budget = frame.get("budget", 40)
    _require(isinstance(budget, int) and not isinstance(budget, bool) and budget >= 1,
             "'budget' must be an integer >= 1")
    max_len = frame.get("max_len")
    _require(
        max_len is None
        or (isinstance(max_len, int) and not isinstance(max_len, bool) and max_len >= 1),
        "'max_len' must be an integer >= 1 when given",
    )
    deadline_s = frame.get("deadline_s")
    _require(
        deadline_s is None or (isinstance(deadline_s, (int, float)) and deadline_s > 0),
        "'deadline_s' must be a positive number when given",
    )
    mode = frame.get("mode", "ga")
    _require(mode in _MODES, f"'mode' must be one of {_MODES}")
    portfolio = frame.get("portfolio")
    _require(portfolio is None or isinstance(portfolio, str),
             "'portfolio' must be a string when given")
    _require(mode == "portfolio" or portfolio is None,
             "'portfolio' requires mode='portfolio'")
    stream = frame.get("stream", False)
    _require(isinstance(stream, bool), "'stream' must be a boolean")
    evaluator = frame.get("evaluator", "serial")
    _require(evaluator in _EVALUATORS, f"'evaluator' must be one of {_EVALUATORS}")
    vector = frame.get("vector", False)
    _require(isinstance(vector, bool), "'vector' must be a boolean")
    backend = frame.get("backend")
    _require(backend is None or backend in _BACKENDS,
             f"'backend' must be one of {_BACKENDS} when given")
    _require(backend is None or vector,
             "'backend' requires vector=true (it selects the vector walk)")
    return PlanRequest(
        domain=domain,
        size=size,
        tenant=tenant,
        seed=seed,
        population=population,
        budget=budget,
        max_len=max_len,
        deadline_s=float(deadline_s) if deadline_s is not None else None,
        mode=mode,
        portfolio=portfolio,
        stream=stream,
        evaluator=evaluator,
        vector=vector,
        backend=backend,
    )
