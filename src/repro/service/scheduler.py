"""Run scheduler: admission control, fair-share slicing, warm engines.

The scheduler multiplexes concurrent :class:`~repro.service.protocol.
PlanRequest`\\ s over a bounded worker pool in *tick-sized slices* — each
slice advances one request's :class:`~repro.core.ga.GARun` by
``slice_gens`` generations, then requeues it — the same cooperative
pattern ``ResumableSearch`` uses inside the portfolio engine.  Admission
control sheds at submit time once ``queue_cap`` requests are in flight
(the 429 analogue); per-tenant fair share is deficit round-robin over
consumed slices, so a tenant flooding the queue cannot starve the others
of more than one slice of latency.

Determinism: a request's per-request trace (generation stats, slices,
incumbents, completion) depends only on its seed and config — never on
scheduling interleaving or cache warmth.  Wall-clock and cache-warmth
payloads are masked by :func:`service_canonical_events`, and the
hypothesis suite in ``tests/service`` asserts serial ``drain()`` and the
threaded :class:`ServicePool` produce byte-identical canonical traces.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.core.config import GAConfig
from repro.core.fused_decode import resolve_backend
from repro.core.ga import GARun
from repro.core.parallel import SerialEvaluator
from repro.core.portfolio import canonical_events
from repro.obs.events import (
    IncumbentImproved,
    ServiceAdmitted,
    ServiceCompleted,
    ServiceShed,
    ServiceSlice,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemoryRecorder
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.service.cache import EngineCache, config_hash
from repro.service.protocol import PlanRequest

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "SHED",
    "FAILED",
    "ServiceRun",
    "RunScheduler",
    "ServicePool",
    "service_canonical_events",
    "default_max_len",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
SHED = "shed"
FAILED = "failed"

#: Payload keys that reflect cache warmth rather than the search
#: trajectory; masked alongside wall-clock keys for replay comparison.
_CACHE_WARMTH_KEYS = (
    "cache_hits",
    "cache_misses",
    "evals_skipped",
    "genes_reused",
    "hits",
    "misses",
)


def service_canonical_events(events) -> List[dict]:
    """Event dicts with wall-clock *and* cache-warmth payloads masked.

    Extends :func:`repro.core.portfolio.canonical_events`: shared-engine
    warmth (decode-cache and fitness-memo hit counts) legitimately depends
    on request interleaving while the search trajectory stays bit-identical,
    so warmth counters are zeroed along with wall-clock fields.
    """
    out = canonical_events(events)
    for record in out:
        for key in _CACHE_WARMTH_KEYS:
            if key in record:
                record[key] = 0
    return out


def default_max_len(domain: str, size: int) -> Optional[int]:
    """The service's derived plan-length bound, or ``None`` if unknown.

    Mirrors ``repro solve``: hanoi and tile get the paper-calibrated bounds
    from :mod:`repro.analysis.experiments`; other domains must send an
    explicit ``max_len``.
    """
    if domain == "hanoi":
        from repro.analysis.experiments import hanoi_max_len

        return hanoi_max_len(size)
    if domain == "tile":
        from repro.analysis.experiments import tile_max_len

        return tile_max_len(size)
    return None


class ServiceRun:
    """One admitted request's lifecycle: state machine + per-request trace.

    States progress ``queued`` → ``running`` → ``done`` / ``shed`` /
    ``failed``.  Every run owns a :class:`MemoryRecorder` capturing only
    its own deterministic events (generation stats, slices, incumbents,
    completion) and a private :class:`MetricsRegistry` merged into the
    service registry at finish — the no-locks rule from
    :mod:`repro.obs.metrics` applied to request concurrency.

    ``subscriber`` (when given) receives every client-facing frame dict
    for this run; the server bridges it onto the owning connection's
    asyncio queue with ``call_soon_threadsafe``.
    """

    def __init__(
        self,
        request: PlanRequest,
        request_id: int,
        arrival_s: float,
        subscriber: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.request = request
        self.request_id = request_id
        self.arrival_s = arrival_s
        self.subscriber = subscriber
        self.state = QUEUED
        self.shed_reason: Optional[str] = None
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.slices = 0
        self.warm: Optional[bool] = None
        #: Resolved decode backend tag ("engine", "numpy" or "fused"),
        #: echoed in the result frame so clients see what actually ran.
        self.backend: Optional[str] = None
        self.cancel_requested = False
        self.recorder = MemoryRecorder()
        self.tracer = Tracer([self.recorder])
        self.metrics = MetricsRegistry()
        self.first_slice_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self._ga: Optional[GARun] = None
        self._lease = None
        self._best_key: Optional[tuple] = None

    # -- frames ---------------------------------------------------------------

    def _notify(self, frame: dict) -> None:
        if self.subscriber is not None:
            self.subscriber(frame)

    def canonical_trace(self) -> List[dict]:
        """This run's per-request events, masked for replay comparison."""
        return service_canonical_events(self.recorder.events)

    @property
    def finished(self) -> bool:
        """Whether the run reached a terminal state."""
        return self.state in (DONE, SHED, FAILED)

    def deadline_exceeded(self, now: float) -> bool:
        """Whether *now* is past this request's deadline (``False`` if none)."""
        deadline = self.request.deadline_s
        return deadline is not None and (now - self.arrival_s) > deadline

    def cancel(self) -> None:
        """Ask the scheduler to shed this run at its next pick/slice boundary."""
        self.cancel_requested = True


class RunScheduler:
    """Admission control + deficit-round-robin slicing over service runs.

    Thread-safe; drive it synchronously with :meth:`step`/:meth:`drain`
    (tests, benchmarks, serial replay) or concurrently with a
    :class:`ServicePool`.  ``queue_cap`` bounds queued+running requests —
    the ``queue_cap+1``-th concurrent submit is shed with reason
    ``queue-full``.  With ``fair_share`` each tenant's consumed-slice
    deficit picks the next run (ties to the earliest request); without it
    the pick is global FIFO, which is the fairness-off ablation.
    """

    def __init__(
        self,
        engine_cache: Optional[EngineCache] = None,
        queue_cap: int = 8,
        fair_share: bool = True,
        slice_gens: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        if slice_gens < 1:
            raise ValueError(f"slice_gens must be >= 1, got {slice_gens}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.engine_cache = (
            engine_cache if engine_cache is not None else EngineCache(metrics=self.metrics)
        )
        self.queue_cap = queue_cap
        self.fair_share = fair_share
        self.slice_gens = slice_gens
        self.clock = clock
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[ServiceRun]] = {}
        self._consumed: Dict[str, int] = {}
        self._queued = 0
        self._running = 0
        self._next_id = 1

    # -- admission ------------------------------------------------------------

    def submit(
        self, request: PlanRequest, subscriber: Optional[Callable[[dict], None]] = None
    ) -> ServiceRun:
        """Admit or shed *request*; frames go to *subscriber* either way.

        Returns the :class:`ServiceRun` — state ``queued`` (an ``accepted``
        frame was sent) or ``shed``/``failed`` (a ``shed``/``error`` frame
        was sent and the run will never execute).
        """
        now = self.clock()
        with self._work:
            run = ServiceRun(request, self._next_id, now, subscriber)
            self._next_id += 1
            self.metrics.counter("service_requests").add(1)
            depth = self._queued + self._running
            if depth >= self.queue_cap:
                self._shed_locked(run, "queue-full", depth)
                return run
            problem = self._validate(request)
            if problem is not None:
                run.state = FAILED
                run.error = problem
                self.metrics.counter("service_failed").add(1)
                run._notify(
                    {"type": "error", "id": run.request_id, "message": problem}
                )
                return run
            run.state = QUEUED
            self._queues.setdefault(request.tenant, deque()).append(run)
            self._consumed.setdefault(request.tenant, 0)
            self._queued += 1
            depth = self._queued + self._running
            if self.tracer.enabled:
                self.tracer.emit(
                    ServiceAdmitted(
                        request_id=run.request_id,
                        tenant=request.tenant,
                        domain_hash=config_hash(request.domain, (request.size,)),
                        queue_depth=depth,
                    )
                )
            self.metrics.counter("service_admitted").add(1)
            self._work.notify()
        run._notify({"type": "accepted", "id": run.request_id, "queue_depth": depth})
        return run

    def _validate(self, request: PlanRequest) -> Optional[str]:
        """Semantic request check; returns an error message or ``None``."""
        from repro.domains import registry as domain_registry

        if request.domain not in domain_registry.domain_names():
            return f"unknown domain {request.domain!r}"
        if request.max_len is None and default_max_len(request.domain, request.size) is None:
            return f"domain {request.domain!r} needs an explicit 'max_len'"
        if request.mode == "portfolio" and not request.portfolio:
            return "mode='portfolio' needs a 'portfolio' spec string"
        return None

    def _shed_locked(self, run: ServiceRun, reason: str, depth: int) -> None:
        run.state = SHED
        run.shed_reason = reason
        run.finished_s = self.clock()
        self.metrics.counter("service_shed").add(1)
        if self.tracer.enabled:
            self.tracer.emit(
                ServiceShed(
                    request_id=run.request_id,
                    tenant=run.request.tenant,
                    reason=reason,
                    queue_depth=depth,
                )
            )
        run._notify({"type": "shed", "id": run.request_id, "reason": reason})
        self._work.notify_all()

    # -- picking --------------------------------------------------------------

    def _pick_locked(self) -> Optional[ServiceRun]:
        """Pop the next runnable run, shedding stale queued entries inline."""
        while True:
            tenant = self._pick_tenant_locked()
            if tenant is None:
                return None
            run = self._queues[tenant].popleft()
            self._queued -= 1
            now = self.clock()
            if run.cancel_requested:
                self._shed_locked(run, "cancelled", self._queued + self._running)
                continue
            if run.deadline_exceeded(now):
                self._shed_locked(run, "deadline-queued", self._queued + self._running)
                continue
            run.state = RUNNING
            self._running += 1
            return run

    def _pick_tenant_locked(self) -> Optional[str]:
        candidates = [t for t, q in self._queues.items() if q]
        if not candidates:
            return None
        if not self.fair_share:
            return min(candidates, key=lambda t: self._queues[t][0].request_id)
        # Deficit round-robin: fewest consumed slices wins; ties go to the
        # tenant whose head request arrived first, keeping picks deterministic.
        return min(
            candidates,
            key=lambda t: (self._consumed[t], self._queues[t][0].request_id),
        )

    # -- slicing --------------------------------------------------------------

    def step(self) -> bool:
        """Run one slice of one request; ``False`` when nothing is runnable."""
        with self._work:
            run = self._pick_locked()
        if run is None:
            return False
        try:
            self._run_slice(run)
        except Exception as exc:  # noqa: BLE001 - failures become error frames
            self._fail(run, f"{type(exc).__name__}: {exc}")
        return True

    def drain(self) -> None:
        """Serially run every queued request to completion (tests, replay)."""
        while self.step():
            pass

    def _build_ga(self, run: ServiceRun) -> None:
        request = run.request
        lease = self.engine_cache.lease(request.domain, (request.size,))
        run._lease = lease
        run.warm = lease.warm
        max_len = request.max_len
        init_length = None
        if max_len is None:
            max_len = default_max_len(request.domain, request.size)
        if request.domain == "hanoi":
            init_length = lease.domain.optimal_length
        elif request.domain == "tile":
            from repro.analysis.experiments import tile_init_length

            init_length = tile_init_length(request.size)
        kwargs = dict(max_len=max_len)
        if init_length is not None:
            kwargs["init_length"] = init_length
        config = GAConfig(
            population_size=request.population,
            generations=request.budget,
            # The engine path is the warmable one; vector decode is faster
            # cold but stateless across requests (see PlanRequest.vector).
            vector_decode=bool(request.vector),
            decode_backend=request.backend if request.vector else None,
            **kwargs,
        )
        if request.vector:
            # Resolve now so a missing numba under backend="fused" fails
            # the request with a clear error frame instead of mid-slice.
            run.backend = resolve_backend(request.backend)
        else:
            run.backend = "engine"
        evaluator = SerialEvaluator(engine=lease.engine)
        if request.evaluator == "resilient":
            from repro.core.resilient import ResiliencePolicy, ResilientEvaluator

            evaluator = ResilientEvaluator(policy=ResiliencePolicy())
        run._ga = GARun(
            lease.domain,
            config,
            np.random.default_rng(request.seed),
            evaluator=evaluator,
            tracer=run.tracer,
            metrics=run.metrics,
            scope=f"req-{run.request_id}",
        )

    def _run_slice(self, run: ServiceRun) -> None:
        now = self.clock()
        if run.first_slice_s is None:
            run.first_slice_s = now
            self.metrics.histogram("service_queue_wait").observe(now - run.arrival_s)
            if run._ga is None and run.request.mode == "ga":
                self._build_ga(run)
        if run.request.mode == "portfolio":
            self._run_portfolio(run)
            return
        ga = run._ga
        assert ga is not None
        generations = 0
        done = False
        for _ in range(self.slice_gens):
            if ga.generation >= run.request.budget:
                done = True
                break
            ga.step()
            generations += 1
            if ga.config.stop_on_goal and ga.solved_at is not None:
                done = True
                break
        if ga.generation >= run.request.budget:
            done = True
        run.slices += 1
        slice_index = run.slices - 1
        self.metrics.counter("service_slices").add(1)
        event = ServiceSlice(
            request_id=run.request_id,
            tenant=run.request.tenant,
            slice_index=slice_index,
            generations=generations,
            done=done,
        )
        run.tracer.emit(event)
        if self.tracer.enabled:
            self.tracer.emit(event)
        self._emit_incumbent(run)
        if run.request.stream:
            run._notify({"type": "event", "id": run.request_id, "event": event.to_dict()})
        timed_out = run.deadline_exceeded(self.clock())
        if run.cancel_requested:
            with self._work:
                self._running -= 1
                self._shed_locked(run, "cancelled", self._queued + self._running)
            self._release(run)
            return
        if done or timed_out:
            self._complete(run, timed_out=timed_out and not done)
            return
        with self._work:
            self._running -= 1
            run.state = QUEUED
            self._queues[run.request.tenant].append(run)
            self._queued += 1
            self._consumed[run.request.tenant] += 1
            self._work.notify()

    def _run_portfolio(self, run: ServiceRun) -> None:
        """Portfolio requests race to completion in one (large) slice.

        Racing islands manage their own evaluators, so portfolio runs skip
        the engine cache; anytime incumbents stream as ``incumbent`` frames
        via PR 8's ``on_incumbent`` API.
        """
        from repro.core.planner import GAPlanner
        from repro.core.portfolio import parse_portfolio
        from repro.domains import registry as domain_registry

        request = run.request
        domain = domain_registry.create(request.domain, request.size)
        max_len = request.max_len or default_max_len(request.domain, request.size)
        config = GAConfig(
            population_size=request.population,
            generations=request.budget,
            max_len=max_len,
        )

        def on_incumbent(incumbent) -> None:
            event = IncumbentImproved(
                scope=f"req-{run.request_id}",
                island=incumbent.island,
                strategy=incumbent.strategy,
                tick=incumbent.tick,
                goal_fitness=incumbent.goal_fitness,
                cost_fitness=incumbent.cost_fitness,
                plan_length=len(incumbent.plan),
                solved=incumbent.solved,
            )
            run.tracer.emit(event)
            run._notify(
                {
                    "type": "incumbent",
                    "id": run.request_id,
                    "tick": incumbent.tick,
                    "goal_fitness": incumbent.goal_fitness,
                    "plan_length": len(incumbent.plan),
                    "solved": incumbent.solved,
                }
            )

        outcome = GAPlanner(
            domain,
            config,
            seed=request.seed,
            mode="portfolio",
            portfolio=parse_portfolio(request.portfolio, config),
            portfolio_serial=True,
        ).solve(on_incumbent=on_incumbent)
        run.slices += 1
        self.metrics.counter("service_slices").add(1)
        event = ServiceSlice(
            request_id=run.request_id,
            tenant=request.tenant,
            slice_index=0,
            generations=outcome.generations,
            done=True,
        )
        run.tracer.emit(event)
        if self.tracer.enabled:
            self.tracer.emit(event)
        self._finish(
            run,
            solved=outcome.solved,
            timed_out=False,
            plan=[str(op) for op in outcome.plan],
            goal_fitness=outcome.goal_fitness,
            generations=outcome.generations,
        )

    def _emit_incumbent(self, run: ServiceRun) -> None:
        ga = run._ga
        if ga is None or ga.best is None or ga.best.fitness is None:
            return
        key = ga.best.sort_key()
        if run._best_key is not None and key <= run._best_key:
            return
        run._best_key = key
        best = ga.best
        plan_length = len(best.decoded.operations) if best.decoded is not None else 0
        event = IncumbentImproved(
            scope=f"req-{run.request_id}",
            island=0,
            strategy="ga",
            tick=ga.generation,
            goal_fitness=best.fitness.goal,
            cost_fitness=best.fitness.cost,
            plan_length=plan_length,
            solved=best.fitness.goal_reached,
        )
        run.tracer.emit(event)
        run._notify(
            {
                "type": "incumbent",
                "id": run.request_id,
                "tick": ga.generation,
                "goal_fitness": best.fitness.goal,
                "plan_length": plan_length,
                "solved": best.fitness.goal_reached,
            }
        )

    # -- completion -----------------------------------------------------------

    def _complete(self, run: ServiceRun, timed_out: bool) -> None:
        ga = run._ga
        assert ga is not None and ga.best is not None
        best = ga.best
        solved = best.fitness is not None and best.fitness.goal_reached
        plan = [str(op) for op in best.decoded.operations] if best.decoded is not None else []
        self._finish(
            run,
            solved=solved,
            timed_out=timed_out,
            plan=plan,
            goal_fitness=best.fitness.goal if best.fitness is not None else 0.0,
            generations=ga.generation,
        )

    def _finish(
        self,
        run: ServiceRun,
        solved: bool,
        timed_out: bool,
        plan: List[str],
        goal_fitness: float,
        generations: int,
    ) -> None:
        now = self.clock()
        run.finished_s = now
        seconds = now - run.arrival_s
        event = ServiceCompleted(
            request_id=run.request_id,
            tenant=run.request.tenant,
            solved=solved,
            timed_out=timed_out,
            generations=generations,
            plan_length=len(plan),
            slices=run.slices,
            seconds=seconds,
        )
        run.tracer.emit(event)
        if self.tracer.enabled:
            self.tracer.emit(event)
        run.result = {
            "type": "result",
            "id": run.request_id,
            "solved": solved,
            "timed_out": timed_out,
            "plan": plan,
            "plan_length": len(plan),
            "goal_fitness": goal_fitness,
            "generations": generations,
            "slices": run.slices,
            "warm": bool(run.warm),
            "backend": run.backend,
            "seconds": seconds,
        }
        self._release(run)
        with self._work:
            self._running -= 1
            run.state = DONE
            self._consumed[run.request.tenant] += 1
            self.metrics.counter("service_completed").add(1)
            self.metrics.histogram("service_latency").observe(seconds)
            self.metrics.merge(run.metrics)
            self._work.notify_all()
        run._notify(run.result)

    def _fail(self, run: ServiceRun, message: str) -> None:
        self._release(run)
        with self._work:
            self._running -= 1
            run.state = FAILED
            run.error = message
            run.finished_s = self.clock()
            self.metrics.counter("service_failed").add(1)
            self._work.notify_all()
        run._notify({"type": "error", "id": run.request_id, "message": message})

    def _release(self, run: ServiceRun) -> None:
        if run._lease is not None:
            ga = run._ga
            if ga is not None:
                ga.evaluator.close()
            self.engine_cache.release(run._lease)
            run._lease = None

    # -- introspection --------------------------------------------------------

    def cancel(self, run: ServiceRun) -> None:
        """Shed *run* at its next pick or slice boundary (client gone)."""
        run.cancel()
        with self._work:
            self._work.notify_all()

    def depth(self) -> int:
        """Queued + running requests right now (the admission signal)."""
        with self._lock:
            return self._queued + self._running

    def wait_for_work(self, timeout: float) -> bool:
        """Block a worker until work may be available (or *timeout*)."""
        with self._work:
            if self._queued:
                return True
            return self._work.wait(timeout)

    def wake_all(self) -> None:
        """Wake every thread parked on the work condition.

        ``submit`` / ``_complete`` already notify for work-driven wakes;
        this is for lifecycle ones — :meth:`ServicePool.stop` calls it so
        workers parked in :meth:`wait_for_work` re-check their stop flag
        immediately instead of sleeping out the idle-wait bound.
        """
        with self._work:
            self._work.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is queued or running; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._work:
            while self._queued or self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._work.wait(remaining if remaining is not None else 1.0)
            return True

    def stats(self) -> dict:
        """Service counters, derived metrics and cache occupancy as one dict."""
        from repro.obs.metrics import service_summary

        with self._lock:
            queues = {t: len(q) for t, q in self._queues.items() if q}
            running = self._running
        counters = {
            name: c.value
            for name, c in sorted(self.metrics.counters.items())
            if name.startswith("service_")
        }
        return {
            "queues": queues,
            "running": running,
            "counters": counters,
            "derived": service_summary(self.metrics),
            "cache": self.engine_cache.stats(),
        }


class ServicePool:
    """Daemon worker threads cooperatively slicing a :class:`RunScheduler`.

    Workers loop ``step()``; when no run is pickable they park on the
    scheduler's work condition until :meth:`RunScheduler.submit` notifies
    it (bounded by *idle_wait*, a liveness backstop rather than a poll
    interval — a submitted request is picked up at notification time, not
    after sleeping out the bound).  ``stop()`` wakes parked workers
    through :meth:`RunScheduler.wake_all` and joins every worker;
    in-flight slices finish, queued work stays queued.

    With the fused decode backend (DESIGN.md §16) the jitted walk releases
    the GIL, so several workers slicing concurrent requests decode on real
    cores in one process — see BENCH_service.json's thread-scaling
    ablation.
    """

    def __init__(
        self,
        scheduler: RunScheduler,
        workers: int = 2,
        idle_wait: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if idle_wait <= 0:
            raise ValueError(f"idle_wait must be > 0, got {idle_wait}")
        self.scheduler = scheduler
        self.workers = workers
        self.idle_wait = idle_wait
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> "ServicePool":
        """Spawn the worker threads (idempotent); returns ``self``."""
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-service-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.scheduler.step():
                self.scheduler.wait_for_work(self.idle_wait)

    def stop(self) -> None:
        """Signal and join every worker (current slices run to completion)."""
        self._stop.set()
        # Parked workers wake on the condition, see the stop flag, and
        # exit — without this, stop() would block up to idle_wait.
        self.scheduler.wake_all()
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def __enter__(self) -> "ServicePool":
        """Start on entry so ``with ServicePool(...)`` manages the workers."""
        return self.start()

    def __exit__(self, *exc) -> None:
        """Stop and join the workers on exit."""
        self.stop()
