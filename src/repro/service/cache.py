"""Warm cross-request engine reuse, keyed by domain config-hash.

:class:`~repro.core.decode_engine.DecodeEngine` binds by domain
*identity*: rebinding the same domain instance keeps its transition tables
and (same start/weights) fitness memo hot, while a structurally-equal but
fresh instance silently cold-starts.  The cache therefore stores the
``(domain, engine)`` pair together, keyed by :func:`config_hash` over the
domain name and constructor args, and leases whole pairs for a run's
lifetime — two concurrent same-domain requests get *separate* pairs (no
shared mutable state mid-run), and a released pair is the next same-domain
request's warm start.

Warmth never changes results: the decode engine's exactness contract means
a warm request computes bit-identical fitness to a cold one, just faster.
Disable the cache (``enabled=False``) for the cold ablation in
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.decode_engine import DecodeEngine
from repro.domains import registry as domain_registry
from repro.domains.base import PlanningDomain
from repro.obs.metrics import MetricsRegistry

__all__ = ["config_hash", "EngineLease", "EngineCache"]


def config_hash(domain: str, args: Sequence[object] = ()) -> str:
    """Stable short hash of a domain name + constructor args.

    Two requests share cache entries iff they hash equal, so the hash must
    cover everything that changes domain semantics — name and every
    positional arg — and nothing that doesn't (seeds, budgets, tenants).
    """
    payload = json.dumps([domain, list(args)], sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class EngineLease:
    """One checked-out ``(domain, engine)`` pair; hold for the run's lifetime.

    ``warm`` records whether the pair came from the idle pool (a previous
    request's caches intact) or was built cold for this lease.
    """

    key: str
    domain: PlanningDomain
    engine: DecodeEngine
    warm: bool
    released: bool = field(default=False, repr=False)


class EngineCache:
    """Pool of idle ``(domain, engine)`` pairs per domain config-hash.

    Thread-safe: the run scheduler's worker threads lease and release
    concurrently.  ``max_idle_per_key`` bounds retained pairs per key
    (excess releases are dropped); ``enabled=False`` turns every lease into
    a cold build and every release into a drop — the cold-cache ablation.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_idle_per_key: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_idle_per_key < 1:
            raise ValueError(f"max_idle_per_key must be >= 1, got {max_idle_per_key}")
        self.enabled = enabled
        self.max_idle_per_key = max_idle_per_key
        self.metrics = metrics
        self.warm_hits = 0
        self.warm_misses = 0
        self._lock = threading.Lock()
        self._idle: Dict[str, List[Tuple[PlanningDomain, DecodeEngine]]] = {}

    def lease(self, domain_name: str, args: Sequence[object] = ()) -> EngineLease:
        """Check out a pair for *domain_name(args)*, warm when available.

        Unknown domain names raise ``KeyError`` (from the registry) — the
        scheduler turns that into an ``error`` frame.
        """
        key = config_hash(domain_name, args)
        pair: Optional[Tuple[PlanningDomain, DecodeEngine]] = None
        if self.enabled:
            with self._lock:
                idle = self._idle.get(key)
                if idle:
                    pair = idle.pop()
        if pair is not None:
            self.warm_hits += 1
            if self.metrics is not None:
                self.metrics.counter("service_warm_hits").add(1)
            return EngineLease(key=key, domain=pair[0], engine=pair[1], warm=True)
        domain = domain_registry.create(domain_name, *args)
        self.warm_misses += 1
        if self.metrics is not None:
            self.metrics.counter("service_warm_misses").add(1)
        # adaptive_memo=False: a shared-lifetime engine must keep its
        # fitness memo across requests — repeated same-seed requests replay
        # whole populations out of it (see DecodeEngine's docstring).
        engine = DecodeEngine(adaptive_memo=False)
        return EngineLease(key=key, domain=domain, engine=engine, warm=False)

    def release(self, lease: EngineLease) -> None:
        """Return a lease's pair to the idle pool (idempotent).

        With the cache disabled, or when the per-key idle pool is full, the
        pair is simply dropped.
        """
        if lease.released:
            return
        lease.released = True
        if not self.enabled:
            return
        with self._lock:
            idle = self._idle.setdefault(lease.key, [])
            if len(idle) < self.max_idle_per_key:
                idle.append((lease.domain, lease.engine))

    def stats(self) -> dict:
        """Warm hit/miss totals and current idle-pool occupancy."""
        with self._lock:
            idle = {key: len(pairs) for key, pairs in self._idle.items() if pairs}
        return {
            "enabled": self.enabled,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "idle": idle,
        }
