"""Asyncio TCP front end for the planning service (stdlib-only).

One :class:`PlanningServer` owns a :class:`~repro.service.scheduler.
RunScheduler` plus a :class:`~repro.service.scheduler.ServicePool` and
serves JSON-lines frames (see :mod:`repro.service.protocol`) to any number
of concurrent connections.  Worker threads deliver a run's frames through
``loop.call_soon_threadsafe`` onto a per-connection :class:`asyncio.Queue`
drained by a sender task — the only thread/event-loop boundary in the
system.  A client disconnecting mid-stream cancels every live run it
submitted, so abandoned work stops consuming slices at the next boundary.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    decode_frame,
    parse_plan_request,
)
from repro.service.cache import EngineCache
from repro.service.scheduler import RunScheduler, ServicePool, ServiceRun

__all__ = ["PlanningServer", "serve"]


class PlanningServer:
    """The asyncio front end: accept connections, bridge frames to workers.

    Construct, then either ``await start()`` + ``await serve_forever()``
    inside a running loop, or call :func:`serve` from synchronous code (the
    CLI does).  ``port=0`` binds an ephemeral port, exposed as
    :attr:`port` after :meth:`start` — tests and the smoke job rely on it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_cap: int = 8,
        fair_share: bool = True,
        slice_gens: int = 4,
        warm_cache: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scheduler = RunScheduler(
            engine_cache=EngineCache(enabled=warm_cache, metrics=self.metrics),
            queue_cap=queue_cap,
            fair_share=fair_share,
            slice_gens=slice_gens,
            metrics=self.metrics,
            tracer=tracer,
        )
        self.pool = ServicePool(self.scheduler, workers=workers)
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> "PlanningServer":
        """Bind the listening socket and start the worker pool."""
        self.pool.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start()`` must have completed)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, join the worker pool, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.stop()

    # -- connection handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        live: Dict[int, ServiceRun] = {}

        def subscriber(frame: dict) -> None:
            # Called from worker threads; hop onto the loop thread.
            loop.call_soon_threadsafe(outbox.put_nowait, frame)

        sender = asyncio.ensure_future(self._send_loop(outbox, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                    self._dispatch(frame, subscriber, live, outbox)
                except ProtocolError as exc:
                    outbox.put_nowait({"type": "error", "id": None, "message": str(exc)})
        finally:
            for run in live.values():
                if not run.finished:
                    self.scheduler.cancel(run)
            outbox.put_nowait(None)  # sentinel: flush then stop the sender
            with contextlib.suppress(Exception):
                await sender
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _dispatch(
        self,
        frame: dict,
        subscriber,
        live: Dict[int, ServiceRun],
        outbox: "asyncio.Queue[Optional[dict]]",
    ) -> None:
        kind = frame["type"]
        if kind == "ping":
            outbox.put_nowait({"type": "pong", "version": PROTOCOL_VERSION})
        elif kind == "stats":
            outbox.put_nowait({"type": "stats", **self.scheduler.stats()})
        elif kind == "plan":
            request = parse_plan_request(frame)
            run = self.scheduler.submit(request, subscriber=subscriber)
            if not run.finished:
                live[run.request_id] = run
        else:
            raise ProtocolError(f"unknown frame type {kind!r}")

    @staticmethod
    async def _send_loop(
        outbox: "asyncio.Queue[Optional[dict]]", writer: asyncio.StreamWriter
    ) -> None:
        while True:
            frame = await outbox.get()
            if frame is None:
                return
            writer.write(encode_frame(frame))
            try:
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                return


def serve(
    host: str = "127.0.0.1",
    port: int = 7421,
    workers: int = 2,
    queue_cap: int = 8,
    fair_share: bool = True,
    slice_gens: int = 4,
    warm_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    ready: Optional["object"] = None,
) -> None:
    """Run a :class:`PlanningServer` until interrupted (blocking).

    *ready*, when given, must have a ``set()`` method (a
    ``threading.Event``) and is signalled once the socket is bound —
    letting tests and the smoke job start the server in a thread and wait
    deterministically instead of sleeping.  The bound port is attached as
    ``ready.port`` first, so ``port=0`` (ephemeral) callers can find it.
    """

    async def _main() -> None:
        server = PlanningServer(
            host=host,
            port=port,
            workers=workers,
            queue_cap=queue_cap,
            fair_share=fair_share,
            slice_gens=slice_gens,
            warm_cache=warm_cache,
            metrics=metrics,
            tracer=tracer,
        )
        await server.start()
        print(f"repro service listening on {server.host}:{server.port}", flush=True)
        if ready is not None:
            ready.port = server.port
            ready.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
