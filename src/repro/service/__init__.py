"""repro.service — planning-as-a-service over the GA planner stack.

The ROADMAP's production axis made concrete: an asyncio TCP front end
(:mod:`~repro.service.server`) speaking a JSON-lines protocol
(:mod:`~repro.service.protocol`), a run scheduler multiplexing concurrent
requests over a shared worker pool in tick-sized slices with admission
control and per-tenant fair share (:mod:`~repro.service.scheduler`), and
warm cross-request reuse of decode-engine state keyed by domain
config-hash (:mod:`~repro.service.cache`).  ``docs/service.md`` is the
operations guide; ``benchmarks/bench_service.py`` is the load harness.
"""

from repro.service.cache import EngineCache, EngineLease, config_hash
from repro.service.client import ServiceClient
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameReader,
    PlanRequest,
    ProtocolError,
    decode_frame,
    encode_frame,
    parse_plan_request,
)
from repro.service.scheduler import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    RunScheduler,
    ServicePool,
    ServiceRun,
    default_max_len,
    service_canonical_events,
)
from repro.service.server import PlanningServer, serve

__all__ = [
    "DONE",
    "EngineCache",
    "EngineLease",
    "FAILED",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PlanRequest",
    "PlanningServer",
    "ProtocolError",
    "QUEUED",
    "RUNNING",
    "RunScheduler",
    "SHED",
    "ServiceClient",
    "ServicePool",
    "ServiceRun",
    "config_hash",
    "decode_frame",
    "default_max_len",
    "encode_frame",
    "parse_plan_request",
    "serve",
    "service_canonical_events",
]
