"""Synchronous JSON-lines client for the planning service.

A thin blocking wrapper over one TCP connection: build ``plan`` frames,
stream the response frames back, return the terminal frame.  The CLI's
``repro client`` subcommand and the docs examples use it; tests drive it
against an in-process server thread.
"""

from __future__ import annotations

import socket
from typing import Callable, Iterator, Optional

from repro.service.protocol import FrameReader, PlanRequest, encode_frame

__all__ = ["ServiceClient"]

#: Frame types that end one request's stream.
_TERMINAL = ("result", "shed", "error")


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.PlanningServer`.

    Use as a context manager; :meth:`plan` submits a request and blocks
    until its terminal frame (``result`` / ``shed`` / ``error``), invoking
    *on_frame* for every intermediate frame (``accepted``, ``incumbent``,
    and — with ``stream=True`` — per-slice ``event`` frames).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7421, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = FrameReader()

    # -- plumbing -------------------------------------------------------------

    def _send(self, frame: dict) -> None:
        self._sock.sendall(encode_frame(frame))

    def _frames(self) -> Iterator[dict]:
        while True:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            for frame in self._reader.feed(chunk):
                yield frame

    # -- public API -----------------------------------------------------------

    def ping(self) -> dict:
        """Round-trip a ``ping``; returns the ``pong`` frame."""
        self._send({"type": "ping"})
        for frame in self._frames():
            if frame["type"] == "pong":
                return frame

    def stats(self) -> dict:
        """Fetch the server's live counters/queue snapshot."""
        self._send({"type": "stats"})
        for frame in self._frames():
            if frame["type"] == "stats":
                return frame

    def plan(
        self,
        request: PlanRequest,
        on_frame: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Submit *request*; block until — and return — its terminal frame."""
        frame = {"type": "plan", "domain": request.domain, "size": request.size}
        defaults = PlanRequest(domain=request.domain, size=request.size)
        for field in (
            "tenant",
            "seed",
            "population",
            "budget",
            "max_len",
            "deadline_s",
            "mode",
            "portfolio",
            "stream",
            "evaluator",
            "vector",
            "backend",
        ):
            value = getattr(request, field)
            if value != getattr(defaults, field):
                frame[field] = value
        self._send(frame)
        for received in self._frames():
            if received["type"] in _TERMINAL:
                return received
            if on_frame is not None:
                on_frame(received)

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass

    def __enter__(self) -> "ServiceClient":
        """Support ``with ServiceClient(...) as client``."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the connection on scope exit."""
        self.close()
