"""Bench: regenerate Figure 3 (15-puzzle initial and goal states)."""

from repro.analysis import figure3
from repro.domains import is_solvable, reversed_start


def test_figure3_boards(benchmark, results_dir):
    fig = benchmark(figure3)
    print("\nFigure 3: 15-puzzle initial (a) and goal (b) states\n" + fig)
    (results_dir / "figure3_15puzzle.txt").write_text(fig + "\n")
    assert "(a) initial" in fig and "(b) goal" in fig
    # The reproduced initial state must be an even permutation of the goal
    # (Johnson & Story 1879), i.e. actually solvable.
    assert is_solvable(reversed_start(4), 4)
