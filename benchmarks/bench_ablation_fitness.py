"""Ablation bench: accurate goal fitness vs the paper's fitness functions.

Tests the paper's closing claim — "an accurate goal fitness function is
essential to achieving good search performance" — by running the identical
GA under the paper's (deceptive for Hanoi) fitness and under exact/sharper
fitness functions.
"""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import fitness_accuracy_study


def test_fitness_accuracy(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        fitness_accuracy_study,
        args=(scale,),
        kwargs={"seed": ABLATION_SEEDS["fitness"], "n_disks": 6},
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_fitness_accuracy")
    rows = table.rows
    # The structural Hanoi fitness must solve at least as many runs as the
    # deceptive weighted-disk fitness.
    assert rows[1][2] >= rows[0][2]
