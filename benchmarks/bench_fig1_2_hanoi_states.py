"""Bench: regenerate Figures 1 and 2 (5-disk Hanoi initial and goal states)."""

from pathlib import Path

from repro.analysis import figure1, figure2


def test_figure1_initial_state(benchmark, results_dir):
    fig = benchmark(figure1)
    print("\nFigure 1: initial state of the 5-disk Towers of Hanoi\n" + fig)
    (results_dir / "figure1_hanoi_initial.txt").write_text(fig + "\n")
    # All five disks stacked on stake A, largest at the bottom.
    lines = fig.splitlines()
    assert "=====|=====" in lines[4]  # size-5 disk on the bottom row
    assert fig.count("|") == 5 * 3  # one pole glyph per stake per disk row


def test_figure2_goal_state(benchmark, results_dir):
    fig = benchmark(figure2)
    print("\nFigure 2: goal state of the 5-disk Towers of Hanoi\n" + fig)
    (results_dir / "figure2_hanoi_goal.txt").write_text(fig + "\n")
    bottom = fig.splitlines()[4]
    width = 11
    mid = bottom[width + 2 : 2 * width + 2]
    assert "=====|=====" in mid  # the largest disk now sits on stake B
