"""Bench: heterogeneous-scheduling baselines on the Braun et al. ETC suite.

The prior work the paper builds on ([4, 19, 20]): static mapping of
independent tasks onto heterogeneous machines.  Regenerates the qualitative
ordering — OLB worst, Min-min/Sufferage strong, the GA mapper at least as
good as its Min-min seed.
"""

import os

import numpy as np
from conftest import emit

from repro.analysis import Table
from repro.core import make_rng
from repro.scheduling import (
    ETCParams,
    GASchedulerConfig,
    HEURISTICS,
    ga_schedule,
    generate_etc,
    makespan,
)


def _run(full: bool):
    n_tasks, n_machines = (512, 16) if full else (96, 8)
    generations = 500 if full else 80
    table = Table(
        "Scheduling heuristics: makespan by ETC consistency class",
        ["Consistency", "OLB", "MET", "MCT", "Min-min", "Max-min", "Sufferage", "GA"],
    )
    for consistency in ("consistent", "semi", "inconsistent"):
        rng = make_rng(4001)
        etc = generate_etc(
            ETCParams(n_tasks=n_tasks, n_machines=n_machines, consistency=consistency), rng
        )
        spans = {name: makespan(etc, h(etc)) for name, h in HEURISTICS.items()}
        ga = ga_schedule(etc, GASchedulerConfig(generations=generations), make_rng(4002))
        table.add_row(
            consistency,
            *(round(spans[k], 1) for k in ("OLB", "MET", "MCT", "Min-min", "Max-min", "Sufferage")),
            round(ga.makespan, 1),
        )
    return table


def test_scheduling_heuristics(benchmark, results_dir):
    full = os.environ.get("REPRO_FULL", "") == "1"
    table = benchmark.pedantic(_run, args=(full,), rounds=1, iterations=1)
    emit(table, results_dir, "scheduling_heuristics")
    for row in table.rows:
        cons, olb, met, mct, minmin, maxmin, suff, ga = row
        assert minmin < olb          # Min-min always beats OLB
        assert ga <= minmin + 1e-9   # GA at least matches its seed
        if cons == "consistent":
            assert mct < met         # MET degenerates on consistent matrices
