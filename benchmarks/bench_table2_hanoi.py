"""Bench: regenerate Table 2 (Towers of Hanoi, single- vs multi-phase GA).

Paper's reported values (10 runs, pop 200, 500 gens / 5x100 gens):

    GA Type       Disks  AvgGoalFit  AvgSize  AvgGens
    single-phase  5      1.0         72.3     42.9
    single-phase  6      0.916       421.3    201.6
    single-phase  7      0.618       628.0    328.6
    multi-phase   5      1.0         153.4    100
    multi-phase   6      1.0         571.8    200
    multi-phase   7      0.773       799.8    429

The shape asserted here: multi-phase goal fitness >= single-phase per size,
fitness falls with disk count, multi-phase solutions are longer.

The trial grid, per-trial seeds and aggregation are the declarative
``table2-hanoi`` spec (:mod:`repro.exp.paper`); this bench is a thin
wrapper that runs the sweep in memory and asserts the shape.
"""

from conftest import emit

from repro.exp import run_inline


def test_table2_hanoi(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        run_inline, args=("table2-hanoi",), kwargs={"scale": scale}, rounds=1, iterations=1
    )
    assert not result.failed
    table = result.table()
    emit(table, results_dir, "table2_hanoi")

    rows = {(r[0], r[1]): r for r in table.rows}
    disks = sorted({r[1] for r in table.rows})
    # Multi-phase dominates single-phase in goal fitness at every size.
    for n in disks:
        assert rows[("multi-phase", n)][2] >= rows[("single-phase", n)][2] - 0.05
    # Goal fitness is non-increasing in problem size for each GA type.
    for ga in ("single-phase", "multi-phase"):
        fits = [rows[(ga, n)][2] for n in disks]
        assert all(a >= b - 0.05 for a, b in zip(fits, fits[1:]))
