"""Decode-engine ablation bench: what each memoisation layer buys.

Runs the same GA (same seed, same trajectory — asserted) under four
evaluation variants on warm caches:

- ``baseline``       — the naive pre-engine path (``decode_engine=False``),
  per-genome full decode with only the valid-operation memo;
- ``transitions``    — layer 1 alone (transition memoisation);
- ``transitions+prefix`` — layers 1+2 (dirty-prefix re-decode);
- ``full``           — layers 1+2+3 (adds phenotype dedup / fitness memo).

Per variant the run is warmed for a few generations, then measured with a
fresh metrics registry; the headline number is ``evals_per_sec`` (the
``evals`` counter over the ``eval_batch`` timer, i.e. individuals scored
per second of evaluation wall time).  Results go to
``benchmarks/results/BENCH_decode.json`` with per-variant speedups over the
baseline recorded in the same file.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode_engine.py [--quick]

Also exposes one pytest-benchmark case (a warm engine generation) so the
file participates in the microbench suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.exp.defaults import DECODE_BENCH_SEED
from repro.core import DecodeEngine, GAConfig, GARun, SerialEvaluator, make_rng
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.obs import MetricsRegistry

RESULTS_DIR = Path(__file__).parent / "results"

VARIANTS = ("baseline", "transitions", "transitions+prefix", "full")

COUNTER_KEYS = (
    "decode_cache_hits",
    "decode_cache_misses",
    "transition_cache_hits",
    "transition_cache_misses",
    "evals_skipped",
    "genes_reused",
    "decode_fallbacks",
)


def make_domains(quick: bool):
    """The two measured problems: Hanoi-7 and the 4×4 sliding tile."""
    if quick:
        return {
            "hanoi7": (HanoiDomain(7), GAConfig(
                population_size=30, generations=10_000, max_len=635,
                init_length=127, stop_on_goal=False,
            )),
            "tile4": (SlidingTileDomain(4), GAConfig(
                population_size=30, generations=10_000, max_len=512,
                init_length=128, stop_on_goal=False,
            )),
        }
    return {
        "hanoi7": (HanoiDomain(7), GAConfig(
            population_size=100, generations=10_000, max_len=635,
            init_length=127, stop_on_goal=False,
        )),
        "tile4": (SlidingTileDomain(4), GAConfig(
            population_size=100, generations=10_000, max_len=512,
            init_length=128, stop_on_goal=False,
        )),
    }


def build_evaluator(variant: str) -> SerialEvaluator:
    if variant == "transitions":
        return SerialEvaluator(engine=DecodeEngine(prefix=False, dedup=False))
    if variant == "transitions+prefix":
        return SerialEvaluator(engine=DecodeEngine(dedup=False))
    return SerialEvaluator()  # baseline (naive via config) and full


def measure_variant(domain, config: GAConfig, seed: int, variant: str,
                    warmup: int, measured: int):
    """Run warmup + measured generations; return (row, trajectory)."""
    cfg = config.replace(decode_engine=(variant != "baseline"))
    run = GARun(domain, cfg, make_rng(seed), evaluator=build_evaluator(variant))
    for _ in range(warmup):
        run.step()
    # Fresh registry for the measured window only: warm-cache steady state,
    # not cold-start cost, is what the engine is for.
    metrics = MetricsRegistry()
    run.evaluator.bind_observability(run.tracer, metrics, scope="")
    t0 = time.perf_counter()
    for _ in range(measured):
        run.step()
    wall = time.perf_counter() - t0
    evals = metrics.counters["evals"].value
    batch_s = metrics.timers["eval_batch"].total
    row = {
        "variant": variant,
        "evals": evals,
        "eval_batch_s": round(batch_s, 6),
        "wall_s": round(wall, 6),
        "evals_per_sec": round(evals / batch_s, 1) if batch_s else None,
    }
    for key in COUNTER_KEYS:
        counter = metrics.counters.get(key)
        if counter is not None and counter.value:
            row[key] = counter.value
    trajectory = [
        (g.generation, g.best_total, g.mean_total) for g in run.history.generations
    ]
    return row, trajectory


def run_bench(quick: bool = False, seed: int = DECODE_BENCH_SEED) -> dict:
    warmup, measured = (2, 3) if quick else (4, 8)
    report = {
        "bench": "decode-engine ablation",
        "quick": quick,
        "seed": seed,
        "warmup_generations": warmup,
        "measured_generations": measured,
        "notes": (
            "hanoi7 (6 ops, heavy state revisits) is the engine's target "
            "workload: warm transition tables replace all domain calls. "
            "tile4's random walks rarely revisit states, so hits are scarce "
            "and the retained tables add cyclic-GC scan pressure; with gc "
            "disabled the engine also wins on tile4 (measured separately), "
            "so the shortfall there is collector overhead, not compute."
        ),
        "domains": {},
    }
    for name, (domain, config) in make_domains(quick).items():
        rows = {}
        trajectories = {}
        for variant in VARIANTS:
            row, trajectory = measure_variant(
                domain, config, seed, variant, warmup, measured
            )
            rows[variant] = row
            trajectories[variant] = trajectory
            print(f"[{name}] {variant:<20} {row['evals_per_sec']} evals/s")
        # The engine's contract: the ablation changes speed, never results.
        for variant in VARIANTS[1:]:
            assert trajectories[variant] == trajectories["baseline"], (
                f"{name}/{variant} diverged from the baseline trajectory"
            )
        base = rows["baseline"]["evals_per_sec"]
        for variant in VARIANTS:
            eps = rows[variant]["evals_per_sec"]
            rows[variant]["speedup_vs_baseline"] = (
                round(eps / base, 2) if base and eps else None
            )
        report["domains"][name] = {
            "population_size": config.population_size,
            "max_len": config.max_len,
            "variants": rows,
            "trajectory_identical": True,
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small populations / few generations (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=DECODE_BENCH_SEED)
    args = parser.parse_args(argv)
    report = run_bench(quick=args.quick, seed=args.seed)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_decode.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    for name, entry in report["domains"].items():
        full = entry["variants"]["full"]
        print(
            f"{name}: full engine {full['evals_per_sec']} evals/s, "
            f"{full['speedup_vs_baseline']}x over baseline"
        )
    return 0


# -- pytest-benchmark hook -----------------------------------------------------


def test_engine_warm_generation_hanoi7(benchmark):
    """One warm full-engine GA generation on Hanoi-7 under the bench timer."""
    domain = HanoiDomain(7)
    cfg = GAConfig(
        population_size=30, generations=10_000, max_len=635, init_length=127,
        stop_on_goal=False,
    )
    run = GARun(domain, cfg, make_rng(5))
    run.step()  # warm the transition tables
    benchmark(run.step)


if __name__ == "__main__":
    sys.exit(main())
