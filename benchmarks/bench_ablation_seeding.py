"""Ablation bench: GenPlan-style population seeding (related work [22])."""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import seeding_study


def test_seeding_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        seeding_study, args=(scale,), kwargs={"seed": ABLATION_SEEDS["seeding"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_seeding")
    assert table.column("Seed Fraction") == [0.0, 0.05, 0.25]
